#!/usr/bin/env python3
"""Compare topology generators against measured geographic structure.

The paper's conclusion calls for geography-aware topology generation.
This example builds five generator families — Waxman, Erdos-Renyi,
Barabasi-Albert, a GT-ITM-style transit-stub hierarchy, and GeoGen (the
generator the paper envisions) — and contrasts their distance
preference function f(d) with a measured dataset's, printing:

* the small-d decay slope of ln f(d) (distance sensitivity),
* the mean edge length,
* the degree distribution's tail weight.

GeoGen additionally demonstrates the annotations the paper says
geography makes easy: per-link latencies and per-node AS labels.

Run:
    python examples/topology_generator_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import small_scenario, run_pipeline
from repro.core.experiments import compare_generator
from repro.core.distance import preference_function, waxman_fit
from repro.errors import AnalysisError
from repro.generators import (
    GeoGenConfig,
    barabasi_albert_graph,
    erdos_renyi_for_mean_degree,
    geogen_graph,
    transit_stub_graph,
    waxman_for_mean_degree,
)
from repro.geo.regions import US, WORLD

N_NODES = 1_500
US_BOX = dict(south=26.0, north=49.0, west=-124.0, east=-66.0)


def tail_weight(degrees: np.ndarray) -> float:
    """max degree / median degree: a quick heavy-tail indicator."""
    return float(degrees.max() / max(np.median(degrees), 1.0))


def main() -> None:
    rng = np.random.default_rng(31415)

    print("measuring the synthetic Internet (small scenario)...")
    result = run_pipeline(small_scenario())
    measured = result.dataset("IxMapper", "Skitter")
    pref = preference_function(measured, US, bin_miles=35.0)
    try:
        measured_l = f"{waxman_fit(pref).l_miles:.0f} mi"
    except AnalysisError:
        measured_l = "n/a at this scale"
    print(f"measured US decay scale L ~ {measured_l}\n")

    graphs = [
        waxman_for_mean_degree(N_NODES, alpha=0.05, mean_degree=3.0, rng=rng,
                               **US_BOX),
        erdos_renyi_for_mean_degree(N_NODES, mean_degree=3.0, rng=rng, **US_BOX),
        barabasi_albert_graph(N_NODES, m=2, rng=rng, **US_BOX),
        transit_stub_graph(8, 5, 5, 6, rng=rng, **US_BOX),
        geogen_graph(
            result.world, GeoGenConfig(n_nodes=N_NODES, n_ases=50), rng
        ).graph,
    ]

    header = (
        f"{'generator':17s} {'nodes':>6s} {'edges':>7s} {'mean deg':>9s} "
        f"{'decay slope':>12s} {'mean edge mi':>13s} {'deg tail':>9s}"
    )
    print(header)
    print("-" * len(header))
    for graph in graphs:
        region = WORLD if graph.name == "geogen" else US
        comparison = compare_generator(graph, region=region, bin_miles=35.0)
        slope = (
            f"{comparison.decay_slope:+.5f}"
            if np.isfinite(comparison.decay_slope)
            else "     n/a"
        )
        print(
            f"{graph.name:17s} {graph.n_nodes:>6,d} {graph.n_edges:>7,d} "
            f"{graph.mean_degree():>9.2f} {slope:>12s} "
            f"{graph.edge_lengths_miles().mean():>13.0f} "
            f"{tail_weight(graph.degrees()):>9.1f}"
        )

    print()
    print("GeoGen annotations (what geography buys a generator):")
    annotated = geogen_graph(
        result.world, GeoGenConfig(n_nodes=400, n_ases=20), rng
    )
    lat = annotated.latencies_ms
    print(f"  link latency: min {lat.min():.2f} ms, median "
          f"{np.median(lat):.2f} ms, max {lat.max():.2f} ms")
    asns, counts = np.unique(annotated.graph.asns, return_counts=True)
    print(f"  AS labels: {asns.size} ASes, largest holds {counts.max()} of "
          f"{annotated.graph.n_nodes} routers")
    print()
    print("Reading: negative decay slope = distance-sensitive link")
    print("formation (what the paper measures for the real Internet);")
    print("Erdos-Renyi and Barabasi-Albert are flat, as Section II argues.")


if __name__ == "__main__":
    main()
