#!/usr/bin/env python3
"""How measurement design changes what you see: a bias study.

The paper's two inventories differ in method (multi-monitor traceroute
union vs single source + source routing + alias resolution), and the
paper argues its conclusions are robust to those differences.  This
example quantifies the differences directly against ground truth:

* coverage: fraction of true routers/links observed;
* monitor count: how the observed graph grows with vantage points;
* alias resolution failures: how interface-level maps inflate node
  counts;
* geolocation error: mean distance between mapped and true positions.

Run:
    python examples/measurement_bias_study.py
"""

from __future__ import annotations

import numpy as np

from repro import small_scenario
from repro.config import MercatorConfig, SkitterConfig
from repro.datasets.pipeline import run_pipeline
from repro.geo.distance import haversine_miles
from repro.measure.mercator import run_mercator
from repro.measure.skitter import run_skitter


def link_recall(topology, inventory) -> float:
    """Fraction of true links with at least one observed counterpart."""
    observed_router_pairs = set()
    by_loopback = {r.loopback: r.router_id for r in topology.routers}
    for a, b in inventory.links:
        ra = by_loopback.get(a)
        rb = by_loopback.get(b)
        if ra is None:
            ra = topology.interfaces[a].router_id
        if rb is None:
            rb = topology.interfaces[b].router_id
        observed_router_pairs.add((min(ra, rb), max(ra, rb)))
    return len(observed_router_pairs) / topology.n_links


def router_recall(topology, inventory) -> float:
    """Fraction of true routers observed at least once."""
    by_loopback = {r.loopback: r.router_id for r in topology.routers}
    seen = set()
    for address in inventory.nodes:
        rid = by_loopback.get(address)
        if rid is None:
            rid = topology.interfaces[address].router_id
        seen.add(rid)
    return len(seen) / topology.n_routers


def main() -> None:
    config = small_scenario()
    print("building ground truth and running the standard campaigns...")
    result = run_pipeline(config)
    topology = result.topology
    rng = np.random.default_rng(99)

    print(f"\nground truth: {topology.n_routers:,} routers, "
          f"{topology.n_links:,} links\n")

    # --- monitor-count sweep (the marginal utility of vantage points) ---
    print("Skitter vantage-point sweep (destinations fixed at 600/monitor):")
    print(f"{'monitors':>9s} {'nodes':>8s} {'links':>8s} "
          f"{'router recall':>14s} {'link recall':>12s}")
    for n_monitors in (1, 2, 4, 8):
        inventory = run_skitter(
            topology,
            SkitterConfig(n_monitors=n_monitors, destinations_per_monitor=600),
            np.random.default_rng(7),
        )
        print(
            f"{n_monitors:>9d} {inventory.n_nodes:>8,d} "
            f"{inventory.n_links:>8,d} "
            f"{router_recall(topology, inventory):>13.1%} "
            f"{link_recall(topology, inventory):>11.1%}"
        )
    print("  -> each extra monitor adds lateral links a single tree misses")
    print("     (the marginal-utility effect of Barford et al. cited in the paper)")

    # --- alias resolution sweep -----------------------------------------
    print("\nMercator alias-resolution sweep (same probes, varying success):")
    print(f"{'success rate':>13s} {'nodes':>8s} {'true routers seen':>18s} "
          f"{'inflation':>10s}")
    for rate in (1.0, 0.9, 0.6, 0.3):
        inventory = run_mercator(
            topology,
            MercatorConfig(
                n_targets=800, n_source_routed=300, alias_resolution_rate=rate
            ),
            np.random.default_rng(13),
        )
        recall = router_recall(topology, inventory)
        inflation = inventory.n_nodes / (recall * topology.n_routers)
        print(f"{rate:>13.0%} {inventory.n_nodes:>8,d} "
              f"{recall:>17.1%} {inflation:>9.2f}x")
    print("  -> failed alias probes split routers into phantom nodes,")
    print("     the interface-map inaccuracy the paper cites [3]")

    # --- geolocation error ------------------------------------------------
    print("\nGeolocation error against true router positions:")
    truth_by_address = {
        address: topology.routers[iface.router_id].location
        for address, iface in topology.interfaces.items()
    }
    for mapper in ("IxMapper", "EdgeScape"):
        dataset = result.dataset(mapper, "Skitter")
        errors = []
        for i in range(dataset.n_nodes):
            truth = truth_by_address.get(int(dataset.addresses[i]))
            if truth is None:
                continue
            errors.append(
                float(
                    haversine_miles(
                        dataset.lats[i], dataset.lons[i], truth.lat, truth.lon
                    )
                )
            )
        errors_arr = np.asarray(errors)
        print(
            f"  {mapper:10s} median {np.median(errors_arr):6.1f} mi, "
            f"mean {errors_arr.mean():6.1f} mi, "
            f"90th pct {np.percentile(errors_arr, 90):7.1f} mi"
        )
    print("  -> city-level accuracy for hostname/ISP mapping, with a long")
    print("     error tail from whois-HQ fallbacks (dispersed ASes)")


if __name__ == "__main__":
    main()
