#!/usr/bin/env python3
"""Quickstart: run the whole reproduction pipeline and print Table I.

This is the smallest end-to-end use of the library: synthesise a world,
generate a ground-truth Internet, measure it with the Skitter and
Mercator simulators, geolocate with IxMapper and EdgeScape, AS-map with
a RouteViews-style BGP snapshot, and print the sizes of the four
processed datasets (the paper's Table I).

Run:
    python examples/quickstart.py [--scale default] [--seed N]
"""

from __future__ import annotations

import argparse
import time

from repro import default_scenario, run_pipeline, small_scenario
from repro.core import experiments, report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "default"), default="small")
    parser.add_argument("--seed", type=int, default=2002)
    args = parser.parse_args()

    config = (
        small_scenario(args.seed) if args.scale == "small"
        else default_scenario(args.seed)
    )
    print(f"running the pipeline (scale={args.scale}, seed={args.seed})...")
    start = time.time()
    result = run_pipeline(config)
    print(f"done in {time.time() - start:.1f}s\n")

    print("Planted ground truth:")
    truth = result.generation_report
    print(f"  routers      : {truth.n_routers:,}")
    print(f"  links        : {truth.n_links:,}")
    print(f"  interfaces   : {truth.n_interfaces:,}")
    print(f"  interdomain  : {truth.interdomain_fraction:.1%} of links")
    print()

    print(report.render_table1(experiments.table1(result)))
    print()

    print("Mapping-stage bookkeeping (cf. Section III of the paper):")
    for label, rep in result.processing_reports.items():
        unmapped = rep.n_unmapped / rep.n_raw_nodes
        ties = rep.n_location_ties / rep.n_raw_nodes
        print(
            f"  {label:22s} unmapped {unmapped:5.1%}  "
            f"location ties {ties:5.1%}  AS-unmapped {rep.n_as_unmapped}"
        )


if __name__ == "__main__":
    main()
