#!/usr/bin/env python3
"""Export the paper's figures as plottable series + terminal plots.

Runs the pipeline, regenerates the data behind Figures 2, 4, 5, 7 and
9, writes gnuplot-ready ``.dat`` files under ``paper_figures/`` and
prints ASCII renderings — then prints the planted-vs-recovered
validation table that summarises the whole reproduction.

Run:
    python examples/export_paper_figures.py [--outdir paper_figures]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import run_pipeline, small_scenario
from repro.core import experiments
from repro.core.asgeo import as_size_measures, hull_areas, size_distributions
from repro.core.figures import (
    figure2_data,
    figure4_data,
    figure5_data,
    figure7_data,
    figure9_data,
)
from repro.core.validation import validate_recovery
from repro.geo.regions import EUROPE, US


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="paper_figures")
    parser.add_argument("--seed", type=int, default=2002)
    args = parser.parse_args()
    outdir = Path(args.outdir)

    print("running the pipeline (small scenario)...")
    result = run_pipeline(small_scenario(args.seed))
    dataset = result.dataset("IxMapper", "Skitter")

    figures = []
    panels2 = experiments.figure2(result)
    figures.extend(figure2_data(panels2))
    panels4 = experiments.figure4(result)
    figures.extend(figure4_data(panels4))
    figures.extend(figure5_data(panels4, experiments.figure5(panels4)))
    table = as_size_measures(dataset)
    figures.append(figure7_data(size_distributions(table)))
    figures.extend(
        figure9_data(
            {
                "World": hull_areas(dataset),
                "US": hull_areas(dataset, region=US),
                "Europe": hull_areas(dataset, region=EUROPE),
            }
        )
    )

    total_files = 0
    for figure in figures:
        stem = "".join(
            ch if ch.isalnum() else "_" for ch in figure.title.lower()
        ).strip("_")[:60]
        total_files += len(figure.export(outdir / stem))
    print(f"wrote {total_files} series files under {outdir}/\n")

    # Show two representative ASCII renderings.
    show = [figures[0], figures[-3]]  # a Figure 2 panel and Figure 7
    for figure in show:
        print(figure.render())
        print()

    print(validate_recovery(result).render())


if __name__ == "__main__":
    main()
