#!/usr/bin/env python3
"""Analyse individual AS footprints in a processed dataset.

A network-operations / peering-strategy view of Section VI: for the ten
largest ASes in a measured dataset, report node counts, distinct
locations, AS-graph degree, convex-hull extent, and the split and mean
lengths of their intra- vs interdomain links.  Ends with the dispersal
rule the paper derives: every AS above the size cutoff is maximally
dispersed.

Run:
    python examples/isp_footprint_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import run_pipeline, small_scenario
from repro.core.asgeo import as_size_measures, hull_areas, hull_vs_size
from repro.geo.projection import WORLD_ALBERS
from repro.geo.hull import convex_hull_area


def main() -> None:
    print("running the pipeline (small scenario)...")
    result = run_pipeline(small_scenario())
    dataset = result.dataset("IxMapper", "Skitter")

    table = as_size_measures(dataset)
    hulls = hull_areas(dataset)
    order = np.argsort(table.n_nodes)[::-1][:10]

    lengths = dataset.link_lengths()
    inter_mask = dataset.interdomain_mask()
    intra_mask = dataset.intradomain_mask()
    link_asns = dataset.asns[dataset.links]

    header = (
        f"{'ASN':>6s} {'nodes':>6s} {'locs':>5s} {'degree':>7s} "
        f"{'hull sq mi':>12s} {'intra links':>12s} {'intra mi':>9s} "
        f"{'inter links':>12s} {'inter mi':>9s}"
    )
    print()
    print("Top 10 ASes by measured node count")
    print(header)
    print("-" * len(header))
    for i in order:
        asn = int(table.asns[i])
        touches = (link_asns[:, 0] == asn) | (link_asns[:, 1] == asn)
        intra = touches & intra_mask
        inter = touches & inter_mask
        intra_mean = lengths[intra].mean() if intra.any() else 0.0
        inter_mean = lengths[inter].mean() if inter.any() else 0.0
        print(
            f"{asn:>6d} {table.n_nodes[i]:>6,d} {table.n_locations[i]:>5,d} "
            f"{table.degree[i]:>7,d} {hulls.areas[i]:>12,.0f} "
            f"{int(intra.sum()):>12,d} {intra_mean:>9.0f} "
            f"{int(inter.sum()):>12,d} {inter_mean:>9.0f}"
        )

    # The whois-HQ artefact the paper sees in Figure 8(a): big ASes whose
    # interfaces pile onto a couple of distinguishable locations.
    piled = (table.n_nodes >= 30) & (table.n_locations <= 3)
    print()
    if piled.any():
        asns = ", ".join(str(int(a)) for a in table.asns[piled])
        print(f"whois-HQ piling (many nodes, <= 3 locations): ASes {asns}")
        print("  (hostname-sloppy ISPs geolocate to their registered HQ —")
        print("   the low line of points in the paper's Figure 8a)")
    else:
        print("no whois-HQ piling at this scale")

    # The dispersal cutoff (Figure 10).
    print()
    summary = hull_vs_size(table, hulls, size_measure="nodes", cutoff=200)
    above = summary.sizes >= summary.cutoff
    print(f"ASes with >= {summary.cutoff:.0f} nodes: {int(above.sum())}")
    if above.any():
        print(
            "  least dispersed of them covers "
            f"{summary.dispersal_ratio:.0%} of the maximum observed hull — "
            "all large ASes are (near-)maximally dispersed"
        )

    # Compare a compact and a dispersed small AS, concretely.
    small = np.flatnonzero(~above)
    if small.size >= 2:
        areas = hulls.areas[small]
        compact = small[int(np.argmin(areas))]
        spread = small[int(np.argmax(areas))]
        print()
        print("small-AS variability (Figure 10's other regime):")
        for idx, tag in ((compact, "most compact"), (spread, "most dispersed")):
            nodes = dataset.nodes_of_as(int(table.asns[idx]))
            x, y = WORLD_ALBERS.project(dataset.lats[nodes], dataset.lons[nodes])
            area = convex_hull_area(np.column_stack([x, y]))
            print(
                f"  AS {int(table.asns[idx]):>5d} ({tag:15s}): "
                f"{nodes.size:4d} nodes, hull {area:,.0f} sq mi"
            )


if __name__ == "__main__":
    main()
