"""Tests for repro.datasets.mapped."""

import numpy as np
import pytest

from repro.bgp.table import UNMAPPED_ASN
from repro.datasets.mapped import MappedDataset
from repro.errors import DatasetError
from repro.geo.regions import Region


def _dataset() -> MappedDataset:
    """Six nodes: 3 in a west cluster (AS 1), 3 east (AS 2, one unmapped)."""
    return MappedDataset(
        label="test",
        kind="skitter",
        addresses=np.arange(6, dtype=np.int64),
        lats=np.array([37.7, 37.8, 37.7, 40.7, 40.0, 40.01]),
        lons=np.array([-122.4, -122.3, -122.4, -74.0, -75.2, -75.2]),
        asns=np.array([1, 1, 1, 2, 2, UNMAPPED_ASN], dtype=np.int64),
        links=np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]], dtype=np.intp),
    )


class TestValidation:
    def test_valid_dataset(self):
        ds = _dataset()
        assert ds.n_nodes == 6 and ds.n_links == 5

    def test_parallel_arrays_enforced(self):
        with pytest.raises(DatasetError):
            MappedDataset(
                label="bad", kind="skitter",
                addresses=np.arange(3, dtype=np.int64),
                lats=np.zeros(2), lons=np.zeros(3),
                asns=np.zeros(3, dtype=np.int64),
                links=np.empty((0, 2), dtype=np.intp),
            )

    def test_link_index_bounds_enforced(self):
        with pytest.raises(DatasetError):
            MappedDataset(
                label="bad", kind="skitter",
                addresses=np.arange(2, dtype=np.int64),
                lats=np.zeros(2), lons=np.zeros(2),
                asns=np.zeros(2, dtype=np.int64),
                links=np.array([[0, 5]], dtype=np.intp),
            )

    def test_self_loop_rejected(self):
        with pytest.raises(DatasetError):
            MappedDataset(
                label="bad", kind="skitter",
                addresses=np.arange(2, dtype=np.int64),
                lats=np.zeros(2), lons=np.zeros(2),
                asns=np.zeros(2, dtype=np.int64),
                links=np.array([[1, 1]], dtype=np.intp),
            )


class TestLocations:
    def test_distinct_locations_rounded(self):
        ds = _dataset()
        # Nodes 0 and 2 share a rounded location; 4 and 5 share one.
        assert ds.n_locations == 4

    def test_location_keys_shape(self):
        keys = _dataset().location_keys()
        assert keys.shape == (6, 2)


class TestLinkGeometry:
    def test_link_lengths(self):
        lengths = _dataset().link_lengths()
        assert lengths.shape == (5,)
        assert lengths[0] < 20  # intra-cluster
        assert lengths[2] > 2000  # coast to coast

    def test_interdomain_mask_excludes_unmapped(self):
        ds = _dataset()
        inter = ds.interdomain_mask()
        intra = ds.intradomain_mask()
        # Link (2,3) crosses AS 1 -> AS 2; link (4,5) touches unmapped.
        assert inter.tolist() == [False, False, True, False, False]
        assert intra.tolist() == [True, True, False, True, False]


class TestRestrict:
    def test_restrict_keeps_inside_nodes(self):
        ds = _dataset()
        west = Region("west", north=45.0, south=30.0, west=-130.0, east=-100.0)
        sub = ds.restrict(west)
        assert sub.n_nodes == 3
        assert sub.n_links == 2  # links among nodes 0, 1, 2

    def test_restrict_reindexes_links(self):
        ds = _dataset()
        east = Region("east", north=45.0, south=30.0, west=-80.0, east=-70.0)
        sub = ds.restrict(east)
        assert sub.n_nodes == 3
        assert sub.links.max() < sub.n_nodes
        sub_lengths = sub.link_lengths()
        assert np.all(sub_lengths >= 0)

    def test_restrict_label(self):
        ds = _dataset()
        region = Region("east", north=45.0, south=30.0, west=-80.0, east=-70.0)
        assert "east" in ds.restrict(region).label

    def test_empty_restriction(self):
        ds = _dataset()
        nowhere = Region("nowhere", north=-60.0, south=-70.0, west=0.0, east=10.0)
        sub = ds.restrict(nowhere)
        assert sub.n_nodes == 0 and sub.n_links == 0


class TestAsStructure:
    def test_known_asns_excludes_sentinel(self):
        assert _dataset().known_asns().tolist() == [1, 2]

    def test_as_node_counts(self):
        counts = _dataset().as_node_counts()
        assert counts == {1: 3, 2: 2}

    def test_as_graph_edges(self):
        edges = _dataset().as_graph_edges()
        assert edges == {(1, 2)}

    def test_as_degrees(self):
        degrees = _dataset().as_degrees()
        assert degrees == {1: 1, 2: 1}

    def test_nodes_of_as(self):
        assert _dataset().nodes_of_as(1).tolist() == [0, 1, 2]
