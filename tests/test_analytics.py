"""Continuous analytics: differential engine, drift, store, runner."""

import os
import sqlite3

import numpy as np
import pytest

from repro.analytics import (
    AnalyticsEngine,
    AnalyticsRunner,
    DriftConfig,
    DriftDetector,
    MetricStore,
    analytics_lag,
    replay_wal,
)
from repro.core.density import patch_regression
from repro.core.distance import PAPER_BIN_MILES, preference_function
from repro.datasets.serialize import save_dataset
from repro.errors import AnalyticsError
from repro.geo.regions import STUDY_REGIONS
from repro.ingest import Ingester
from repro.measure.stream import DeltaStream
from repro.serve.index import DEFAULT_BIN_MILES, SnapshotIndex


@pytest.fixture(scope="module")
def dataset(pipeline_small):
    return pipeline_small.dataset("IxMapper", "Skitter")


@pytest.fixture(scope="module")
def field(pipeline_small):
    return pipeline_small.world.field


def _advance(dataset, field, batches, *, seed=42, **kwargs):
    """Apply ``batches`` DeltaStream batches through index + engine."""
    index = SnapshotIndex(dataset)
    engine = AnalyticsEngine(
        dataset, population=field, index=index, **kwargs
    )
    stream = DeltaStream(dataset, np.random.default_rng(seed))
    for spec in batches:
        batch = stream.next_batch(**spec)
        index = index.apply_delta(batch)
        engine.apply(batch, index)
    return engine, index


MIXED = [dict(n_adds=6, n_links=8, n_moves=3, n_remaps=2)] * 5
MOVE_HEAVY = [dict(n_adds=0, n_links=0, n_moves=40, n_remaps=0)] * 3
REMAP_HEAVY = [dict(n_adds=0, n_links=0, n_moves=0, n_remaps=200)] * 2
ADD_ONLY = [dict(n_adds=25, n_links=30, n_moves=0, n_remaps=0)] * 3


class TestEngineDifferential:
    @pytest.mark.parametrize(
        "batches", [MIXED, MOVE_HEAVY, REMAP_HEAVY, ADD_ONLY],
        ids=["mixed", "move-heavy", "remap-heavy", "add-only"],
    )
    def test_state_matches_from_scratch_bit_for_bit(
        self, dataset, field, batches
    ):
        engine, index = _advance(dataset, field, batches)
        fresh = AnalyticsEngine(
            index.dataset, population=field, index=index
        )
        for name, state in engine.regions.items():
            other = fresh.regions[name]
            assert np.array_equal(state.mask, other.mask)
            assert state.n_nodes == other.n_nodes
            # Integer state must be *identical*, not merely close.
            assert np.array_equal(state.pair_counts, other.pair_counts)
            assert np.array_equal(state.link_counts, other.link_counts)
            assert np.array_equal(state.occupancy, other.occupancy)
        assert engine.intradomain_links == fresh.intradomain_links
        assert engine.interdomain_links == fresh.interdomain_links

    def test_histograms_match_core_preference_function(self, dataset, field):
        engine, index = _advance(dataset, field, MIXED)
        for region in STUDY_REGIONS:
            bin_miles = PAPER_BIN_MILES.get(region.name, DEFAULT_BIN_MILES)
            pref = preference_function(index.dataset, region, bin_miles)
            state = engine.regions[region.name]
            assert np.array_equal(state.pair_counts, pref.pair_counts)
            assert np.array_equal(state.link_counts, pref.link_counts)
            assert state.n_nodes == pref.n_nodes

    def test_alpha_matches_core_patch_regression(self, dataset, field):
        engine, index = _advance(dataset, field, MIXED)
        metrics = engine.metrics()
        for region in STUDY_REGIONS:
            expected = patch_regression(index.dataset, field, region)
            assert metrics[f"alpha.{region.name}"] == pytest.approx(
                expected.fit.slope, rel=1e-9
            )

    def test_domain_counts_match_dataset_masks(self, dataset, field):
        engine, index = _advance(dataset, field, REMAP_HEAVY)
        final = index.dataset
        assert engine.intradomain_links == int(
            final.intradomain_mask().sum()
        )
        assert engine.interdomain_links == int(
            final.interdomain_mask().sum()
        )

    def test_metrics_match_from_scratch_metrics(self, dataset, field):
        engine, index = _advance(dataset, field, MIXED)
        fresh = AnalyticsEngine(
            index.dataset, population=field, index=index
        )
        live, scratch = engine.metrics(), fresh.metrics()
        assert set(live) == set(scratch)
        for name, value in live.items():
            assert value == pytest.approx(scratch[name], rel=1e-9), name

    def test_generation_guard(self, dataset, field):
        index = SnapshotIndex(dataset)
        engine = AnalyticsEngine(dataset, index=index)
        stream = DeltaStream(dataset, np.random.default_rng(0))
        batch = stream.next_batch()
        index = index.apply_delta(batch)
        skipped = index.apply_delta(
            stream.next_batch()
        )  # engine never saw `batch`s successor
        with pytest.raises(AnalyticsError):
            engine.apply(batch, skipped)

    def test_metrics_are_finite(self, dataset, field):
        engine, _ = _advance(dataset, field, MIXED)
        for name, value in engine.metrics().items():
            assert np.isfinite(value), name


class TestDriftDetector:
    def test_trigger_and_recover_fire_exactly_once(self):
        detector = DriftDetector(DriftConfig(warmup=4, threshold=6.0))
        events = []
        # Stable baseline, an abrupt sustained shift, then a long
        # settled tail: the capped CUSUM drains by ~slack per settled
        # generation, so recovery needs dozens of post-shift samples.
        series = [1.0, 1.01, 0.99, 1.0, 1.005, 0.995] + [3.0] * 40
        for gen, value in enumerate(series, start=1):
            event = detector.update("m", gen, value)
            if event is not None:
                events.append(event)
        kinds = [e.kind for e in events]
        # One trigger when the shift lands; one recover once the EWMA
        # has re-converged on the new level; never a second trigger.
        assert kinds.count("trigger") == 1
        assert kinds.count("recover") == 1
        assert kinds.index("trigger") < kinds.index("recover")

    def test_stable_series_never_alerts(self):
        rng = np.random.default_rng(7)
        detector = DriftDetector(DriftConfig(warmup=4))
        for gen in range(1, 200):
            value = 10.0 + rng.normal(0.0, 0.1)
            assert detector.update("m", gen, value) is None

    def test_allowlist_ignores_other_metrics(self):
        detector = DriftDetector(
            DriftConfig(warmup=1), metrics=["watched"]
        )
        for gen in range(1, 10):
            assert detector.update("ignored", gen, gen * 100.0) is None
        assert detector.score("ignored") == 0.0

    def test_per_metric_threshold_override(self):
        config = DriftConfig(warmup=2, threshold=100.0, z_clip=8.0)
        detector = DriftDetector(config, thresholds={"touchy": 2.0})
        series = [1.0, 1.0, 1.0, 50.0]
        triggered = []
        for gen, value in enumerate(series, start=1):
            for metric in ("touchy", "stoic"):
                event = detector.update(metric, gen, value)
                if event is not None:
                    triggered.append(event.metric)
        assert triggered == ["touchy"]

    def test_config_validation(self):
        with pytest.raises(AnalyticsError):
            DriftConfig(ewma_alpha=0.0)
        with pytest.raises(AnalyticsError):
            DriftConfig(threshold=-1.0)
        with pytest.raises(AnalyticsError):
            DriftConfig(recover_fraction=1.0)
        with pytest.raises(AnalyticsError):
            DriftConfig(warmup=0)

    def test_non_finite_samples_are_ignored(self):
        detector = DriftDetector(DriftConfig(warmup=1))
        assert detector.update("m", 1, float("nan")) is None
        assert detector.update("m", 2, float("inf")) is None
        assert detector.score("m") == 0.0


class TestMetricStore:
    def test_exactly_once_per_generation(self, tmp_path):
        store = MetricStore(tmp_path / "metrics.db")
        cid = store.ensure_campaign("test")
        assert store.record_generation(cid, 1, {"nodes": 10.0})
        assert not store.record_generation(cid, 1, {"nodes": 999.0})
        assert store.latest(cid)["metrics"]["nodes"] == 10.0
        assert store.generations(cid) == [1]

    def test_resume_after_crash_reopens_and_dedups(self, tmp_path):
        path = tmp_path / "metrics.db"
        store = MetricStore(path)
        cid = store.ensure_campaign("test")
        store.record_generation(cid, 1, {"m": 1.0})
        store.record_generation(cid, 2, {"m": 2.0})
        store.record_alert(
            cid, 2, "m", "trigger", value=2.0, score=7.0, threshold=6.0
        )
        # A "crashed" process holds no live handle: a fresh store over
        # the same file sees everything and re-recording is a no-op.
        reopened = MetricStore(path)
        rid = reopened.ensure_campaign("test")
        assert rid == cid
        assert reopened.generations(rid) == [1, 2]
        assert not reopened.record_generation(rid, 2, {"m": 99.0})
        assert not reopened.record_alert(
            rid, 2, "m", "trigger", value=2.0, score=7.0, threshold=6.0
        )
        assert len(reopened.alerts(rid)) == 1

    def test_non_finite_values_rejected(self, tmp_path):
        store = MetricStore(tmp_path / "metrics.db")
        cid = store.ensure_campaign("test")
        with pytest.raises(AnalyticsError):
            store.record_generation(cid, 1, {"bad": float("nan")})
        assert store.generations(cid) == []

    def test_history_and_names(self, tmp_path):
        store = MetricStore(tmp_path / "metrics.db")
        cid = store.ensure_campaign("test")
        for gen in range(1, 6):
            store.record_generation(cid, gen, {"a": float(gen), "b": 0.0})
        assert store.history(cid, "a", limit=3) == [
            (3, 3.0), (4, 4.0), (5, 5.0)
        ]
        assert store.metric_names(cid) == ["a", "b"]
        assert store.latest_gen(cid) == 5

    def test_campaigns_are_isolated(self, tmp_path):
        store = MetricStore(tmp_path / "metrics.db")
        a = store.ensure_campaign("a")
        b = store.ensure_campaign("b")
        store.record_generation(a, 1, {"m": 1.0})
        assert store.latest(b) is None
        assert store.campaigns() == ["a", "b"]

    def test_unusable_path_raises(self, tmp_path):
        missing = tmp_path / "not-a-dir"
        missing.write_text("plain file, not a directory")
        with pytest.raises(AnalyticsError):
            MetricStore(missing / "metrics.db")

    def test_wal_mode_is_active(self, tmp_path):
        path = tmp_path / "metrics.db"
        MetricStore(path)
        conn = sqlite3.connect(path)
        try:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        finally:
            conn.close()
        assert mode == "wal"


class TestRunnerIntegration:
    def _run(self, dataset, tmp_path, specs, *, publish_batches=1, **kw):
        base = tmp_path / "base.npz"
        if not base.exists():
            save_dataset(dataset, base)
        out = tmp_path / "out"
        ingester = Ingester(base, out, publish_batches=publish_batches)
        runner = AnalyticsRunner(out / "analytics.db", **kw)
        runner.attach(ingester)
        runner.record_baseline(ingester.index)
        stream = DeltaStream(dataset, np.random.default_rng(11))
        for spec in specs:
            ingester.submit(stream.next_batch(**spec))
        ingester.close()
        return ingester, runner

    def test_publish_path_stores_generations(self, dataset, tmp_path):
        specs = [dict(n_adds=4, n_links=5, n_moves=2, n_remaps=1)] * 4
        ingester, runner = self._run(dataset, tmp_path, specs)
        cid = runner.store.campaign_id("ingest")
        # Baseline gen 1 plus one per published batch.
        assert runner.store.generations(cid) == [1, 2, 3, 4, 5]
        status = ingester.status()["analytics"]
        assert status["analyzed_gen"] == 5
        assert status["lag"] == 0
        latest = runner.store.latest(cid)
        assert latest["snapshot_hash"] == ingester.index.snapshot_hash
        assert latest["n_nodes"] == ingester.index.dataset.n_nodes

    def test_unpublished_batches_count_as_lag(self, dataset, tmp_path):
        specs = [dict(n_adds=4, n_links=5, n_moves=2, n_remaps=1)] * 3
        ingester, runner = self._run(
            dataset, tmp_path, specs, publish_batches=100
        )
        # Nothing published: only the baseline is analyzed, and the
        # index has moved 3 generations past it.
        status = ingester.status()["analytics"]
        assert status["analyzed_gen"] == 1
        assert status["lag"] == 3
        lag = analytics_lag(
            tmp_path / "out" / "analytics.db", "ingest", ingester.index.gen
        )
        assert lag["lag"] == 3

    def test_drift_alert_recorded_once_and_surfaced(self, dataset, tmp_path):
        specs = [dict(n_adds=4, n_links=5, n_moves=2, n_remaps=0)] * 5
        specs.append(dict(n_adds=0, n_links=0, n_moves=0, n_remaps=300))
        ingester, runner = self._run(
            dataset,
            tmp_path,
            specs,
            drift_config=DriftConfig(warmup=4),
            drift_metrics=["intradomain_share"],
        )
        cid = runner.store.campaign_id("ingest")
        alerts = runner.store.alerts(cid)
        triggers = [a for a in alerts if a["kind"] == "trigger"]
        assert len(triggers) == 1
        assert triggers[0]["metric"] == "intradomain_share"
        assert triggers[0]["gen"] == 7
        assert ingester.status()["analytics"]["alerting"] == [
            "intradomain_share"
        ]

    def test_offline_replay_is_idempotent_after_live_run(
        self, dataset, tmp_path
    ):
        specs = [dict(n_adds=4, n_links=5, n_moves=2, n_remaps=0)] * 5
        specs.append(dict(n_adds=0, n_links=0, n_moves=0, n_remaps=300))
        ingester, runner = self._run(
            dataset,
            tmp_path,
            specs,
            drift_config=DriftConfig(warmup=4),
            drift_metrics=["intradomain_share"],
        )
        cid = runner.store.campaign_id("ingest")
        before = {
            gen: runner.store.generation(cid, gen)["metrics"]
            for gen in runner.store.generations(cid)
        }
        summary = replay_wal(
            tmp_path / "base.npz",
            tmp_path / "out" / "ingest.wal",
            tmp_path / "out" / "analytics.db",
            drift_config=DriftConfig(warmup=4),
            drift_metrics=["intradomain_share"],
        )
        assert summary["new_alerts"] == 0
        assert summary["generations_stored"] == len(before)
        store = MetricStore(tmp_path / "out" / "analytics.db")
        for gen, metrics in before.items():
            assert store.generation(cid, gen)["metrics"] == metrics

    def test_observer_survives_engine_failure(self, dataset, tmp_path):
        base = tmp_path / "base.npz"
        save_dataset(dataset, base)
        ingester = Ingester(base, tmp_path / "out", publish_batches=1)
        runner = AnalyticsRunner(tmp_path / "out" / "analytics.db")
        runner.attach(ingester)

        def explode(batch, index):
            raise AnalyticsError("injected engine failure")

        runner.engine.apply = explode  # type: ignore[method-assign]
        stream = DeltaStream(dataset, np.random.default_rng(3))
        result = ingester.submit(stream.next_batch())
        ingester.close()
        # Ingest kept working, and the publish path re-seeded a fresh
        # engine so the generation still landed in the store.
        assert result["status"] == "applied"
        cid = runner.store.campaign_id("ingest")
        assert runner.store.latest_gen(cid) == ingester.index.gen


class TestCoordinatorEndpoints:
    @pytest.fixture()
    def analytics_db(self, tmp_path):
        store = MetricStore(tmp_path / "analytics.db")
        cid = store.ensure_campaign("ingest")
        store.record_generation(
            cid, 3, {"nodes": 100.0, "intradomain_share": 0.8},
            seq=2, snapshot_hash="hash-live", n_nodes=100, n_links=120,
        )
        store.record_generation(
            cid, 4, {"nodes": 104.0, "intradomain_share": 0.78},
            seq=3, snapshot_hash="hash-live-2", n_nodes=104, n_links=125,
        )
        store.record_alert(
            cid, 4, "intradomain_share", "trigger",
            value=0.78, score=7.0, threshold=6.0,
        )
        return tmp_path / "analytics.db"

    @pytest.fixture()
    def coordinator(self, analytics_db):
        from repro.cluster.coordinator import ClusterCoordinator, Routing

        routing = Routing(1, [], [], "hash-live-2")
        coordinator = ClusterCoordinator(
            routing, port=0, analytics_db=analytics_db
        )
        coordinator.start()
        yield coordinator
        coordinator.stop()

    def _get(self, coordinator, target):
        import json
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(
                coordinator.url + target, timeout=30
            ) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_latest(self, coordinator):
        status, payload = self._get(coordinator, "/analytics/latest")
        assert status == 200
        assert payload["gen"] == 4
        assert payload["in_sync"] is True
        assert payload["metrics"]["nodes"] == 104.0
        assert payload["alerts"][0]["kind"] == "trigger"

    def test_history(self, coordinator):
        status, payload = self._get(
            coordinator, "/analytics/history?metric=intradomain_share"
        )
        assert status == 200
        assert payload["points"] == [
            {"gen": 3, "value": 0.8},
            {"gen": 4, "value": 0.78},
        ]

    def test_history_unknown_metric_is_404(self, coordinator):
        status, payload = self._get(
            coordinator, "/analytics/history?metric=nope"
        )
        assert status == 404
        assert "nope" in payload["error"]

    def test_history_requires_metric(self, coordinator):
        status, _ = self._get(coordinator, "/analytics/history")
        assert status == 400

    def test_stats_block(self, coordinator):
        status, payload = self._get(coordinator, "/stats")
        assert status == 200
        block = payload["analytics"]
        assert block["latest_gen"] == 4
        assert block["in_sync"] is True
        assert block["lag"] == 0
        assert block["alerts"] == 1

    def test_unconfigured_is_400(self, tmp_path):
        from repro.cluster.coordinator import ClusterCoordinator, Routing

        coordinator = ClusterCoordinator(Routing(1, [], [], "h"), port=0)
        coordinator.start()
        try:
            status, payload = self._get(coordinator, "/analytics/latest")
        finally:
            coordinator.stop()
        assert status == 400
        assert "not configured" in payload["error"]


class TestProfilerDestination:
    def test_bare_profile_filename_lands_under_profiles(
        self, tmp_path, monkeypatch
    ):
        import argparse

        from repro.cli import _sampling_profiler

        monkeypatch.chdir(tmp_path)
        args = argparse.Namespace(
            profile_sampling="run.collapsed", sampling_hz=97.0
        )
        with _sampling_profiler(args):
            sum(range(1000))
        assert (tmp_path / "profiles" / "run.collapsed").exists()
        assert not (tmp_path / "run.collapsed").exists()

    def test_explicit_directory_is_respected(self, tmp_path, monkeypatch):
        import argparse

        from repro.cli import _sampling_profiler

        monkeypatch.chdir(tmp_path)
        target = tmp_path / "custom" / "run.collapsed"
        args = argparse.Namespace(
            profile_sampling=str(target), sampling_hz=97.0
        )
        with _sampling_profiler(args):
            sum(range(1000))
        assert target.exists()
        assert not (tmp_path / "profiles").exists()


def test_engine_rejects_partition_index(dataset):
    index = SnapshotIndex(dataset)
    index.partition = object()  # simulate a shard-local index
    with pytest.raises(AnalyticsError):
        AnalyticsEngine(dataset, index=index)


def test_analytics_lag_missing_store_is_none(tmp_path):
    assert analytics_lag(tmp_path / "missing.db", "ingest", 5) is None
    os.makedirs(tmp_path / "out")
    MetricStore(tmp_path / "out" / "analytics.db")
    assert (
        analytics_lag(tmp_path / "out" / "analytics.db", "ingest", 5) is None
    )
