"""Tests for repro.geo.grid (75-arc-minute patch grids)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.grid import PAPER_PATCH_ARCMIN, PatchGrid, joint_tally
from repro.geo.regions import US, Region


@pytest.fixture
def small_grid() -> PatchGrid:
    region = Region("unit", north=10.0, south=0.0, west=0.0, east=10.0)
    return PatchGrid(region=region, cell_arcmin=60.0)  # 1-degree cells


class TestGeometry:
    def test_paper_patch_size_constant(self):
        assert PAPER_PATCH_ARCMIN == 75.0

    def test_cell_count(self, small_grid):
        assert small_grid.n_rows == 10
        assert small_grid.n_cols == 10
        assert small_grid.n_cells == 100

    def test_non_divisible_span_rounds_up(self):
        region = Region("odd", north=10.5, south=0.0, west=0.0, east=10.0)
        grid = PatchGrid(region=region, cell_arcmin=60.0)
        assert grid.n_rows == 11

    def test_invalid_cell_size_raises(self):
        with pytest.raises(GeoError):
            PatchGrid(region=US, cell_arcmin=0.0)

    def test_us_patch_edge_is_about_90_miles(self):
        # The paper: 75' patches are "about 90 miles on a side" at US
        # latitudes.
        grid = PatchGrid(region=US)
        assert grid.cell_edge_miles() == pytest.approx(90.0, rel=0.15)


class TestCellIndex:
    def test_interior_point(self, small_grid):
        idx = small_grid.cell_index(np.array([0.5]), np.array([0.5]))
        assert idx[0] == 0

    def test_row_major_indexing(self, small_grid):
        idx = small_grid.cell_index(np.array([1.5]), np.array([2.5]))
        assert idx[0] == 1 * 10 + 2

    def test_outside_point_is_minus_one(self, small_grid):
        idx = small_grid.cell_index(np.array([-1.0]), np.array([0.5]))
        assert idx[0] == -1

    def test_north_east_boundary_snaps_to_last_cell(self, small_grid):
        idx = small_grid.cell_index(np.array([10.0]), np.array([10.0]))
        assert idx[0] == small_grid.n_cells - 1

    @given(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_inside_points_always_get_a_cell(self, lat, lon):
        region = Region("unit", north=10.0, south=0.0, west=0.0, east=10.0)
        grid = PatchGrid(region=region, cell_arcmin=60.0)
        idx = grid.cell_index(np.array([lat]), np.array([lon]))
        assert 0 <= idx[0] < grid.n_cells


class TestTally:
    def test_counts_sum_to_inside_points(self, small_grid):
        rng = np.random.default_rng(3)
        lats = rng.uniform(-5, 15, 200)
        lons = rng.uniform(-5, 15, 200)
        tally = small_grid.tally(lats, lons)
        inside = small_grid.region.contains_mask(lats, lons).sum()
        assert tally.sum() == inside

    def test_weighted_tally(self, small_grid):
        lats = np.array([0.5, 0.5, 5.5])
        lons = np.array([0.5, 0.5, 5.5])
        weights = np.array([2.0, 3.0, 7.0])
        tally = small_grid.tally(lats, lons, weights=weights)
        assert tally[0] == pytest.approx(5.0)
        assert tally.sum() == pytest.approx(12.0)

    def test_empty_input(self, small_grid):
        tally = small_grid.tally(np.empty(0), np.empty(0))
        assert tally.shape == (small_grid.n_cells,)
        assert tally.sum() == 0

    def test_outside_weights_ignored(self, small_grid):
        tally = small_grid.tally(
            np.array([50.0]), np.array([50.0]), weights=np.array([100.0])
        )
        assert tally.sum() == 0


class TestCellCenters:
    def test_centers_are_inside_region(self, small_grid):
        lats, lons = small_grid.cell_centers()
        assert lats.shape == (small_grid.n_cells,)
        assert np.all(small_grid.region.contains_mask(lats, lons))

    def test_first_center_is_southwest(self, small_grid):
        lats, lons = small_grid.cell_centers()
        assert lats[0] == pytest.approx(0.5)
        assert lons[0] == pytest.approx(0.5)

    def test_center_cell_round_trip(self, small_grid):
        lats, lons = small_grid.cell_centers()
        idx = small_grid.cell_index(lats, lons)
        assert np.array_equal(idx, np.arange(small_grid.n_cells))


class TestJointTally:
    def test_population_and_nodes_aligned(self, small_grid):
        pop_lats = np.array([0.5, 5.5])
        pop_lons = np.array([0.5, 5.5])
        pop_w = np.array([100.0, 200.0])
        node_lats = np.array([0.6, 0.7, 5.4])
        node_lons = np.array([0.6, 0.7, 5.4])
        pop, nodes = joint_tally(
            small_grid, pop_lats, pop_lons, pop_w, node_lats, node_lons
        )
        cell_a = small_grid.cell_index(np.array([0.5]), np.array([0.5]))[0]
        cell_b = small_grid.cell_index(np.array([5.5]), np.array([5.5]))[0]
        assert pop[cell_a] == 100.0 and nodes[cell_a] == 2
        assert pop[cell_b] == 200.0 and nodes[cell_b] == 1
