"""Tests for repro.geoloc (whois, DNS LOC, IxMapper, EdgeScape)."""

import numpy as np
import pytest

from repro.config import GeolocConfig
from repro.errors import GeolocationError
from repro.geo.coords import GeoPoint
from repro.geoloc.base import (
    METHOD_DNSLOC,
    METHOD_HOSTNAME,
    METHOD_ISP,
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    build_context,
)
from repro.geoloc.dnsloc import build_loc_records
from repro.geoloc.edgescape import EdgeScape
from repro.geoloc.ixmapper import IxMapper
from repro.geoloc.whois import WhoisRegistry
from repro.net.addressing import AddressPlan


@pytest.fixture
def toy_context(toy_topology) -> GeoContext:
    """A context for the toy topology with hand-built knowledge."""
    # Toy addresses are small integers (1000-1005, 2000-2009); grant AS
    # 100 a block covering all of them so whois lookups resolve.
    from repro.net.ip import Prefix

    plan = AddressPlan(pool=Prefix.parse("0.0.0.0/8"), block_length=16)
    plan.grant_block(100)
    whois = WhoisRegistry.from_plan(plan, toy_topology.asns)
    return GeoContext(
        city_locations={
            "SFO": GeoPoint(37.77, -122.42),
            "NYC": GeoPoint(40.71, -74.01),
        },
        hostnames=dict(toy_topology.hostnames),
        whois=whois,
        loc_records={},
        as_of_address={
            a: toy_topology.routers[i.router_id].asn
            for a, i in toy_topology.interfaces.items()
        },
    )


class TestWhoisRegistry:
    def test_lookup_resolves_owner(self, toy_topology):
        plan = AddressPlan()
        prefix = plan.grant_block(100)
        registry = WhoisRegistry.from_plan(plan, toy_topology.asns)
        record = registry.lookup(prefix.base + 5)
        assert record is not None
        assert record.asn == 100
        assert record.headquarters == toy_topology.asns[100].headquarters

    def test_lookup_miss_returns_none(self, toy_topology):
        registry = WhoisRegistry.from_plan(AddressPlan(), toy_topology.asns)
        assert registry.lookup(123456) is None

    def test_n_orgs(self, toy_topology):
        registry = WhoisRegistry.from_plan(AddressPlan(), toy_topology.asns)
        assert registry.n_orgs == 2


class TestDnsLoc:
    def test_rate_zero_gives_no_records(self, toy_topology):
        records = build_loc_records(toy_topology, 0.0, np.random.default_rng(0))
        assert records == {}

    def test_rate_one_covers_all_interfaces(self, toy_topology):
        records = build_loc_records(toy_topology, 1.0, np.random.default_rng(0))
        assert set(records) == set(toy_topology.interfaces)

    def test_records_carry_true_location(self, toy_topology):
        records = build_loc_records(toy_topology, 1.0, np.random.default_rng(0))
        for address, location in records.items():
            router = toy_topology.routers[
                toy_topology.interfaces[address].router_id
            ]
            assert location == router.location


class TestIxMapper:
    def test_hostname_mapping_hits_city(self, toy_context, toy_topology):
        # Hostname embeds "XXX<digit>" which is unknown; rewrite one to a
        # known code to exercise the hostname path.
        address = toy_topology.routers[0].loopback
        toy_context.hostnames[address] = "0.so-1-0-0.CR1.SFO1.westnet.net"
        mapper = IxMapper(toy_context, np.random.default_rng(0), failure_rate=0.0)
        result = mapper.locate(address)
        assert result.method == METHOD_HOSTNAME
        assert result.location == GeoPoint(37.77, -122.42)

    def test_unknown_code_falls_back_to_whois(self, toy_context, toy_topology):
        address = toy_topology.routers[0].loopback
        mapper = IxMapper(toy_context, np.random.default_rng(0), failure_rate=0.0)
        result = mapper.locate(address)
        # Toy hostnames carry the unknown code "XXX<n>" -> whois HQ.
        assert result.method == METHOD_WHOIS
        assert result.location == toy_topology.asns[100].headquarters

    def test_loc_record_preferred_over_whois(self, toy_context, toy_topology):
        address = toy_topology.routers[0].loopback
        true_location = toy_topology.routers[0].location
        toy_context.loc_records[address] = true_location
        mapper = IxMapper(toy_context, np.random.default_rng(0), failure_rate=0.0)
        result = mapper.locate(address)
        assert result.method == METHOD_DNSLOC
        assert result.location == true_location

    def test_failure_rate_one_never_maps(self, toy_context, toy_topology):
        mapper = IxMapper(toy_context, np.random.default_rng(0), failure_rate=1.0)
        result = mapper.locate(toy_topology.routers[0].loopback)
        assert result.method == METHOD_UNMAPPED
        assert not result.mapped

    def test_unknown_address_unmapped(self, toy_context):
        mapper = IxMapper(toy_context, np.random.default_rng(0), failure_rate=0.0)
        # Address outside both whois blocks with no hostname.
        result = mapper.locate(0x7F000001)
        assert result.method == METHOD_UNMAPPED

    def test_bad_failure_rate_rejected(self, toy_context):
        with pytest.raises(GeolocationError):
            IxMapper(toy_context, np.random.default_rng(0), failure_rate=1.5)

    def test_name(self, toy_context):
        assert IxMapper(toy_context, np.random.default_rng(0)).name == "IxMapper"


class TestEdgeScape:
    def test_isp_feed_gives_city_location(self, toy_context, toy_topology):
        mapper = EdgeScape(
            toy_context, toy_topology, np.random.default_rng(0),
            isp_coverage=1.0, failure_rate=0.0,
        )
        address = toy_topology.routers[0].loopback
        result = mapper.locate(address)
        assert result.method == METHOD_ISP
        assert result.location == GeoPoint(37.77, -122.42)  # SFO centre

    def test_no_coverage_falls_back(self, toy_context, toy_topology):
        mapper = EdgeScape(
            toy_context, toy_topology, np.random.default_rng(0),
            isp_coverage=0.0, failure_rate=0.0,
        )
        result = mapper.locate(toy_topology.routers[0].loopback)
        assert result.method in (METHOD_HOSTNAME, METHOD_WHOIS)

    def test_coverage_is_per_as(self, toy_context, toy_topology):
        mapper = EdgeScape(
            toy_context, toy_topology, np.random.default_rng(3),
            isp_coverage=0.5, failure_rate=0.0,
        )
        covered = mapper.covered_asns
        assert covered <= {100, 200}

    def test_failure_rate_one_never_maps(self, toy_context, toy_topology):
        mapper = EdgeScape(
            toy_context, toy_topology, np.random.default_rng(0),
            isp_coverage=1.0, failure_rate=1.0,
        )
        result = mapper.locate(toy_topology.routers[0].loopback)
        assert not result.mapped

    def test_invalid_parameters_rejected(self, toy_context, toy_topology):
        with pytest.raises(GeolocationError):
            EdgeScape(
                toy_context, toy_topology, np.random.default_rng(0),
                isp_coverage=2.0,
            )


class TestLocateMany:
    """The batch API must be bit-identical to sequential locate calls."""

    def _toy_addresses(self, toy_topology):
        return sorted(toy_topology.interfaces)

    def test_ixmapper_batch_matches_sequential(self, toy_context, toy_topology):
        addresses = self._toy_addresses(toy_topology)
        batched = IxMapper(
            toy_context, np.random.default_rng(11), failure_rate=0.3
        ).locate_many(addresses)
        scalar_mapper = IxMapper(
            toy_context, np.random.default_rng(11), failure_rate=0.3
        )
        sequential = [scalar_mapper.locate(a) for a in addresses]
        assert batched == sequential

    def test_edgescape_batch_matches_sequential(self, toy_context, toy_topology):
        make = lambda seed: EdgeScape(  # noqa: E731
            toy_context, toy_topology, np.random.default_rng(seed),
            isp_coverage=0.5, failure_rate=0.3,
        )
        addresses = self._toy_addresses(toy_topology)
        batched = make(7).locate_many(addresses)
        scalar_mapper = make(7)
        sequential = [scalar_mapper.locate(a) for a in addresses]
        assert batched == sequential

    def test_locate_delegates_to_locate_many(self, toy_context, toy_topology):
        a = IxMapper(toy_context, np.random.default_rng(5), failure_rate=0.0)
        b = IxMapper(toy_context, np.random.default_rng(5), failure_rate=0.0)
        address = toy_topology.routers[0].loopback
        assert a.locate(address) == b.locate_many([address])[0]

    def test_empty_batch(self, toy_context):
        mapper = IxMapper(toy_context, np.random.default_rng(5))
        assert mapper.locate_many([]) == []

    def test_sequential_mixin_fallback(self, toy_context, toy_topology):
        from repro.geoloc.base import MappingResult, SequentialLocateMixin

        class Scripted(SequentialLocateMixin):
            name = "Scripted"

            def locate(self, address):
                return MappingResult(location=None, method=METHOD_UNMAPPED)

        results = Scripted().locate_many([1, 2, 3])
        assert len(results) == 3 and not any(r.mapped for r in results)

    def test_locate_batch_falls_back_without_locate_many(self):
        from repro.geoloc.base import MappingResult, locate_batch

        class Minimal:
            name = "Minimal"

            def locate(self, address):
                return MappingResult(location=None, method=METHOD_UNMAPPED)

        assert len(locate_batch(Minimal(), [1, 2])) == 2


class TestLocateBatchDedup:
    """Duplicate addresses within one batch hit the tool only once."""

    class Recording:
        """Scripted locator counting how often each address is resolved."""

        name = "Recording"

        def __init__(self):
            self.calls: list[int] = []

        def locate_many(self, addresses):
            from repro.geo.coords import GeoPoint
            from repro.geoloc.base import MappingResult

            self.calls.extend(addresses)
            return [
                MappingResult(
                    location=GeoPoint(float(a % 90), float(a % 180)),
                    method=METHOD_HOSTNAME,
                )
                for a in addresses
            ]

    def test_duplicates_resolved_once(self):
        from repro.geoloc.base import locate_batch

        tool = self.Recording()
        batch = [7, 3, 7, 7, 9, 3]
        results = locate_batch(tool, batch)
        # The tool saw each distinct address once, first-occurrence order.
        assert tool.calls == [7, 3, 9]
        assert len(results) == len(batch)
        # Every duplicate receives the single computed result.
        assert results[0] == results[2] == results[3]
        assert results[1] == results[5]
        assert results[0].location.lat == 7.0
        assert results[4].location.lat == 9.0

    def test_no_duplicates_passes_through_unchanged(self):
        from repro.geoloc.base import locate_batch

        tool = self.Recording()
        batch = [1, 2, 3]
        results = locate_batch(tool, batch)
        assert tool.calls == batch
        assert [r.location.lat for r in results] == [1.0, 2.0, 3.0]

    def test_batch_semantics_unchanged_for_real_tool(
        self, toy_context, toy_topology
    ):
        """Dedup must not perturb results for duplicate-free batches."""
        from repro.geoloc.base import locate_batch

        addresses = sorted(toy_topology.interfaces)
        via_wrapper = locate_batch(
            IxMapper(toy_context, np.random.default_rng(11), failure_rate=0.3),
            addresses,
        )
        direct = IxMapper(
            toy_context, np.random.default_rng(11), failure_rate=0.3
        ).locate_many(addresses)
        assert via_wrapper == direct

    def test_result_count_mismatch_rejected(self):
        from repro.errors import GeolocationError
        from repro.geoloc.base import locate_batch

        class Broken:
            name = "Broken"

            def locate_many(self, addresses):
                return []

        with pytest.raises(GeolocationError):
            locate_batch(Broken(), [1, 2])


class TestBuildContext:
    def test_context_from_ground_truth(self, world_small, generated_small):
        topology, plan, _ = generated_small
        context = build_context(
            world_small, topology, plan, GeolocConfig(),
            np.random.default_rng(0),
        )
        assert set(context.hostnames) == set(topology.interfaces)
        assert context.whois.n_orgs == len(topology.asns)
        assert len(context.city_locations) == len(world_small.cities)
        # DNS LOC records exist at roughly the configured (rare) rate.
        rate = len(context.loc_records) / len(topology.interfaces)
        assert 0.0 < rate < 0.02

    def test_mappers_achieve_high_coverage(self, world_small, generated_small):
        topology, plan, _ = generated_small
        rng = np.random.default_rng(1)
        context = build_context(world_small, topology, plan, GeolocConfig(), rng)
        ix = IxMapper(context, rng, failure_rate=0.012)
        es = EdgeScape(context, topology, rng, failure_rate=0.004)
        from repro.net.ip import is_private

        addresses = [
            a for a in list(topology.interfaces)[:800] if not is_private(a)
        ]
        ix_mapped = sum(ix.locate(a).mapped for a in addresses)
        es_mapped = sum(es.locate(a).mapped for a in addresses)
        # The paper: IxMapper misses 1-1.5%, EdgeScape 0.3-0.6%.
        assert ix_mapped / len(addresses) > 0.95
        assert es_mapped / len(addresses) > 0.97
