"""Tests for repro.net.addressing (per-AS allocation)."""

import pytest

from repro.errors import AllocationError
from repro.net.addressing import AddressPlan, AsBlock
from repro.net.ip import Prefix, format_address


class TestAsBlock:
    def test_take_skips_network_address(self):
        block = AsBlock(Prefix.parse("20.0.0.0/24"))
        first = block.take()
        assert format_address(first) == "20.0.0.1"

    def test_remaining_reserves_broadcast(self):
        block = AsBlock(Prefix.parse("20.0.0.0/30"))  # 4 addresses
        assert block.remaining() == 2  # .1 and .2 only
        block.take()
        block.take()
        with pytest.raises(AllocationError):
            block.take()


class TestAddressPlan:
    def test_sequential_allocation_within_block(self):
        plan = AddressPlan()
        a1 = plan.allocate(100)
        a2 = plan.allocate(100)
        assert a2 == a1 + 1

    def test_different_ases_get_disjoint_blocks(self):
        plan = AddressPlan()
        a = plan.allocate(100)
        b = plan.allocate(200)
        pa = plan.prefixes_of(100)[0]
        pb = plan.prefixes_of(200)[0]
        assert pa != pb
        assert pa.contains(a) and pb.contains(b)
        assert not pa.contains(b)

    def test_block_exhaustion_grants_new_block(self):
        plan = AddressPlan(pool=Prefix.parse("16.0.0.0/8"), block_length=30)
        seen = {plan.allocate(7) for _ in range(5)}
        assert len(seen) == 5
        assert len(plan.prefixes_of(7)) == 3  # 2 usable hosts per /30

    def test_pool_exhaustion_raises(self):
        plan = AddressPlan(pool=Prefix.parse("16.0.0.0/28"), block_length=30)
        for asn in range(4):
            plan.grant_block(asn)
        with pytest.raises(AllocationError):
            plan.grant_block(99)

    def test_block_length_validation(self):
        with pytest.raises(AllocationError):
            AddressPlan(pool=Prefix.parse("16.0.0.0/16"), block_length=16)
        with pytest.raises(AllocationError):
            AddressPlan(pool=Prefix.parse("16.0.0.0/16"), block_length=31)

    def test_prefix_origin_pairs_cover_all_grants(self):
        plan = AddressPlan()
        plan.allocate(1)
        plan.allocate(2)
        plan.allocate(2)
        pairs = plan.prefix_origin_pairs()
        asns = sorted(asn for _, asn in pairs)
        assert asns == [1, 2]

    def test_allocations_never_collide(self):
        plan = AddressPlan(pool=Prefix.parse("16.0.0.0/12"), block_length=24)
        out = [plan.allocate(asn) for asn in (1, 2, 3) for _ in range(300)]
        assert len(out) == len(set(out))

    def test_default_pool_avoids_private_space(self):
        plan = AddressPlan()
        address = plan.allocate(55)
        from repro.net.ip import is_private

        assert not is_private(address)
