"""Tests for repro.obs: tracing, metrics, logging, run reports.

The observed-run fixture here is the PR's acceptance criterion at test
scale: a small pipeline run under an active tracer/registry must yield
a schema-valid report with a >= 3-deep span tree, nonzero geolocation
and BGP counters, and a clean self-diff.
"""

from __future__ import annotations

import contextvars
import io
import json
import threading

import pytest

from repro.config import small_scenario
from repro.datasets.pipeline import run_pipeline
from repro.errors import ReportError
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    build_run_report,
    current_metrics,
    current_span,
    current_tracer,
    dataset_digest,
    diff_reports,
    get_logger,
    incr,
    load_report,
    observe,
    render_diff,
    render_report,
    setup_logging,
    span,
    use_metrics,
    use_tracer,
    validate_report,
    write_report,
)
from repro.obs.report import RunReport
from repro.runtime import Telemetry


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", flavour="a") as child:
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        assert [s.name for s in root.children] == ["child", "sibling"]
        assert [s.name for s in child.children] == ["leaf"]
        assert child.attributes == {"flavour": "a"}
        assert tracer.max_depth() == 3
        assert root.wall_s >= child.wall_s >= 0.0

    def test_module_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("anything", x=1) as handle:
            assert handle is NULL_SPAN
            handle.set(y=2)  # must not raise

    def test_module_span_attaches_to_active_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with span("outer"):
                assert current_span() is not None
                with span("inner"):
                    pass
        assert current_tracer() is None
        assert [s.name for s in tracer.iter_spans()] == ["outer", "inner"]
        assert tracer.find("inner")[0].end_s > 0.0

    def test_spans_nest_across_threads_with_copied_context(self):
        """Worker threads given a copied context attach under the parent."""
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("parent"):
                threads = []
                for i in range(4):
                    ctx = contextvars.copy_context()

                    def work(i=i, ctx=ctx):
                        ctx.run(lambda: self._worker_span(tracer, i))

                    threads.append(threading.Thread(target=work))
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        (parent,) = tracer.roots
        names = sorted(child.name for child in parent.children)
        assert names == [f"worker-{i}" for i in range(4)]
        threads_seen = {child.thread for child in parent.children}
        assert len(threads_seen) == 4

    @staticmethod
    def _worker_span(tracer: Tracer, i: int) -> None:
        with tracer.span(f"worker-{i}"):
            pass

    def test_to_dict_roundtrips_the_tree_shape(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        (payload,) = tracer.to_dicts()
        assert payload["name"] == "a"
        assert payload["attributes"] == {"k": "v"}
        assert payload["children"][0]["name"] == "b"
        assert payload["wall_s"] == pytest.approx(
            payload["end_s"] - payload["start_s"]
        )


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"] == {
            "count": 2, "sum": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0,
        }
        assert registry.counter_value("c") == 5
        assert registry.counter_value("absent") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_empty_histogram_summary_is_zeroed(self):
        assert MetricsRegistry().histogram("h").summary()["count"] == 0

    def test_helpers_are_noops_without_registry(self):
        assert current_metrics() is None
        incr("nothing")
        observe("nothing", 1.0)

    def test_helpers_hit_the_active_registry(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            incr("hits", 2)
            observe("size", 7.0)
        assert registry.counter_value("hits") == 2
        assert registry.histogram("size").count == 1

    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(1000):
                registry.counter("n").add(1)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter_value("n") == 8000


class TestLogging:
    def test_verbose_emits_json_lines(self):
        stream = io.StringIO()
        setup_logging(verbose=True, stream=stream)
        get_logger("test").info("hello", extra={"answer": 42})
        (line,) = stream.getvalue().strip().splitlines()
        payload = json.loads(line)
        assert payload["message"] == "hello"
        assert payload["logger"] == "repro.test"
        assert payload["answer"] == 42
        assert payload["level"] == "INFO"

    def test_quiet_suppresses_info(self):
        stream = io.StringIO()
        setup_logging(verbose=False, stream=stream)
        get_logger("test").info("hidden")
        get_logger("test").warning("shown")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "shown"

    def test_unserialisable_extra_falls_back_to_repr(self):
        record_stream = io.StringIO()
        setup_logging(verbose=True, stream=record_stream)
        get_logger("test").info("x", extra={"obj": object()})
        payload = json.loads(record_stream.getvalue())
        assert payload["obj"].startswith("<object object")

    def teardown_method(self):
        # Restore a stderr-bound quiet logger for the rest of the suite.
        setup_logging(verbose=False)


@pytest.fixture(scope="module")
def observed_run():
    """One small pipeline run with full observability active."""
    config = small_scenario()
    tracer = Tracer()
    registry = MetricsRegistry()
    telemetry = Telemetry()
    with use_tracer(tracer), use_metrics(registry):
        result = run_pipeline(config, jobs=2, telemetry=telemetry)
    report = build_run_report(
        config=config,
        result=result,
        telemetry=telemetry,
        tracer=tracer,
        metrics=registry,
        argv=["run", "--scale", "small"],
    )
    return config, result, tracer, registry, report


class TestRunReport:
    def test_span_tree_nests_at_least_three_levels(self, observed_run):
        _, _, tracer, _, report = observed_run
        # pipeline -> stage:<mapping> -> geoloc.locate_batch
        assert tracer.max_depth() >= 3
        assert report.span_depth() >= 3
        batch_spans = [
            s for s in report.iter_spans() if s["name"] == "geoloc.locate_batch"
        ]
        assert len(batch_spans) == 4
        assert all(s["attributes"]["batch_size"] > 0 for s in batch_spans)

    def test_geoloc_and_bgp_counters_are_nonzero(self, observed_run):
        _, _, _, registry, report = observed_run
        for name in (
            "geoloc.batches",
            "geoloc.addresses",
            "bgp.lookups",
        ):
            assert report.counter(name) > 0, name
        assert registry.counter_value("geoloc.addresses") == sum(
            v
            for k, v in report.metrics["counters"].items()
            if k.startswith("geoloc.method.")
        )

    def test_report_is_schema_valid_and_roundtrips(self, observed_run, tmp_path):
        *_, report = observed_run
        assert validate_report(report.to_dict()) == []
        path = tmp_path / "run.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.seed == small_scenario().seed
        assert len(loaded.stage_events) == 10
        assert set(loaded.artifacts) == {
            "IxMapper, Mercator", "IxMapper, Skitter",
            "EdgeScape, Mercator", "EdgeScape, Skitter",
        }

    def test_stage_events_are_sorted_by_start(self, observed_run):
        *_, report = observed_run
        starts = [e["start_s"] for e in report.stage_events]
        assert starts == sorted(starts)
        assert report.stage_events[0]["stage"] == "world"

    def test_artifact_hashes_match_recomputation(self, observed_run):
        _, result, _, _, report = observed_run
        label = "IxMapper, Skitter"
        assert report.artifacts[label] == dataset_digest(result.datasets[label])

    def test_render_report_mentions_key_sections(self, observed_run):
        *_, report = observed_run
        text = render_report(report)
        assert "RUN REPORT" in text
        assert "SPAN TREE" in text
        assert "COUNTERS" in text
        assert "geoloc.batches" in text
        assert "IxMapper, Skitter" in text

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ReportError):
            load_report(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ReportError):
            load_report(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ReportError):
            load_report(wrong)

    def test_validate_pinpoints_problems(self, observed_run):
        *_, report = observed_run
        # Deep copy: to_dict() shares structure with the report, and this
        # test mutates the payload.
        payload = json.loads(json.dumps(report.to_dict()))
        payload["stage_events"][0]["wall_s"] = "fast"
        payload["spans"][0]["children"] = "oops"
        payload["metrics"]["counters"]["bgp.lookups"] = 1.5
        errors = validate_report(payload)
        assert any("wall_s" in e for e in errors)
        assert any("children" in e for e in errors)
        assert any("counters" in e for e in errors)


class TestReportDiff:
    def test_identical_reports_are_clean(self, observed_run):
        *_, report = observed_run
        outcome = diff_reports(report, report)
        assert outcome.clean
        assert outcome.regressions == ()
        assert outcome.drifts == ()
        assert "no regressions" in render_diff(outcome)

    def _copy(self, report: RunReport) -> RunReport:
        return RunReport.from_dict(json.loads(json.dumps(report.to_dict())))

    def test_wall_regression_past_threshold_flagged(self, observed_run):
        *_, report = observed_run
        slowed = self._copy(report)
        for event in slowed.stage_events:
            if event["stage"] == "ground_truth":
                event["wall_s"] = event["wall_s"] * 10 + 1.0
        outcome = diff_reports(report, slowed)
        assert not outcome.clean
        assert any("ground_truth" in line for line in outcome.regressions)
        assert "REGRESSION" in render_diff(outcome)

    def test_small_absolute_slowdowns_are_ignored(self, observed_run):
        *_, report = observed_run
        jittered = self._copy(report)
        for event in jittered.stage_events:
            event["wall_s"] += 0.001  # timing noise, not a regression
        assert diff_reports(report, jittered).clean

    def test_counter_drift_always_flagged(self, observed_run):
        *_, report = observed_run
        drifted = self._copy(report)
        drifted.metrics["counters"]["bgp.misses"] += 1
        outcome = diff_reports(report, drifted)
        assert any("bgp.misses" in line for line in outcome.drifts)

    def test_stage_counter_drift_flagged(self, observed_run):
        *_, report = observed_run
        drifted = self._copy(report)
        drifted.stage_events[1]["counters"]["nodes"] += 7
        outcome = diff_reports(report, drifted)
        assert not outcome.clean

    def test_artifact_change_and_missing_stage_flagged(self, observed_run):
        *_, report = observed_run
        changed = self._copy(report)
        changed.artifacts["IxMapper, Skitter"] = "0" * 64
        changed.stage_events = [
            e for e in changed.stage_events if e["stage"] != "world"
        ]
        outcome = diff_reports(report, changed)
        assert any("IxMapper, Skitter" in line for line in outcome.drifts)
        assert any("disappeared" in line for line in outcome.drifts)
