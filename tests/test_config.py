"""Tests for repro.config (scenario validation and presets)."""

import numpy as np
import pytest

from repro.config import (
    DEFAULT_ALPHA,
    DEFAULT_WAXMAN_L,
    BgpConfig,
    GeolocConfig,
    GroundTruthConfig,
    MercatorConfig,
    ScenarioConfig,
    SkitterConfig,
    default_scenario,
    small_scenario,
)
from repro.errors import ConfigError


class TestPlantedDefaults:
    def test_alpha_in_paper_band(self):
        # The paper's fitted slopes span 1.2-1.75; planted values do too.
        for zone, alpha in DEFAULT_ALPHA.items():
            assert 1.0 < alpha <= 1.8, zone

    def test_waxman_l_matches_paper(self):
        # Paper: L ~ 140 miles for the US and Japan, ~80 for Europe.
        assert DEFAULT_WAXMAN_L["USA"] == 140.0
        assert DEFAULT_WAXMAN_L["Japan"] == 140.0
        assert DEFAULT_WAXMAN_L["W. Europe"] == 80.0


class TestSkitterConfig:
    def test_defaults_match_paper_monitor_count(self):
        assert SkitterConfig().n_monitors == 19

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_monitors=0),
            dict(destinations_per_monitor=0),
            dict(response_rate=0.0),
            dict(response_rate=1.5),
            dict(max_hops=1),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SkitterConfig(**kwargs)


class TestMercatorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_targets=0),
            dict(n_source_routed=-1),
            dict(response_rate=0.0),
            dict(alias_resolution_rate=1.5),
            dict(max_hops=0),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MercatorConfig(**kwargs)


class TestBgpAndGeolocConfig:
    def test_bgp_rates_bounded(self):
        with pytest.raises(ConfigError):
            BgpConfig(unannounced_rate=-0.1)
        with pytest.raises(ConfigError):
            BgpConfig(deaggregation_rate=1.1)

    def test_geoloc_rates_bounded(self):
        with pytest.raises(ConfigError):
            GeolocConfig(ixmapper_unmapped_rate=2.0)
        with pytest.raises(ConfigError):
            GeolocConfig(edgescape_isp_coverage=-0.5)


class TestScenario:
    def test_rng_is_deterministic(self):
        config = ScenarioConfig(seed=5)
        a = config.rng().integers(0, 1_000_000, 5)
        b = config.rng().integers(0, 1_000_000, 5)
        assert np.array_equal(a, b)

    def test_city_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(city_scale=0.0)

    def test_presets_are_valid(self):
        small = small_scenario()
        full = default_scenario()
        assert small.ground_truth.total_routers < full.ground_truth.total_routers
        assert small.seed != 0

    def test_preset_seed_override(self):
        assert small_scenario(99).seed == 99
        assert default_scenario(123).seed == 123

    def test_ground_truth_config_frozen(self):
        config = GroundTruthConfig()
        with pytest.raises(AttributeError):
            config.total_routers = 10  # type: ignore[misc]
