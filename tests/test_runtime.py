"""Tests for repro.runtime: stage DAG, executor, cache, telemetry.

The determinism tests here are the PR's acceptance criteria: parallel
execution and cache round-trips must be bit-for-bit identical to a cold
serial run.
"""

import numpy as np
import pytest

from repro.datasets.pipeline import (
    STAGE_GROUND_TRUTH,
    STAGE_SKITTER,
    STAGE_WORLD,
    build_pipeline_graph,
    mapping_stage_name,
    run_pipeline,
)
from repro.errors import CacheError, StageGraphError
from repro.runtime import (
    ArtifactCache,
    Stage,
    StageGraph,
    Telemetry,
    config_digest,
    execute,
)
from repro.runtime.executor import stage_keys
from repro.runtime.telemetry import (
    STATUS_CACHE_HIT,
    STATUS_RAN,
    StageEvent,
    artifact_counters,
)


def _assert_datasets_identical(a, b):
    assert set(a.datasets) == set(b.datasets)
    for label in a.datasets:
        da, db = a.datasets[label], b.datasets[label]
        assert np.array_equal(da.addresses, db.addresses)
        assert np.array_equal(da.lats, db.lats)
        assert np.array_equal(da.lons, db.lons)
        assert np.array_equal(da.asns, db.asns)
        assert np.array_equal(da.links, db.links)
    assert a.processing_reports == b.processing_reports


class TestStageGraph:
    def test_duplicate_name_rejected(self):
        graph = StageGraph()
        graph.add(Stage(name="a", fn=lambda ctx: 1))
        with pytest.raises(StageGraphError):
            graph.add(Stage(name="a", fn=lambda ctx: 2))

    def test_unknown_input_rejected(self):
        graph = StageGraph()
        graph.add(Stage(name="a", fn=lambda ctx: 1, inputs=("ghost",)))
        with pytest.raises(StageGraphError):
            graph.validate()

    def test_cycle_rejected(self):
        graph = StageGraph()
        graph.add(Stage(name="a", fn=lambda ctx: 1, inputs=("b",)))
        graph.add(Stage(name="b", fn=lambda ctx: 2, inputs=("a",)))
        with pytest.raises(StageGraphError):
            graph.topological_order()

    def test_topological_order_respects_deps(self):
        graph = build_pipeline_graph()
        order = graph.topological_order()
        for stage in graph.stages():
            for dep in stage.inputs:
                assert order.index(dep) < order.index(stage.name)

    def test_unknown_stage_lookup(self):
        graph = StageGraph()
        with pytest.raises(StageGraphError):
            graph["nope"]

    def test_seed_streams_independent_of_everything_but_order(self):
        graph = build_pipeline_graph()
        s1 = graph.seed_streams(7)
        s2 = graph.seed_streams(7)
        for name in graph.names:
            assert s1[name].random() == s2[name].random()
        # Different stages get different streams.
        fresh = graph.seed_streams(7)
        draws = {name: fresh[name].random() for name in graph.names}
        assert len(set(draws.values())) == len(draws)

    def test_pipeline_graph_shape(self):
        graph = build_pipeline_graph()
        assert STAGE_WORLD in graph
        assert STAGE_GROUND_TRUTH in graph
        assert mapping_stage_name("IxMapper", "Skitter") in graph
        assert len(graph) == 10
        assert STAGE_SKITTER in graph.dependents_of(STAGE_GROUND_TRUTH)


class TestExecutor:
    def _toy_graph(self):
        graph = StageGraph()
        graph.add(Stage(name="base", fn=lambda ctx: ctx.rng.random(4)))
        graph.add(
            Stage(
                name="left",
                fn=lambda ctx: ctx.input("base") + ctx.rng.random(4),
                inputs=("base",),
            )
        )
        graph.add(
            Stage(
                name="right",
                fn=lambda ctx: ctx.input("base") * ctx.rng.random(4),
                inputs=("base",),
            )
        )
        graph.add(
            Stage(
                name="join",
                fn=lambda ctx: ctx.input("left") - ctx.input("right"),
                inputs=("left", "right"),
                uses_rng=False,
            )
        )
        return graph

    def test_serial_equals_parallel(self):
        serial = execute(self._toy_graph(), config=None, seed=42, jobs=1)
        parallel = execute(self._toy_graph(), config=None, seed=42, jobs=4)
        for name in ("base", "left", "right", "join"):
            assert np.array_equal(serial[name], parallel[name])

    def test_jobs_must_be_positive(self):
        with pytest.raises(StageGraphError):
            execute(self._toy_graph(), config=None, seed=1, jobs=0)

    def test_stage_failure_propagates(self):
        graph = StageGraph()

        def boom(ctx):
            raise ValueError("stage exploded")

        graph.add(Stage(name="boom", fn=boom))
        with pytest.raises(ValueError, match="stage exploded"):
            execute(graph, config=None, seed=1, jobs=2)

    def test_undeclared_input_access_fails(self):
        graph = StageGraph()
        graph.add(Stage(name="a", fn=lambda ctx: ctx.input("ghost")))
        with pytest.raises(StageGraphError):
            execute(graph, config=None, seed=1)


class TestArtifactCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("k1", {"x": [1, 2, 3]})
        hit, value = cache.load("k1")
        assert hit and value == {"x": [1, 2, 3]}
        assert cache.hits == 1

    def test_miss_counts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        hit, value = cache.load("absent")
        assert not hit and value is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("k1", [1, 2])
        path = next(tmp_path.glob("k1*"))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.load("k1")
        assert not hit

    def test_unknown_codec_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(CacheError):
            cache.store("k", 1, codec="no-such-codec")

    def test_config_digest_sensitivity(self, small_config):
        base = config_digest(small_config)
        assert base == config_digest(small_config)
        from repro.config import small_scenario

        assert base != config_digest(small_scenario(seed=small_config.seed + 1))

    def test_stage_keys_chain_upstream(self, small_config):
        graph = build_pipeline_graph()
        keys = stage_keys(graph, small_config)
        assert len(set(keys.values())) == len(keys)
        from repro.config import small_scenario

        other = stage_keys(graph, small_scenario(seed=small_config.seed + 1))
        assert all(keys[name] != other[name] for name in keys)


class TestTelemetry:
    def test_events_and_profile(self):
        telemetry = Telemetry()
        execute(
            StageGraph(
                {"one": Stage(name="one", fn=lambda ctx: ctx.rng.random(3))}
            ),
            config=None,
            seed=3,
            telemetry=telemetry,
        )
        assert [e.stage for e in telemetry.events] == ["one"]
        event = telemetry.event_for("one")
        assert event is not None and event.status == STATUS_RAN
        assert event.wall_s >= 0.0
        assert "one" in telemetry.render_profile()
        assert event.to_dict()["stage"] == "one"

    def test_sink_receives_events(self):
        seen = []
        telemetry = Telemetry(sink=seen.append)
        execute(
            StageGraph({"s": Stage(name="s", fn=lambda ctx: 1)}),
            config=None,
            seed=3,
            telemetry=telemetry,
        )
        assert [e.stage for e in seen] == ["s"]

    def test_events_carry_monotonic_timestamps(self):
        telemetry = Telemetry()
        execute(
            StageGraph(
                {
                    "a": Stage(name="a", fn=lambda ctx: 1),
                    "b": Stage(name="b", fn=lambda ctx: 2, inputs=("a",)),
                }
            ),
            config=None,
            seed=3,
            telemetry=telemetry,
        )
        by_name = {e.stage: e for e in telemetry.events}
        for event in by_name.values():
            assert event.end_s >= event.start_s > 0.0
            assert event.wall_s == pytest.approx(
                event.end_s - event.start_s, abs=1e-6
            )
        # b depends on a, so it cannot start before a finished.
        assert by_name["b"].start_s >= by_name["a"].end_s
        assert {"start_s", "end_s"} <= by_name["a"].to_dict().keys()

    def test_render_profile_ordered_by_start_time(self):
        telemetry = Telemetry()
        # Record completion out of start order: z finished first but
        # started last.
        telemetry.record(
            StageEvent("z", STATUS_RAN, 0.1, 10.0, {}, start_s=5.0, end_s=5.1)
        )
        telemetry.record(
            StageEvent("a", STATUS_RAN, 9.0, 20.0, {}, start_s=1.0, end_s=10.0)
        )
        profile = telemetry.render_profile()
        lines = profile.splitlines()
        stages = [line.split()[0] for line in lines[2:]]
        assert stages == ["a", "z", "total"]
        # The total row aligns wall and rss under their columns.
        header, total = lines[1], lines[-1]
        assert total.index("9.100") < header.index("rss MB")
        assert "20.0" in total  # peak RSS, not a sum

    def test_empty_profile_renders(self):
        assert "(no stages recorded)" in Telemetry().render_profile()


class TestArtifactCounters:
    def test_nested_tuples_first_provider_wins(self):
        class Inventory:
            n_nodes = 7
            n_links = 3

        class Table:
            entries = {"10.0.0.0/8": 1}

        counters = artifact_counters(((Inventory(), Table()), Inventory()))
        assert counters == {"nodes": 7, "links": 3, "entries": 1}

    def test_object_with_both_n_nodes_and_routers(self):
        class Hybrid:
            n_nodes = 42  # explicit counter beats len(routers)
            routers = {"r1": None, "r2": None}
            interfaces = {"if1": None}

        assert artifact_counters(Hybrid()) == {
            "nodes": 42,
            "interfaces": 1,
        }

    def test_topology_like_uses_len(self):
        class Topology:
            routers = [1, 2, 3]
            interfaces = [1]

        assert artifact_counters(Topology()) == {"nodes": 3, "interfaces": 1}

    def test_non_int_n_nodes_ignored(self):
        class Weird:
            n_nodes = "many"

        assert artifact_counters(Weird()) == {}

    def test_opaque_values_give_empty_counters(self):
        assert artifact_counters(object()) == {}
        assert artifact_counters(()) == {}


class TestPipelineDeterminism:
    """The PR's acceptance criteria, at test scale."""

    def test_parallel_identical_to_serial(self, pipeline_small, small_config):
        parallel = run_pipeline(small_config, jobs=4)
        _assert_datasets_identical(pipeline_small, parallel)

    def test_cache_hit_equals_cold_run(
        self, pipeline_small, small_config, tmp_path
    ):
        cold = run_pipeline(small_config, cache_dir=tmp_path)
        _assert_datasets_identical(pipeline_small, cold)

        telemetry = Telemetry()
        warm = run_pipeline(
            small_config, cache_dir=tmp_path, jobs=2, telemetry=telemetry
        )
        _assert_datasets_identical(pipeline_small, warm)
        statuses = {e.stage: e.status for e in telemetry.events}
        assert set(statuses.values()) == {STATUS_CACHE_HIT}
        assert len(statuses) == 10

    def test_telemetry_covers_every_stage(self, small_config):
        telemetry = Telemetry()
        run_pipeline(small_config, telemetry=telemetry)
        graph = build_pipeline_graph()
        assert {e.stage for e in telemetry.events} == set(graph.names)
