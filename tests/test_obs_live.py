"""Tests for the live-telemetry layer: bus, exposition, sampler, profiler.

Covers the ring-buffer event bus and its sinks, the Prometheus text
exposition of the metrics registry (including rendering concurrently
with writers), the probabilistic trace sampler, the sampling profiler,
and the server's ``/metrics`` endpoint plus per-request access events
over the real HTTP transport.
"""

from __future__ import annotations

import http.client
import threading
import time

import numpy as np
import pytest

from repro import __version__
from repro.datasets.mapped import UNMAPPED_ASN, MappedDataset
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    ProfilerError,
    SamplingProfiler,
    TailSink,
    TelemetryBus,
    Tracer,
    TraceSampler,
    current_bus,
    render_prometheus,
    use_bus,
)
from repro.obs import publish as bus_publish
from repro.obs.export import (
    CONTENT_TYPE,
    parse_sample_lines,
    sanitize_metric_name,
)
from repro.serve import (
    QueryError,
    SnapshotClient,
    SnapshotIndex,
    SnapshotServer,
)


class TestTelemetryBus:
    def test_ring_keeps_newest_and_counts_drops(self):
        bus = TelemetryBus(capacity=4)
        for i in range(10):
            bus.publish("tick", i=i)
        assert bus.seq == 10
        assert len(bus) == 4
        assert bus.dropped == 6
        assert [e["i"] for e in bus.tail()] == [6, 7, 8, 9]

    def test_events_are_stamped_and_ordered(self):
        bus = TelemetryBus()
        first = bus.publish("a")
        second = bus.publish("b", detail="x")
        assert first["seq"] == 1 and second["seq"] == 2
        assert second["kind"] == "b" and second["detail"] == "x"
        assert bus.events_since(first["seq"]) == [second]

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)

    def test_broken_sink_is_disabled_not_fatal(self):
        bus = TelemetryBus()
        tail = TailSink()
        calls = []

        def broken(event):
            calls.append(event)
            raise RuntimeError("sink exploded")

        bus.add_sink(broken)
        bus.add_sink(tail)
        bus.publish("one")
        bus.publish("two")
        assert len(calls) == 1  # dropped after the first failure
        assert [e["kind"] for e in tail.events] == ["one", "two"]
        assert bus.stats()["dead_sinks"] == 1

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        bus = TelemetryBus()
        sink = JsonlSink(path)
        bus.add_sink(sink)
        bus.publish("access", status=200)
        bus.publish("access", status=503, blob=object())  # repr fallback
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["status"] for e in lines] == [200, 503]

    def test_publish_helper_hits_active_bus_only(self):
        bus_publish("lost")  # no active bus: cheap no-op
        bus = TelemetryBus()
        with use_bus(bus):
            assert current_bus() is bus
            bus_publish("kept", n=1)
        assert current_bus() is None
        assert [e["kind"] for e in bus.tail()] == ["kept"]

    def test_concurrent_publishers_never_lose_seq(self):
        bus = TelemetryBus(capacity=10_000)
        n_threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                bus.publish("tick")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bus.seq == n_threads * per_thread
        seqs = [e["seq"] for e in bus.tail()]
        assert len(set(seqs)) == len(seqs)  # no duplicated sequence number


class TestPrometheusExposition:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests.locate").add(3)
        registry.gauge("serve.inflight").set(2)
        registry.histogram("serve.latency_ms", buckets=(1.0, 10.0)).observe(5.0)
        body = render_prometheus(registry)
        samples = parse_sample_lines(body)
        assert samples["repro_serve_requests_locate_total"] == 3
        assert samples["repro_serve_inflight"] == 2
        assert samples['repro_serve_latency_ms_bucket{le="1"}'] == 0
        assert samples['repro_serve_latency_ms_bucket{le="10"}'] == 1
        assert samples['repro_serve_latency_ms_bucket{le="+Inf"}'] == 1
        assert samples["repro_serve_latency_ms_sum"] == 5.0
        assert samples["repro_serve_latency_ms_count"] == 1

    def test_buckets_are_cumulative_and_capped_by_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("wall", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        body = render_prometheus(registry)
        samples = parse_sample_lines(body)
        series = [
            samples['repro_wall_bucket{le="0.1"}'],
            samples['repro_wall_bucket{le="1"}'],
            samples['repro_wall_bucket{le="10"}'],
            samples['repro_wall_bucket{le="+Inf"}'],
        ]
        assert series == sorted(series)  # monotone
        assert series[-1] == samples["repro_wall_count"] == 4

    def test_type_and_help_comments_present(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        body = render_prometheus(registry)
        assert "# TYPE repro_c_total counter" in body
        assert body.endswith("\n")

    def test_name_sanitisation(self):
        assert sanitize_metric_name("serve.latency_ms.locate") == (
            "serve_latency_ms_locate"
        )
        assert sanitize_metric_name("0weird name!") == "_0weird_name_"
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestTraceSampler:
    def test_edge_rates(self):
        assert not any(TraceSampler(0.0).should_sample() for _ in range(50))
        assert all(TraceSampler(1.0).should_sample() for _ in range(50))

    def test_seeded_rate_is_approximate(self):
        sampler = TraceSampler(0.3, seed=7)
        kept = sum(sampler.should_sample() for _ in range(2000))
        assert 450 < kept < 750  # ~600 expected

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)


class TestSamplingProfiler:
    def test_catches_a_busy_thread(self, tmp_path):
        stop = threading.Event()

        def burn():
            while not stop.is_set():
                sum(range(200))

        thread = threading.Thread(target=burn, name="burner")
        thread.start()
        try:
            with SamplingProfiler(hz=200) as profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            thread.join()
        assert profiler.samples > 10
        collapsed = profiler.collapsed()
        assert "burn" in collapsed
        # collapsed-stack lines are "frame;frame;... count"
        first = collapsed.splitlines()[0]
        stack, _, count = first.rpartition(" ")
        assert int(count) >= 1 and ";" in stack
        path = profiler.write(tmp_path / "profile.collapsed")
        assert path.read_text() == collapsed

    def test_double_start_raises_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        with pytest.raises(ProfilerError):
            profiler.start()
        profiler.stop()
        profiler.stop()  # no-op

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler(hz=0)


class TestRegistryThreadSafety:
    def test_render_is_safe_while_eight_writers_update(self):
        """Exposition rendered mid-write never crashes or goes backwards."""
        registry = MetricsRegistry()
        n_writers, per_writer = 8, 400
        start = threading.Barrier(n_writers + 1)
        render_errors: list[BaseException] = []

        def writer(wid: int) -> None:
            counter = registry.counter(f"writer.{wid}")
            shared = registry.counter("shared")
            histogram = registry.histogram("obs", buckets=(1.0, 10.0))
            start.wait()
            for i in range(per_writer):
                counter.add()
                shared.add()
                histogram.observe(float(i % 20))

        def reader() -> None:
            start.wait()
            last_shared = 0.0
            while any(t.is_alive() for t in writers):
                try:
                    samples = parse_sample_lines(render_prometheus(registry))
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    render_errors.append(exc)
                    return
                value = samples.get("repro_shared_total", 0.0)
                assert value >= last_shared  # counters only go up
                last_shared = value

        writers = [
            threading.Thread(target=writer, args=(wid,))
            for wid in range(n_writers)
        ]
        reading = threading.Thread(target=reader)
        for t in writers:
            t.start()
        reading.start()
        for t in writers:
            t.join()
        reading.join()
        assert render_errors == []
        samples = parse_sample_lines(render_prometheus(registry))
        assert samples["repro_shared_total"] == n_writers * per_writer
        for wid in range(n_writers):
            assert samples[f"repro_writer_{wid}_total"] == per_writer
        assert samples['repro_obs_bucket{le="+Inf"}'] == n_writers * per_writer


def _tiny_dataset() -> MappedDataset:
    return MappedDataset(
        label="tiny",
        kind="skitter",
        addresses=np.array([10, 20, 30], dtype=np.int64),
        lats=np.array([40.0, 41.0, 50.0]),
        lons=np.array([-100.0, -100.5, 10.0]),
        asns=np.array([1, 1, UNMAPPED_ASN], dtype=np.int64),
        links=np.array([[0, 1]], dtype=np.intp),
    )


def _get(server: SnapshotServer, target: str) -> tuple[int, str, str]:
    """One raw GET; returns (status, content-type, body)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", target)
        resp = conn.getresponse()
        return resp.status, resp.headers.get("Content-Type", ""), (
            resp.read().decode("utf-8")
        )
    finally:
        conn.close()


class TestServerTelemetry:
    @pytest.fixture()
    def traced_server(self):
        bus = TelemetryBus()
        server = SnapshotServer(
            SnapshotIndex(_tiny_dataset()),
            port=0,
            tracer=Tracer(),
            bus=bus,
        )
        with server:
            yield server, bus

    def test_metrics_endpoint_is_valid_prometheus(self, traced_server):
        server, _ = traced_server
        client = SnapshotClient(server.url)
        client.locate(10)
        with pytest.raises(QueryError):
            client.locate(99999)  # miss -> 404, still counted
        status, ctype, body = _get(server, "/metrics")
        assert status == 200
        assert ctype == CONTENT_TYPE
        samples = parse_sample_lines(body)
        assert samples["repro_serve_requests_locate_total"] >= 2
        latency_count = samples[
            'repro_serve_latency_ms_locate_bucket{le="+Inf"}'
        ]
        assert latency_count == samples["repro_serve_latency_ms_locate_count"]
        assert latency_count >= 2

    def test_healthz_reports_package_version(self, traced_server):
        server, _ = traced_server
        health = SnapshotClient(server.url).healthz()
        assert health["version"] == __version__
        assert health["status"] == "ok"

    def test_access_events_carry_the_span_trace_id(self, traced_server):
        server, bus = traced_server
        SnapshotClient(server.url).locate(10)
        events = [e for e in bus.tail() if e["kind"] == "access"]
        assert events, "expected an access event per request"
        access = events[-1]
        assert access["endpoint"] == "locate"
        assert access["status"] == 200
        assert access["ms"] >= 0
        assert access["sampled"] is True
        assert len(access["trace_id"]) == 32
        span_traces = {
            span.trace_id
            for span in server.tracer.iter_spans()
            if span.name == "serve.locate"
        }
        assert access["trace_id"] in span_traces

    def test_sampler_zero_disables_trace_ids_not_access_log(self):
        bus = TelemetryBus()
        server = SnapshotServer(
            SnapshotIndex(_tiny_dataset()),
            port=0,
            tracer=Tracer(),
            bus=bus,
            trace_sampler=TraceSampler(0.0),
        )
        with server:
            client = SnapshotClient(server.url)
            for _ in range(5):
                client.locate(10)
        events = [e for e in bus.tail() if e["kind"] == "access"]
        assert len(events) == 5
        assert all(e["trace_id"] == "" for e in events)

    def test_metrics_endpoint_skips_admission_control(self):
        server = SnapshotServer(
            SnapshotIndex(_tiny_dataset()), port=0, max_inflight=1
        )
        with server:
            SnapshotClient(server.url).healthz()
            status, _, body = _get(server, "/metrics")
        assert status == 200
        assert "repro_serve_requests_healthz_total" in body
