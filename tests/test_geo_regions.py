"""Tests for repro.geo.regions (Table II boxes and membership)."""

import numpy as np
import pytest

from repro.errors import GeoError
from repro.geo.regions import (
    ECONOMIC_REGIONS,
    EUROPE,
    HOMOGENEITY_REGIONS,
    JAPAN,
    NORTHERN_US,
    SOUTHERN_US,
    STUDY_REGIONS,
    US,
    WORLD,
    Region,
    region_by_name,
)


class TestRegionValidation:
    def test_valid_region_constructs(self):
        r = Region("box", north=10.0, south=0.0, west=0.0, east=10.0)
        assert r.lat_span == 10.0 and r.lon_span == 10.0

    def test_inverted_latitudes_raise(self):
        with pytest.raises(GeoError):
            Region("bad", north=0.0, south=10.0, west=0.0, east=10.0)

    def test_inverted_longitudes_raise(self):
        with pytest.raises(GeoError):
            Region("bad", north=10.0, south=0.0, west=10.0, east=0.0)

    def test_out_of_range_bounds_raise(self):
        with pytest.raises(GeoError):
            Region("bad", north=95.0, south=0.0, west=0.0, east=10.0)


class TestPaperBoundaries:
    """The Table II boundaries, verbatim from the paper."""

    def test_us_box(self):
        assert (US.north, US.south, US.west, US.east) == (50.0, 25.0, -150.0, -45.0)

    def test_europe_box(self):
        assert (EUROPE.north, EUROPE.south, EUROPE.west, EUROPE.east) == (
            58.0, 42.0, -5.0, 22.0,
        )

    def test_japan_box(self):
        assert (JAPAN.north, JAPAN.south, JAPAN.west, JAPAN.east) == (
            60.0, 30.0, 130.0, 150.0,
        )

    def test_study_regions_order(self):
        assert [r.name for r in STUDY_REGIONS] == ["US", "Europe", "Japan"]

    def test_homogeneity_sub_regions_partition_the_us_in_latitude(self):
        assert NORTHERN_US.south == SOUTHERN_US.north
        assert NORTHERN_US.north == US.north
        assert SOUTHERN_US.south == US.south

    def test_economic_regions_include_world(self):
        names = [r.name for r in ECONOMIC_REGIONS]
        assert names[-1] == "World"
        assert "USA" in names and "Africa" in names


class TestMembership:
    def test_new_york_in_us(self):
        assert US.contains(40.71, -74.01)

    def test_london_in_europe(self):
        assert EUROPE.contains(51.51, -0.13)

    def test_tokyo_in_japan(self):
        assert JAPAN.contains(35.68, 139.69)

    def test_tokyo_not_in_us(self):
        assert not US.contains(35.68, 139.69)

    def test_boundary_is_inclusive(self):
        assert US.contains(50.0, -45.0)
        assert US.contains(25.0, -150.0)

    def test_mask_matches_scalar_contains(self):
        lats = np.array([40.71, 35.68, 51.51])
        lons = np.array([-74.01, 139.69, -0.13])
        mask = US.contains_mask(lats, lons)
        assert mask.tolist() == [True, False, False]

    def test_world_contains_all_study_region_centers(self):
        for region in STUDY_REGIONS:
            lat, lon = region.center
            assert WORLD.contains(lat, lon)

    def test_center_is_inside(self):
        for region in (*STUDY_REGIONS, *HOMOGENEITY_REGIONS):
            lat, lon = region.center
            assert region.contains(lat, lon)


class TestLookup:
    def test_lookup_by_name(self):
        assert region_by_name("US") is US
        assert region_by_name("Japan") is JAPAN

    def test_unknown_name_raises(self):
        with pytest.raises(GeoError):
            region_by_name("Atlantis")
