"""Tests for repro.core.asgeo (Section VI analyses)."""

import numpy as np
import pytest

from repro.bgp.table import UNMAPPED_ASN
from repro.core.asgeo import (
    as_size_measures,
    hull_areas,
    hull_vs_size,
    link_domain_row,
    link_domain_table,
    size_correlations,
    size_distributions,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.regions import EUROPE, STUDY_REGIONS, US


def _dataset() -> MappedDataset:
    """Three ASes: compact (1), two-site (2), dispersed (3)."""
    lats = np.array([37.7, 37.71, 37.72, 40.7, 48.86, 35.0, -33.87, 51.51, 40.0])
    lons = np.array(
        [-122.4, -122.41, -122.42, -74.0, 2.35, 139.0, 151.21, -0.13, -100.0]
    )
    asns = np.array([1, 1, 1, 2, 2, 3, 3, 3, 3], dtype=np.int64)
    links = np.array(
        [[0, 1], [1, 2], [2, 3], [3, 4], [4, 7], [5, 6], [6, 7], [7, 8], [0, 5]],
        dtype=np.intp,
    )
    return MappedDataset(
        label="asgeo",
        kind="skitter",
        addresses=np.arange(9, dtype=np.int64),
        lats=lats,
        lons=lons,
        asns=asns,
        links=links,
    )


class TestAsSizeMeasures:
    def test_node_counts(self):
        table = as_size_measures(_dataset())
        by_asn = dict(zip(table.asns.tolist(), table.n_nodes.tolist()))
        assert by_asn == {1: 3, 2: 2, 3: 4}

    def test_location_counts(self):
        table = as_size_measures(_dataset())
        by_asn = dict(zip(table.asns.tolist(), table.n_locations.tolist()))
        # AS 1's three nodes share one rounded location.
        assert by_asn[1] == 1
        assert by_asn[2] == 2
        assert by_asn[3] == 4

    def test_degrees_from_as_graph(self):
        table = as_size_measures(_dataset())
        by_asn = dict(zip(table.asns.tolist(), table.degree.tolist()))
        # Edges: (1,2) via link 2-3, (2,3) via 4-7, (1,3) via 0-5.
        assert by_asn == {1: 2, 2: 2, 3: 2}

    def test_unmapped_group_omitted(self):
        ds = _dataset()
        asns = ds.asns.copy()
        asns[8] = UNMAPPED_ASN
        ds2 = MappedDataset(
            label="x", kind="skitter", addresses=ds.addresses, lats=ds.lats,
            lons=ds.lons, asns=asns, links=ds.links,
        )
        table = as_size_measures(ds2)
        assert UNMAPPED_ASN not in table.asns.tolist()

    def test_empty_dataset_raises(self):
        ds = MappedDataset(
            label="e", kind="skitter",
            addresses=np.empty(0, dtype=np.int64),
            lats=np.empty(0), lons=np.empty(0),
            asns=np.empty(0, dtype=np.int64),
            links=np.empty((0, 2), dtype=np.intp),
        )
        with pytest.raises(AnalysisError):
            as_size_measures(ds)


class TestDistributionsAndCorrelations:
    def test_ccdf_points_finite(self, pipeline_small):
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        dists = size_distributions(table)
        for lx, ly in (dists.nodes_ccdf, dists.locations_ccdf, dists.degree_ccdf):
            assert np.all(np.isfinite(lx)) and np.all(np.isfinite(ly))

    def test_long_tails_on_pipeline(self, pipeline_small):
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        dists = size_distributions(table)
        assert dists.decades["nodes"] >= 1.5
        assert dists.decades["locations"] >= 1.0

    def test_correlations_positive_on_pipeline(self, pipeline_small):
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        corr = size_correlations(table)
        assert corr.pearson_nodes_locations > 0.5
        assert corr.pearson_nodes_degree > 0.3
        assert corr.pearson_locations_degree > 0.3
        assert corr.spearman_nodes_locations > 0.3

    def test_nodes_locations_is_tightest_pair(self, pipeline_small):
        # Paper: the interfaces~locations scatter is the tightest.
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        corr = size_correlations(table)
        assert corr.pearson_nodes_locations >= corr.pearson_locations_degree - 0.05


class TestHulls:
    def test_compact_as_zero_extent(self):
        hulls = hull_areas(_dataset())
        by_asn = dict(zip(hulls.asns.tolist(), hulls.areas.tolist()))
        # AS 1 is a tight metro cluster: tiny but positive hull; AS 2 has
        # two sites (zero area); AS 3 spans the globe.
        assert by_asn[2] == 0.0
        assert by_asn[3] > 1e6
        assert by_asn[1] < 100.0

    def test_zero_fraction(self):
        hulls = hull_areas(_dataset())
        assert 0.0 <= hulls.zero_fraction <= 1.0

    def test_region_restriction_shrinks_hulls(self):
        world = hull_areas(_dataset())
        us_only = hull_areas(_dataset(), region=US)
        assert us_only.areas.max() <= world.areas.max()

    def test_cdf_points_monotone(self, pipeline_small):
        hulls = hull_areas(pipeline_small.dataset("IxMapper", "Skitter"))
        areas, p = hulls.cdf_points()
        assert np.all(np.diff(areas) >= 0)
        assert np.all(np.diff(p) >= 0)
        assert p[-1] == pytest.approx(1.0)

    def test_majority_zero_extent_on_pipeline(self, pipeline_small):
        # Paper Figure 9: ~80% of ASes have no extent at all.
        hulls = hull_areas(pipeline_small.dataset("IxMapper", "Skitter"))
        assert hulls.zero_fraction > 0.4


class TestHullVsSize:
    def test_summary_fields(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        table = as_size_measures(ds)
        hulls = hull_areas(ds)
        summary = hull_vs_size(table, hulls, size_measure="nodes", cutoff=100)
        assert summary.max_area > 0
        assert summary.sizes.shape == summary.areas.shape

    def test_large_ases_widely_dispersed(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        table = as_size_measures(ds)
        hulls = hull_areas(ds)
        summary = hull_vs_size(table, hulls, size_measure="nodes", cutoff=200)
        if (summary.sizes >= 200).any():
            assert summary.dispersal_ratio > 0.2

    def test_unknown_measure_raises(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        table = as_size_measures(ds)
        hulls = hull_areas(ds)
        with pytest.raises(AnalysisError):
            hull_vs_size(table, hulls, size_measure="mass")

    def test_mismatched_tables_raise(self):
        ds = _dataset()
        table = as_size_measures(ds)
        # Europe holds nodes of ASes 2 and 3 only, so the hull table
        # covers a different AS set than the world-wide size table.
        hulls = hull_areas(ds.restrict(EUROPE))
        with pytest.raises(AnalysisError):
            hull_vs_size(table, hulls)


class TestLinkDomains:
    def test_counts_and_lengths(self):
        row = link_domain_row(_dataset(), "World")
        # Interdomain: links 2-3? no - 2,3 are AS1->AS2 cross... recount:
        # links (2,3): AS1-AS2 inter; (4,7): AS2-AS3 inter; (0,5): AS1-AS3
        # inter; intradomain: (0,1), (1,2), (3,4)? 3 is AS2, 4 is AS2 ->
        # intra; (5,6), (6,7), (7,8) AS3 intra.
        assert row.n_interdomain == 3
        assert row.n_intradomain == 6
        assert row.intradomain_fraction == pytest.approx(6 / 9)

    def test_region_rows(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        rows = link_domain_table(ds, STUDY_REGIONS)
        assert rows[0].region == "World"
        assert rows[0].intradomain_fraction > 0.6

    def test_interdomain_longer_on_pipeline(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        row = link_domain_row(ds, "World")
        assert row.mean_interdomain_miles > row.mean_intradomain_miles

    def test_no_links_raises(self):
        ds = MappedDataset(
            label="n", kind="skitter",
            addresses=np.array([1], dtype=np.int64),
            lats=np.array([0.0]), lons=np.array([0.0]),
            asns=np.array([1], dtype=np.int64),
            links=np.empty((0, 2), dtype=np.intp),
        )
        with pytest.raises(AnalysisError):
            link_domain_row(ds, "empty")

    def test_europe_restriction(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter").restrict(EUROPE)
        if ds.n_links:
            row = link_domain_row(ds, "Europe")
            assert row.n_interdomain + row.n_intradomain <= ds.n_links
