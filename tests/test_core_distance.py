"""Tests for repro.core.distance (Section V analyses)."""

import numpy as np
import pytest

from repro.core.distance import (
    cumulated_preference,
    exact_pair_counts,
    exact_pair_counts_rows,
    grid_pair_counts,
    preference_from_counts,
    preference_function,
    sensitivity_limit,
    waxman_fit,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.distance import pairwise_distance_matrix
from repro.geo.regions import US, Region

REGION = Region("R", north=40.0, south=30.0, west=-110.0, east=-90.0)


def _waxman_dataset(
    n: int = 400, l_miles: float = 100.0, seed: int = 0
) -> MappedDataset:
    """Synthetic dataset with planted exponential distance preference."""
    rng = np.random.default_rng(seed)
    lats = rng.uniform(REGION.south, REGION.north, n)
    lons = rng.uniform(REGION.west, REGION.east, n)
    d = pairwise_distance_matrix(lats, lons)
    links = []
    for i in range(n - 1):
        p = 0.4 * np.exp(-d[i, i + 1 :] / l_miles)
        hits = np.flatnonzero(rng.random(n - i - 1) < p)
        links.extend((i, i + 1 + int(j)) for j in hits)
    return MappedDataset(
        label="waxman",
        kind="generated",
        addresses=np.arange(n, dtype=np.int64),
        lats=lats,
        lons=lons,
        asns=np.ones(n, dtype=np.int64),
        links=np.asarray(links, dtype=np.intp),
    )


class TestPairCounts:
    def test_exact_counts_total(self):
        rng = np.random.default_rng(1)
        lats = rng.uniform(30, 40, 80)
        lons = rng.uniform(-110, -90, 80)
        counts = exact_pair_counts(lats, lons, bin_miles=50.0, n_bins=60)
        assert counts.sum() <= 80 * 79 // 2
        # With 60 bins of 50 miles the full extent is covered.
        assert counts.sum() == 80 * 79 // 2

    def test_exact_counts_chunking_invariant(self):
        rng = np.random.default_rng(2)
        lats = rng.uniform(30, 40, 150)
        lons = rng.uniform(-110, -90, 150)
        a = exact_pair_counts(lats, lons, 25.0, 80, chunk=7)
        b = exact_pair_counts(lats, lons, 25.0, 80, chunk=512)
        assert np.array_equal(a, b)

    def test_grid_approximates_exact(self):
        rng = np.random.default_rng(3)
        lats = rng.uniform(30.5, 39.5, 600)
        lons = rng.uniform(-109.5, -90.5, 600)
        exact = exact_pair_counts(lats, lons, 40.0, 40)
        grid = grid_pair_counts(lats, lons, REGION, 40.0, 40)
        assert grid.sum() == exact.sum()
        # Cumulative distributions agree within a couple of bins' blur.
        ce = np.cumsum(exact) / exact.sum()
        cg = np.cumsum(grid) / grid.sum()
        assert np.max(np.abs(ce - cg)) < 0.08

    def test_single_point_no_pairs(self):
        counts = exact_pair_counts(np.array([35.0]), np.array([-100.0]), 10.0, 5)
        assert counts.sum() == 0

    def test_zero_bins_returns_empty(self):
        rng = np.random.default_rng(4)
        lats = rng.uniform(30, 40, 20)
        lons = rng.uniform(-110, -90, 20)
        counts = exact_pair_counts(lats, lons, 50.0, 0)
        assert counts.shape == (0,)
        counts = exact_pair_counts_rows(
            lats, lons, np.arange(20), 50.0, 0
        )
        assert counts.shape == (0,)

    def test_non_positive_bin_width_raises(self):
        lats = np.array([35.0, 36.0])
        lons = np.array([-100.0, -101.0])
        with pytest.raises(AnalysisError):
            exact_pair_counts(lats, lons, 0.0, 10)
        with pytest.raises(AnalysisError):
            exact_pair_counts_rows(lats, lons, np.array([0]), -5.0, 10)


class TestPairCountsRows:
    def test_partitions_sum_to_full_counts(self):
        rng = np.random.default_rng(5)
        lats = rng.uniform(30, 40, 90)
        lons = rng.uniform(-110, -90, 90)
        full = exact_pair_counts(lats, lons, 30.0, 50)
        parts = [np.arange(0, 30), np.arange(30, 71), np.arange(71, 90)]
        total = sum(
            exact_pair_counts_rows(lats, lons, rows, 30.0, 50)
            for rows in parts
        )
        assert np.array_equal(total, full)

    def test_last_row_owns_no_pairs(self):
        # The smaller index of every (i, j) pair is never the last row,
        # so a partition owning only it contributes an all-zero share.
        rng = np.random.default_rng(6)
        lats = rng.uniform(30, 40, 25)
        lons = rng.uniform(-110, -90, 25)
        counts = exact_pair_counts_rows(lats, lons, np.array([24]), 30.0, 50)
        assert counts.sum() == 0

    def test_single_row_partition(self):
        rng = np.random.default_rng(7)
        lats = rng.uniform(30, 40, 25)
        lons = rng.uniform(-110, -90, 25)
        counts = exact_pair_counts_rows(lats, lons, np.array([10]), 200.0, 40)
        # Row 10 is the smaller index of exactly the pairs (10, j>10).
        assert counts.sum() == 25 - 10 - 1

    def test_empty_and_tiny_inputs(self):
        lats = np.array([35.0, 36.0])
        lons = np.array([-100.0, -101.0])
        assert exact_pair_counts_rows(
            lats, lons, np.array([], dtype=np.intp), 10.0, 5
        ).sum() == 0
        assert exact_pair_counts_rows(
            np.array([35.0]), np.array([-100.0]), np.array([0]), 10.0, 5
        ).sum() == 0

    def test_out_of_range_rows_raise(self):
        lats = np.array([35.0, 36.0])
        lons = np.array([-100.0, -101.0])
        with pytest.raises(AnalysisError):
            exact_pair_counts_rows(lats, lons, np.array([5]), 10.0, 5)
        with pytest.raises(AnalysisError):
            exact_pair_counts_rows(lats, lons, np.array([-1]), 10.0, 5)


class TestPreferenceFromCounts:
    def test_matches_preference_function(self):
        ds = _waxman_dataset()
        direct = preference_function(ds, REGION, bin_miles=25.0, method="exact")
        rebuilt = preference_from_counts(
            REGION.name,
            25.0,
            direct.link_counts,
            direct.pair_counts,
            direct.n_nodes,
        )
        assert np.array_equal(rebuilt.link_counts, direct.link_counts)
        assert np.array_equal(rebuilt.pair_counts, direct.pair_counts)
        usable = rebuilt.pair_counts > 0
        assert np.array_equal(
            rebuilt.f_hat[usable], direct.f_hat[usable]
        )
        assert np.isnan(rebuilt.f_hat[~usable]).all()

    def test_empty_bins_give_nan_not_error(self):
        pref = preference_from_counts(
            "R", 10.0, np.zeros(5, np.int64), np.zeros(5, np.int64), 0
        )
        assert np.isnan(pref.f_hat).all()
        assert pref.link_lengths.size == 0

    def test_zero_length_histograms(self):
        pref = preference_from_counts(
            "R", 10.0, np.zeros(0, np.int64), np.zeros(0, np.int64), 0
        )
        assert pref.f_hat.shape == (0,)
        assert pref.bin_left.shape == (0,)

    def test_invalid_inputs_raise(self):
        ones = np.ones(5, np.int64)
        with pytest.raises(AnalysisError):
            preference_from_counts("R", 0.0, ones, ones, 5)
        with pytest.raises(AnalysisError):
            preference_from_counts("R", 10.0, ones, np.ones(4, np.int64), 5)
        with pytest.raises(AnalysisError):
            preference_from_counts("R", 10.0, -ones, ones, 5)
        with pytest.raises(AnalysisError):
            preference_from_counts("R", 10.0, ones, -ones, 5)
        with pytest.raises(AnalysisError):
            preference_from_counts(
                "R", 10.0, ones.reshape(1, 5), ones.reshape(1, 5), 5
            )


class TestPreferenceFunction:
    def test_f_hat_is_ratio(self):
        ds = _waxman_dataset()
        pref = preference_function(ds, REGION, bin_miles=25.0, method="exact")
        usable = pref.pair_counts > 0
        np.testing.assert_allclose(
            pref.f_hat[usable],
            pref.link_counts[usable] / pref.pair_counts[usable],
        )

    def test_link_lengths_recorded(self):
        ds = _waxman_dataset()
        pref = preference_function(ds, REGION, bin_miles=25.0)
        assert pref.link_lengths.size == ds.n_links

    def test_methods_agree_on_shape(self):
        ds = _waxman_dataset(n=500)
        exact = preference_function(ds, REGION, 25.0, method="exact")
        grid = preference_function(ds, REGION, 25.0, method="grid")
        assert exact.pair_counts.sum() == grid.pair_counts.sum()
        # Both estimates decay from small to large d.
        half = 20
        e = np.nan_to_num(exact.f_hat)
        g = np.nan_to_num(grid.f_hat)
        assert e[:half].mean() > e[half : 2 * half].mean()
        assert g[:half].mean() > g[half : 2 * half].mean()

    def test_too_few_nodes_raise(self):
        ds = _waxman_dataset(n=400)
        empty = Region("empty", north=-50.0, south=-60.0, west=0.0, east=5.0)
        with pytest.raises(AnalysisError):
            preference_function(ds, empty, 25.0)

    def test_invalid_parameters_raise(self):
        ds = _waxman_dataset()
        with pytest.raises(AnalysisError):
            preference_function(ds, REGION, -1.0)
        with pytest.raises(AnalysisError):
            preference_function(ds, REGION, 25.0, n_bins=3)
        with pytest.raises(AnalysisError):
            preference_function(ds, REGION, 25.0, method="psychic")

    def test_populated_extent_trims_empty_tail(self):
        ds = _waxman_dataset()
        pref = preference_function(ds, REGION, bin_miles=25.0)
        extent = pref.populated_extent()
        assert extent <= pref.bin_left.shape[0]
        assert pref.pair_counts[extent - 1] > 0


class TestWaxmanFit:
    def test_planted_l_recovered(self):
        ds = _waxman_dataset(n=700, l_miles=100.0, seed=5)
        pref = preference_function(ds, REGION, bin_miles=20.0, method="exact")
        fit = waxman_fit(pref)
        assert fit.l_miles == pytest.approx(100.0, rel=0.35)
        assert fit.fit.slope < 0

    def test_flat_profile_rejected(self):
        # Distance-independent links: semi-log slope near zero or
        # positive -> the fit must refuse.
        rng = np.random.default_rng(7)
        n = 300
        lats = rng.uniform(REGION.south, REGION.north, n)
        lons = rng.uniform(REGION.west, REGION.east, n)
        links = rng.integers(0, n, size=(800, 2))
        links = links[links[:, 0] != links[:, 1]]
        ds = MappedDataset(
            label="flat", kind="generated",
            addresses=np.arange(n, dtype=np.int64),
            lats=lats, lons=lons, asns=np.ones(n, dtype=np.int64),
            links=links.astype(np.intp),
        )
        pref = preference_function(ds, REGION, bin_miles=20.0, method="exact")
        with pytest.raises(AnalysisError):
            waxman_fit(pref, small_d_max=600.0)


class TestCumulatedPreference:
    def test_flat_tail_gives_linear_cumulation(self):
        ds = _waxman_dataset(n=600, seed=9)
        pref = preference_function(ds, REGION, bin_miles=20.0, method="exact")
        curve = cumulated_preference(pref)
        assert curve.big_f.shape == curve.d.shape
        assert np.all(np.diff(curve.big_f) >= 0)

    def test_fit_r_squared_reported(self):
        ds = _waxman_dataset(n=600, seed=10)
        pref = preference_function(ds, REGION, bin_miles=20.0, method="exact")
        curve = cumulated_preference(pref)
        assert 0.0 <= curve.large_d_fit.r_squared <= 1.0


class TestSensitivityLimit:
    def test_limit_and_fraction(self):
        # Plant the paper's structure: Waxman small-d + uniform tail.
        rng = np.random.default_rng(11)
        ds = _waxman_dataset(n=700, l_miles=80.0, seed=11)
        n = ds.n_nodes
        extra = rng.integers(0, n, size=(150, 2))
        extra = extra[extra[:, 0] != extra[:, 1]]
        links = np.vstack([ds.links, extra.astype(np.intp)])
        ds2 = MappedDataset(
            label="two-regime", kind="generated",
            addresses=ds.addresses, lats=ds.lats, lons=ds.lons,
            asns=ds.asns, links=links,
        )
        pref = preference_function(ds2, REGION, bin_miles=20.0, method="exact")
        result = sensitivity_limit(pref)
        assert result.limit_miles > 0
        assert 0.5 <= result.fraction_below <= 1.0
        assert result.large_d_mean > 0

    def test_pipeline_us_region(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        pref = preference_function(ds, US, bin_miles=35.0)
        result = sensitivity_limit(pref)
        # The paper band: most links fall below the limit.
        assert result.fraction_below > 0.5
        assert 20.0 < result.waxman.l_miles < 800.0
