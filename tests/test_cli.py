"""Tests for the repro.cli experiment driver."""

import pytest

from repro.cli import main


class TestCli:
    def test_single_experiment_runs(self, capsys):
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "IxMapper, Skitter" in out

    def test_multiple_experiments(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table4", "table6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HOMOGENEITY" in out
        assert "INTERDOMAIN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiments", "table99"])

    def test_seed_override(self, capsys):
        code = main(["--scale", "small", "--seed", "5", "--experiments", "table1"])
        assert code == 0

    def test_edgescape_mapper(self, capsys):
        code = main(
            [
                "--scale", "small", "--mapper", "EdgeScape",
                "--experiments", "figure2",
            ]
        )
        assert code == 0
        assert "FIGURE 2" in capsys.readouterr().out
