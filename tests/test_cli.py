"""Tests for the repro.cli experiment driver."""

import json

import pytest

from repro.cli import EXIT_DIFF, EXIT_INVALID, EXIT_OK, main
from repro.obs import load_report, validate_report


class TestCli:
    def test_single_experiment_runs(self, capsys):
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "IxMapper, Skitter" in out

    def test_multiple_experiments(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table4", "table6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HOMOGENEITY" in out
        assert "INTERDOMAIN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiments", "table99"])

    def test_seed_override(self, capsys):
        code = main(["--scale", "small", "--seed", "5", "--experiments", "table1"])
        assert code == 0

    def test_edgescape_mapper(self, capsys):
        code = main(
            [
                "--scale", "small", "--mapper", "EdgeScape",
                "--experiments", "figure2",
            ]
        )
        assert code == 0
        assert "FIGURE 2" in capsys.readouterr().out

    def test_parallel_jobs_and_profile(self, capsys):
        code = main(
            [
                "--scale", "small", "--jobs", "4", "--profile",
                "--experiments", "table1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "TABLE I" in captured.out
        assert "PIPELINE STAGE PROFILE" in captured.err

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "--experiments", "table1"])

    def test_cache_dir_warm_run_hits_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "--scale", "small", "--cache-dir", cache_dir,
            "--profile", "--experiments", "table1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        # Every stage of the warm run is served from the cache.
        profile = capsys.readouterr().err
        assert profile.count("cache-hit") == 10

    def test_run_subcommand_is_explicit_alias(self, capsys):
        code = main(["run", "--scale", "small", "--experiments", "table1"])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_verbose_emits_json_logs(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table1", "--verbose"]
        )
        assert code == 0
        err = capsys.readouterr().err
        started = [
            line for line in err.splitlines()
            if line.startswith("{") and '"run starting"' in line
        ]
        assert started, err
        payload = json.loads(started[0])
        assert payload["scale"] == "small"
        assert payload["jobs"] == 1

    def test_pipeline_error_exits_cleanly(self, capsys, monkeypatch):
        from repro.core import experiments
        from repro.errors import ReproError

        def explode(config, **kwargs):
            raise ReproError("synthetic pipeline failure")

        monkeypatch.setattr(experiments, "prepare_result", explode)
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "synthetic pipeline failure" in captured.err
        assert "Traceback" not in captured.err


class TestReportCli:
    """The --report flag and the `repro report` subcommand."""

    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reports") / "run.json"
        code = main(
            [
                "run", "--scale", "small", "--experiments", "table1",
                "--jobs", "2", "--report", str(path),
            ]
        )
        assert code == 0
        return path

    def test_report_is_schema_valid_with_deep_spans(self, report_path):
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        report = load_report(report_path)
        # run -> pipeline -> stage:* -> geoloc.locate_batch
        assert report.span_depth() >= 3
        assert report.counter("geoloc.addresses") > 0
        assert report.counter("bgp.lookups") > 0
        assert len(report.stage_events) == 10
        assert len(report.artifacts) == 4

    def test_report_show(self, report_path, capsys):
        assert main(["report", "show", str(report_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "RUN REPORT" in out
        assert "SPAN TREE" in out

    def test_report_diff_identical_is_clean(self, report_path, capsys):
        code = main(["report", "diff", str(report_path), str(report_path)])
        assert code == EXIT_OK
        assert "no regressions" in capsys.readouterr().out

    def test_report_diff_flags_regression(self, report_path, tmp_path, capsys):
        payload = json.loads(report_path.read_text())
        for event in payload["stage_events"]:
            event["wall_s"] = event["wall_s"] * 10 + 1.0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(payload))
        code = main(["report", "diff", str(report_path), str(slowed)])
        assert code == EXIT_DIFF
        assert "REGRESSION" in capsys.readouterr().out

    def test_report_diff_threshold_is_tunable(self, report_path, tmp_path):
        payload = json.loads(report_path.read_text())
        for event in payload["stage_events"]:
            event["wall_s"] = event["wall_s"] * 10 + 1.0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(payload))
        args = ["report", "diff", str(report_path), str(slowed)]
        assert main(args + ["--threshold", "1e9"]) == EXIT_OK

    def test_report_commands_reject_invalid_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", "show", str(bad)]) == EXIT_INVALID
        assert main(["report", "diff", str(bad), str(bad)]) == EXIT_INVALID
        assert (
            main(["report", "show", str(tmp_path / "missing.json")])
            == EXIT_INVALID
        )
        assert "error:" in capsys.readouterr().err
