"""Tests for the repro.cli experiment driver."""

import json

import pytest

from repro.cli import EXIT_DIFF, EXIT_INVALID, EXIT_OK, main
from repro.obs import load_report, validate_report


class TestCli:
    def test_single_experiment_runs(self, capsys):
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "IxMapper, Skitter" in out

    def test_multiple_experiments(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table4", "table6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HOMOGENEITY" in out
        assert "INTERDOMAIN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiments", "table99"])

    def test_seed_override(self, capsys):
        code = main(["--scale", "small", "--seed", "5", "--experiments", "table1"])
        assert code == 0

    def test_edgescape_mapper(self, capsys):
        code = main(
            [
                "--scale", "small", "--mapper", "EdgeScape",
                "--experiments", "figure2",
            ]
        )
        assert code == 0
        assert "FIGURE 2" in capsys.readouterr().out

    def test_parallel_jobs_and_profile(self, capsys):
        code = main(
            [
                "--scale", "small", "--jobs", "4", "--profile",
                "--experiments", "table1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "TABLE I" in captured.out
        assert "PIPELINE STAGE PROFILE" in captured.err

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "--experiments", "table1"])

    def test_cache_dir_warm_run_hits_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "--scale", "small", "--cache-dir", cache_dir,
            "--profile", "--experiments", "table1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        # Every stage of the warm run is served from the cache.
        profile = capsys.readouterr().err
        assert profile.count("cache-hit") == 10

    def test_run_subcommand_is_explicit_alias(self, capsys):
        code = main(["run", "--scale", "small", "--experiments", "table1"])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_verbose_emits_json_logs(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table1", "--verbose"]
        )
        assert code == 0
        err = capsys.readouterr().err
        started = [
            line for line in err.splitlines()
            if line.startswith("{") and '"run starting"' in line
        ]
        assert started, err
        payload = json.loads(started[0])
        assert payload["scale"] == "small"
        assert payload["jobs"] == 1

    def test_pipeline_error_exits_cleanly(self, capsys, monkeypatch):
        from repro.core import experiments
        from repro.errors import ReproError

        def explode(config, **kwargs):
            raise ReproError("synthetic pipeline failure")

        monkeypatch.setattr(experiments, "prepare_result", explode)
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "synthetic pipeline failure" in captured.err
        assert "Traceback" not in captured.err


class TestReportCli:
    """The --report flag and the `repro report` subcommand."""

    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("reports") / "run.json"
        code = main(
            [
                "run", "--scale", "small", "--experiments", "table1",
                "--jobs", "2", "--report", str(path),
            ]
        )
        assert code == 0
        return path

    def test_report_is_schema_valid_with_deep_spans(self, report_path):
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        report = load_report(report_path)
        # run -> pipeline -> stage:* -> geoloc.locate_batch
        assert report.span_depth() >= 3
        assert report.counter("geoloc.addresses") > 0
        assert report.counter("bgp.lookups") > 0
        assert len(report.stage_events) == 10
        assert len(report.artifacts) == 4

    def test_report_show(self, report_path, capsys):
        assert main(["report", "show", str(report_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "RUN REPORT" in out
        assert "SPAN TREE" in out

    def test_report_diff_identical_is_clean(self, report_path, capsys):
        code = main(["report", "diff", str(report_path), str(report_path)])
        assert code == EXIT_OK
        assert "no regressions" in capsys.readouterr().out

    def test_report_diff_flags_regression(self, report_path, tmp_path, capsys):
        payload = json.loads(report_path.read_text())
        for event in payload["stage_events"]:
            event["wall_s"] = event["wall_s"] * 10 + 1.0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(payload))
        code = main(["report", "diff", str(report_path), str(slowed)])
        assert code == EXIT_DIFF
        assert "REGRESSION" in capsys.readouterr().out

    def test_report_diff_threshold_is_tunable(self, report_path, tmp_path):
        payload = json.loads(report_path.read_text())
        for event in payload["stage_events"]:
            event["wall_s"] = event["wall_s"] * 10 + 1.0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(payload))
        args = ["report", "diff", str(report_path), str(slowed)]
        assert main(args + ["--threshold", "1e9"]) == EXIT_OK

    def test_report_commands_reject_invalid_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", "show", str(bad)]) == EXIT_INVALID
        assert main(["report", "diff", str(bad), str(bad)]) == EXIT_INVALID
        assert (
            main(["report", "show", str(tmp_path / "missing.json")])
            == EXIT_INVALID
        )
        assert "error:" in capsys.readouterr().err


class TestTelemetryCli:
    """The live-telemetry CLI surface: profiler, trace, follow, bench."""

    @pytest.fixture()
    def campaign(self, tmp_path):
        """A tiny finished synthetic campaign behind a result store."""
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "clismoke",
            "seeds": [1, 2],
            "synthetic": [{"duration_s": 0.01}],
        }))
        db = tmp_path / "sweep.db"
        code = main(["sweep", "run", str(spec), "--db", str(db),
                     "--workers", "0"])
        assert code == 0
        return db

    def test_sweep_run_profile_sampling_writes_collapsed(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "profiled",
            "seeds": [1, 2, 3, 4],
            "synthetic": [{"duration_s": 0.05}],
        }))
        out = tmp_path / "profile.collapsed"
        code = main([
            "sweep", "run", str(spec), "--db", str(tmp_path / "p.db"),
            "--workers", "0", "--profile-sampling", str(out),
            "--sampling-hz", "200",
        ])
        assert code == 0
        body = out.read_text()
        assert body, "profiler collected nothing during the campaign"
        stack, _, count = body.splitlines()[0].rpartition(" ")
        assert int(count) >= 1 and ";" in stack

    def test_sweep_trace_renders_and_jsons(self, campaign, capsys):
        code = main(["sweep", "trace", "clismoke", "--db", str(campaign)])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "campaign:clismoke" in out
        assert out.count("sweep:trial") == 2

        code = main(["sweep", "trace", "clismoke", "--db", str(campaign),
                     "--json"])
        assert code == EXIT_OK
        tree = json.loads(capsys.readouterr().out)
        assert len(tree["children"]) == 2

    def test_sweep_trace_unknown_campaign_fails(self, campaign, capsys):
        code = main(["sweep", "trace", "ghost", "--db", str(campaign)])
        assert code == EXIT_INVALID
        assert "error:" in capsys.readouterr().err

    def test_sweep_status_follow_replays_finished_campaign(
        self, campaign, capsys
    ):
        code = main(["sweep", "status", "clismoke", "--db", str(campaign),
                     "--follow", "--interval", "0.01"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert out.count(" start ") + out.count(" start  ") >= 2
        assert "clismoke: done" in out

    def test_sweep_status_follow_requires_campaign(self, campaign):
        with pytest.raises(SystemExit):
            main(["sweep", "status", "--db", str(campaign), "--follow"])

    @staticmethod
    def _history_line(bench, rev, created, headline):
        return json.dumps({
            "schema": "repro-bench",
            "schema_version": 1,
            "bench": bench,
            "git_rev": rev,
            "created_unix": created,
            "machine": {},
            "headline": {
                name: {"value": value, "better": better}
                for name, (value, better) in headline.items()
            },
        })

    def test_bench_history_renders_and_checks(self, tmp_path, capsys):
        history = tmp_path / "BENCH_history.jsonl"
        history.write_text("\n".join([
            self._history_line("serve", "aaa", 1.0,
                               {"p99_ms": (1.0, "lower")}),
            self._history_line("serve", "bbb", 2.0,
                               {"p99_ms": (2.0, "lower")}),
        ]) + "\n")
        code = main(["bench", "history", str(tmp_path)])
        assert code == EXIT_OK  # informational without --check
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regressed" in captured.err

        code = main(["bench", "history", str(tmp_path), "--check"])
        assert code == EXIT_DIFF
        # a generous threshold waves the same history through
        code = main(["bench", "history", str(tmp_path), "--check",
                     "--threshold", "5.0"])
        assert code == EXIT_OK

    def test_bench_history_rejects_empty_dir(self, tmp_path, capsys):
        code = main(["bench", "history", str(tmp_path)])
        assert code == EXIT_INVALID
        assert "error:" in capsys.readouterr().err
