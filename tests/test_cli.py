"""Tests for the repro.cli experiment driver."""

import pytest

from repro.cli import main


class TestCli:
    def test_single_experiment_runs(self, capsys):
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "IxMapper, Skitter" in out

    def test_multiple_experiments(self, capsys):
        code = main(
            ["--scale", "small", "--experiments", "table4", "table6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HOMOGENEITY" in out
        assert "INTERDOMAIN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiments", "table99"])

    def test_seed_override(self, capsys):
        code = main(["--scale", "small", "--seed", "5", "--experiments", "table1"])
        assert code == 0

    def test_edgescape_mapper(self, capsys):
        code = main(
            [
                "--scale", "small", "--mapper", "EdgeScape",
                "--experiments", "figure2",
            ]
        )
        assert code == 0
        assert "FIGURE 2" in capsys.readouterr().out

    def test_parallel_jobs_and_profile(self, capsys):
        code = main(
            [
                "--scale", "small", "--jobs", "4", "--profile",
                "--experiments", "table1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "TABLE I" in captured.out
        assert "PIPELINE STAGE PROFILE" in captured.err

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "--experiments", "table1"])

    def test_cache_dir_warm_run_hits_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "--scale", "small", "--cache-dir", cache_dir,
            "--profile", "--experiments", "table1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        # Every stage of the warm run is served from the cache.
        profile = capsys.readouterr().err
        assert profile.count("cache-hit") == 10

    def test_pipeline_error_exits_cleanly(self, capsys, monkeypatch):
        from repro.core import experiments
        from repro.errors import ReproError

        def explode(config, **kwargs):
            raise ReproError("synthetic pipeline failure")

        monkeypatch.setattr(experiments, "prepare_result", explode)
        code = main(["--scale", "small", "--experiments", "table1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "synthetic pipeline failure" in captured.err
        assert "Traceback" not in captured.err
