"""Tests for repro.datasets.serialize (JSON/CSV round trips)."""

import json

import numpy as np
import pytest

from repro.datasets.mapped import MappedDataset
from repro.datasets.serialize import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_csv,
    load_dataset_json,
    save_dataset_csv,
    save_dataset_json,
)
from repro.errors import DatasetError


def _dataset() -> MappedDataset:
    return MappedDataset(
        label="round trip",
        kind="mercator",
        addresses=np.array([5, 9, 11], dtype=np.int64),
        lats=np.array([1.5, 2.5, 3.5]),
        lons=np.array([-1.0, -2.0, -3.0]),
        asns=np.array([100, 100, 200], dtype=np.int64),
        links=np.array([[0, 1], [1, 2]], dtype=np.intp),
    )


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        ds = _dataset()
        again = dataset_from_dict(dataset_to_dict(ds))
        assert again.label == ds.label
        assert again.kind == ds.kind
        assert np.array_equal(again.addresses, ds.addresses)
        assert np.array_equal(again.lats, ds.lats)
        assert np.array_equal(again.links, ds.links)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(_dataset(), path)
        again = load_dataset_json(path)
        assert again.n_nodes == 3 and again.n_links == 2

    def test_empty_links_round_trip(self, tmp_path):
        ds = MappedDataset(
            label="nolinks", kind="skitter",
            addresses=np.array([1], dtype=np.int64),
            lats=np.array([0.0]), lons=np.array([0.0]),
            asns=np.array([1], dtype=np.int64),
            links=np.empty((0, 2), dtype=np.intp),
        )
        path = tmp_path / "ds.json"
        save_dataset_json(ds, path)
        assert load_dataset_json(path).n_links == 0

    def test_version_mismatch_rejected(self):
        payload = dataset_to_dict(_dataset())
        payload["format_version"] = 999
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = dataset_to_dict(_dataset())
        del payload["lats"]
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_dataset_json(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_json(tmp_path / "absent.json")

    def test_json_is_plain_types(self, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(_dataset(), path)
        payload = json.loads(path.read_text())
        assert isinstance(payload["addresses"][0], int)


class TestCsvRoundTrip:
    def test_csv_round_trip(self, tmp_path):
        ds = _dataset()
        save_dataset_csv(ds, tmp_path)
        again = load_dataset_csv(tmp_path, label=ds.label, kind=ds.kind)
        assert np.array_equal(again.addresses, ds.addresses)
        assert np.allclose(again.lats, ds.lats)
        assert np.array_equal(again.links, ds.links)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_csv(tmp_path / "nothing")

    def test_malformed_csv_rejected(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("address,lat\n1,2\n")
        (tmp_path / "links.csv").write_text("node_a,node_b\n")
        with pytest.raises(DatasetError):
            load_dataset_csv(tmp_path)

    def test_pipeline_dataset_round_trips(self, pipeline_small, tmp_path):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        save_dataset_json(ds, tmp_path / "full.json")
        again = load_dataset_json(tmp_path / "full.json")
        assert again.n_nodes == ds.n_nodes
        assert again.n_links == ds.n_links
        assert again.n_locations == ds.n_locations
