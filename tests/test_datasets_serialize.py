"""Tests for repro.datasets.serialize (JSON/CSV/npz round trips)."""

import json

import numpy as np
import pytest

from repro.datasets.mapped import UNMAPPED_ASN, MappedDataset
from repro.datasets.serialize import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    load_dataset_csv,
    load_dataset_json,
    load_dataset_npz,
    save_dataset,
    save_dataset_csv,
    save_dataset_json,
    save_dataset_npz,
)
from repro.errors import DatasetError


def _dataset() -> MappedDataset:
    return MappedDataset(
        label="round trip",
        kind="mercator",
        addresses=np.array([5, 9, 11], dtype=np.int64),
        lats=np.array([1.5, 2.5, 3.5]),
        lons=np.array([-1.0, -2.0, -3.0]),
        asns=np.array([100, 100, 200], dtype=np.int64),
        links=np.array([[0, 1], [1, 2]], dtype=np.intp),
    )


def _unmapped_dataset() -> MappedDataset:
    """Two nodes whose origin AS could not be resolved (sentinel -1)."""
    return MappedDataset(
        label="partially mapped",
        kind="skitter",
        addresses=np.array([3, 7, 12, 20], dtype=np.int64),
        lats=np.array([10.0, 20.0, 30.0, 40.0]),
        lons=np.array([5.0, 15.0, 25.0, 35.0]),
        asns=np.array([42, UNMAPPED_ASN, 42, UNMAPPED_ASN], dtype=np.int64),
        links=np.array([[0, 1], [2, 3], [0, 3]], dtype=np.intp),
    )


def _empty_links_dataset() -> MappedDataset:
    return MappedDataset(
        label="nolinks",
        kind="skitter",
        addresses=np.array([1], dtype=np.int64),
        lats=np.array([0.0]),
        lons=np.array([0.0]),
        asns=np.array([1], dtype=np.int64),
        links=np.empty((0, 2), dtype=np.intp),
    )


def _assert_identical(again: MappedDataset, ds: MappedDataset) -> None:
    """Lossless round trip: every field bit-identical."""
    assert again.label == ds.label
    assert again.kind == ds.kind
    assert np.array_equal(again.addresses, ds.addresses)
    assert np.array_equal(again.lats, ds.lats)
    assert np.array_equal(again.lons, ds.lons)
    assert np.array_equal(again.asns, ds.asns)
    assert np.array_equal(again.links, ds.links)
    assert again.links.shape == ds.links.shape


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        ds = _dataset()
        again = dataset_from_dict(dataset_to_dict(ds))
        assert again.label == ds.label
        assert again.kind == ds.kind
        assert np.array_equal(again.addresses, ds.addresses)
        assert np.array_equal(again.lats, ds.lats)
        assert np.array_equal(again.links, ds.links)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(_dataset(), path)
        again = load_dataset_json(path)
        assert again.n_nodes == 3 and again.n_links == 2

    def test_empty_links_round_trip(self, tmp_path):
        ds = MappedDataset(
            label="nolinks", kind="skitter",
            addresses=np.array([1], dtype=np.int64),
            lats=np.array([0.0]), lons=np.array([0.0]),
            asns=np.array([1], dtype=np.int64),
            links=np.empty((0, 2), dtype=np.intp),
        )
        path = tmp_path / "ds.json"
        save_dataset_json(ds, path)
        assert load_dataset_json(path).n_links == 0

    def test_version_mismatch_rejected(self):
        payload = dataset_to_dict(_dataset())
        payload["format_version"] = 999
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = dataset_to_dict(_dataset())
        del payload["lats"]
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_dataset_json(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_json(tmp_path / "absent.json")

    def test_json_is_plain_types(self, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset_json(_dataset(), path)
        payload = json.loads(path.read_text())
        assert isinstance(payload["addresses"][0], int)


class TestCsvRoundTrip:
    def test_csv_round_trip(self, tmp_path):
        ds = _dataset()
        save_dataset_csv(ds, tmp_path)
        again = load_dataset_csv(tmp_path, label=ds.label, kind=ds.kind)
        assert np.array_equal(again.addresses, ds.addresses)
        assert np.allclose(again.lats, ds.lats)
        assert np.array_equal(again.links, ds.links)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_csv(tmp_path / "nothing")

    def test_malformed_csv_rejected(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("address,lat\n1,2\n")
        (tmp_path / "links.csv").write_text("node_a,node_b\n")
        with pytest.raises(DatasetError):
            load_dataset_csv(tmp_path)

    def test_pipeline_dataset_round_trips(self, pipeline_small, tmp_path):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        save_dataset_json(ds, tmp_path / "full.json")
        again = load_dataset_json(tmp_path / "full.json")
        assert again.n_nodes == ds.n_nodes
        assert again.n_links == ds.n_links
        assert again.n_locations == ds.n_locations


class TestNpzRoundTrip:
    def test_npz_round_trip_lossless(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.npz"
        save_dataset_npz(ds, path)
        _assert_identical(load_dataset_npz(path), ds)

    def test_unmapped_asn_round_trip(self, tmp_path):
        ds = _unmapped_dataset()
        path = tmp_path / "ds.npz"
        save_dataset_npz(ds, path)
        again = load_dataset_npz(path)
        _assert_identical(again, ds)
        assert np.count_nonzero(again.asns == UNMAPPED_ASN) == 2

    def test_empty_links_round_trip(self, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset_npz(_empty_links_dataset(), path)
        again = load_dataset_npz(path)
        assert again.n_links == 0
        assert again.links.shape == (0, 2)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_npz(tmp_path / "absent.npz")

    def test_corrupt_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"PK\x03\x04 definitely not a zip archive")
        with pytest.raises(DatasetError):
            load_dataset_npz(path)

    def test_missing_array_rejected(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(path, addresses=np.array([1], dtype=np.int64))
        with pytest.raises(DatasetError):
            load_dataset_npz(path)

    def test_version_mismatch_rejected(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "future.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(999),
            label=np.asarray(ds.label),
            kind=np.asarray(ds.kind),
            addresses=ds.addresses,
            lats=ds.lats,
            lons=ds.lons,
            asns=ds.asns,
            links=np.asarray(ds.links, dtype=np.int64).reshape(-1, 2),
        )
        with pytest.raises(DatasetError):
            load_dataset_npz(path)

    def test_pipeline_dataset_round_trips(self, pipeline_small, tmp_path):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        path = tmp_path / "full.npz"
        save_dataset_npz(ds, path)
        _assert_identical(load_dataset_npz(path), ds)


class TestFormatDispatch:
    @pytest.mark.parametrize("name", ["ds.json", "ds.npz", "csvdir"])
    def test_auto_round_trip_all_formats(self, tmp_path, name):
        ds = _unmapped_dataset()
        path = tmp_path / name
        save_dataset(ds, path)
        again = load_dataset(path, label=ds.label, kind=ds.kind)
        _assert_identical(again, ds)

    @pytest.mark.parametrize("fmt", ["json", "npz", "csv"])
    def test_explicit_format_overrides_extension(self, tmp_path, fmt):
        ds = _dataset()
        path = tmp_path / "snapshot.dat"
        save_dataset(ds, path, format=fmt)
        again = load_dataset(path, format=fmt, label=ds.label, kind=ds.kind)
        assert np.array_equal(again.addresses, ds.addresses)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            save_dataset(_dataset(), tmp_path / "x.json", format="parquet")

    @pytest.mark.parametrize("name", ["ds.json", "ds.npz", "csvdir"])
    def test_empty_links_all_formats(self, tmp_path, name):
        ds = _empty_links_dataset()
        path = tmp_path / name
        save_dataset(ds, path)
        again = load_dataset(path, label=ds.label, kind=ds.kind)
        assert again.n_links == 0 and again.links.shape == (0, 2)
