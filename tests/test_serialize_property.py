"""Property-based round-trip tests for dataset serialisation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.mapped import MappedDataset
from repro.datasets.serialize import dataset_from_dict, dataset_to_dict


@st.composite
def datasets(draw) -> MappedDataset:
    n = draw(st.integers(min_value=1, max_value=30))
    lats = draw(
        st.lists(
            st.floats(min_value=-89.0, max_value=89.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    lons = draw(
        st.lists(
            st.floats(min_value=-179.0, max_value=179.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    asns = draw(
        st.lists(st.integers(min_value=-1, max_value=70_000), min_size=n,
                 max_size=n)
    )
    n_links = draw(st.integers(min_value=0, max_value=40))
    links = []
    if n >= 2:
        for _ in range(n_links):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1))
            if a != b:
                links.append((a, b))
    return MappedDataset(
        label=draw(st.text(min_size=0, max_size=20)),
        kind=draw(st.sampled_from(["skitter", "mercator", "generated"])),
        addresses=np.arange(n, dtype=np.int64),
        lats=np.asarray(lats),
        lons=np.asarray(lons),
        asns=np.asarray(asns, dtype=np.int64),
        links=(
            np.asarray(links, dtype=np.intp)
            if links
            else np.empty((0, 2), dtype=np.intp)
        ),
    )


@settings(max_examples=50, deadline=None)
@given(datasets())
def test_dict_round_trip_preserves_everything(ds):
    again = dataset_from_dict(dataset_to_dict(ds))
    assert again.label == ds.label
    assert again.kind == ds.kind
    assert np.array_equal(again.addresses, ds.addresses)
    assert np.array_equal(again.lats, ds.lats)
    assert np.array_equal(again.lons, ds.lons)
    assert np.array_equal(again.asns, ds.asns)
    assert np.array_equal(again.links, ds.links)


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_round_trip_preserves_derived_statistics(ds):
    again = dataset_from_dict(dataset_to_dict(ds))
    assert again.n_nodes == ds.n_nodes
    assert again.n_links == ds.n_links
    assert again.n_locations == ds.n_locations
    assert np.array_equal(again.interdomain_mask(), ds.interdomain_mask())
    assert np.allclose(again.link_lengths(), ds.link_lengths())
