"""Tests for streaming ingestion (repro.ingest).

The load-bearing property is *bit identity*: a snapshot index patched
incrementally through a stream of delta batches must be
indistinguishable — internal arrays, content hash, and raw HTTP bytes
alike — from one built from scratch over the final dataset.  Around
that sit the durability contracts: WAL round-trips and torn-tail
recovery, exactly-once re-application after a crash mid-apply, the
publish/checkpoint cycle, and the derived-table sidecar fallback.
"""

from __future__ import annotations

import json
import struct
import urllib.request

import numpy as np
import pytest

from repro.datasets.mapped import UNMAPPED_ASN, MappedDataset
from repro.errors import IngestError, ServeError
from repro.ingest import (
    DeltaBatch,
    Ingester,
    WriteAheadLog,
    apply_to_topology,
    delta_digest,
    delta_from_bytes,
    delta_to_bytes,
    load_delta,
    patch_dataset,
    save_delta,
    topology_digest,
)
from repro.measure.stream import DeltaStream
from repro.obs.report import dataset_digest
from repro.serve import SnapshotIndex, SnapshotServer

from tests.conftest import build_toy_topology


@pytest.fixture(scope="module")
def dataset(pipeline_small) -> MappedDataset:
    return pipeline_small.dataset("IxMapper", "Skitter")


def _tiny_dataset() -> MappedDataset:
    return MappedDataset(
        label="tiny",
        kind="skitter",
        addresses=np.array([10, 20, 30, 40, 50, 60], dtype=np.int64),
        lats=np.array([40.0, 41.0, 50.0, 35.0, 36.0, 51.5]),
        lons=np.array([-100.0, -100.5, 10.0, -90.0, -91.0, -0.1]),
        asns=np.array([1, 1, 2, 2, UNMAPPED_ASN, 3], dtype=np.int64),
        links=np.array([[0, 1], [1, 2], [3, 4]], dtype=np.intp),
    )


def _batch(**kw) -> DeltaBatch:
    return DeltaBatch(**kw)


def _fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


# -- delta batches -----------------------------------------------------------


class TestDeltaBatch:
    def test_round_trip_bytes(self):
        batch = _batch(
            add_addresses=[100, 101],
            add_lats=[10.0, 11.0],
            add_lons=[20.0, 21.0],
            add_asns=[7, UNMAPPED_ASN],
            add_links=[[100, 101], [100, 10]],
            move_addresses=[10],
            move_lats=[40.5],
            move_lons=[-99.5],
            remap_addresses=[20],
            remap_asns=[9],
            created_unix=123.5,
        )
        again = delta_from_bytes(delta_to_bytes(batch))
        assert delta_digest(again) == delta_digest(batch)
        assert again.created_unix == batch.created_unix
        np.testing.assert_array_equal(again.add_links, batch.add_links)

    def test_digest_ignores_created_unix(self):
        batch = _batch(add_addresses=[1], add_lats=[0.0],
                       add_lons=[0.0], add_asns=[5])
        assert delta_digest(batch) == delta_digest(batch.stamped(99.0))

    def test_digest_distinguishes_content(self):
        a = _batch(add_addresses=[1], add_lats=[0.0],
                   add_lons=[0.0], add_asns=[5])
        b = _batch(add_addresses=[2], add_lats=[0.0],
                   add_lons=[0.0], add_asns=[5])
        assert delta_digest(a) != delta_digest(b)

    def test_save_load_file(self, tmp_path):
        batch = _batch(move_addresses=[10], move_lats=[1.0],
                       move_lons=[2.0])
        path = tmp_path / "delta.npz"
        save_delta(batch, path)
        assert delta_digest(load_delta(path)) == delta_digest(batch)

    def test_rejects_non_parallel_adds(self):
        with pytest.raises(IngestError, match="parallel"):
            _batch(add_addresses=[1, 2], add_lats=[0.0],
                   add_lons=[0.0, 0.0], add_asns=[1, 1])

    def test_rejects_duplicate_adds(self):
        with pytest.raises(IngestError, match="duplicates"):
            _batch(add_addresses=[1, 1], add_lats=[0.0, 0.0],
                   add_lons=[0.0, 0.0], add_asns=[1, 1])

    def test_rejects_self_loop_links(self):
        with pytest.raises(IngestError):
            _batch(add_links=[[10, 10]])

    def test_rejects_bad_coordinates(self):
        with pytest.raises(IngestError):
            _batch(move_addresses=[10], move_lats=[float("nan")],
                   move_lons=[0.0])
        with pytest.raises(IngestError):
            _batch(move_addresses=[10], move_lats=[95.0], move_lons=[0.0])


# -- dataset patching --------------------------------------------------------


class TestPatchDataset:
    def test_adds_links_moves_remaps(self):
        base = _tiny_dataset()
        batch = _batch(
            add_addresses=[70, 80],
            add_lats=[42.0, 43.0],
            add_lons=[-80.0, -81.0],
            add_asns=[4, UNMAPPED_ASN],
            add_links=[[70, 80], [70, 10]],
            move_addresses=[20],
            move_lats=[41.5],
            move_lons=[-101.0],
            remap_addresses=[30],
            remap_asns=[9],
        )
        new, info = patch_dataset(base, batch)
        assert new.n_nodes == base.n_nodes + 2
        assert new.n_links == base.n_links + 2
        assert info.n_old_nodes == base.n_nodes
        row20 = int(np.flatnonzero(new.addresses == 20)[0])
        assert new.lats[row20] == 41.5
        row30 = int(np.flatnonzero(new.addresses == 30)[0])
        assert new.asns[row30] == 9
        # The base dataset is untouched (immutability).
        assert base.n_nodes == 6
        assert base.lats[1] == 41.0

    def test_rejects_unknown_move_address(self):
        with pytest.raises(IngestError, match="unknown"):
            patch_dataset(
                _tiny_dataset(),
                _batch(move_addresses=[999], move_lats=[0.0],
                       move_lons=[0.0]),
            )

    def test_rejects_re_adding_existing_address(self):
        with pytest.raises(IngestError, match="already"):
            patch_dataset(
                _tiny_dataset(),
                _batch(add_addresses=[10], add_lats=[0.0],
                       add_lons=[0.0], add_asns=[1]),
            )

    def test_rejects_duplicate_adjacency(self):
        with pytest.raises(IngestError, match="already exists"):
            patch_dataset(_tiny_dataset(), _batch(add_links=[[20, 10]]))

    def test_link_may_reference_same_batch_add(self):
        new, _ = patch_dataset(
            _tiny_dataset(),
            _batch(add_addresses=[70], add_lats=[0.0], add_lons=[0.0],
                   add_asns=[1], add_links=[[70, 60]]),
        )
        assert new.n_links == 4


# -- topology application ----------------------------------------------------


class TestApplyToTopology:
    def _batches(self) -> list[DeltaBatch]:
        return [
            _batch(
                add_addresses=[5000, 5001],
                add_lats=[34.05, 33.45],
                add_lons=[-118.24, -112.07],
                add_asns=[100, UNMAPPED_ASN],
                add_links=[[5000, 5001], [5000, 1000]],
            ),
            _batch(
                move_addresses=[1001],
                move_lats=[37.9],
                move_lons=[-122.0],
                remap_addresses=[5001],
                remap_asns=[200],
            ),
        ]

    def test_replay_determinism(self):
        first, second = build_toy_topology(), build_toy_topology()
        for batch in self._batches():
            apply_to_topology(first, batch)
        for batch in self._batches():
            apply_to_topology(second, batch)
        assert topology_digest(first) == topology_digest(second)
        first.validate()

    def test_mutations_land(self):
        topo = build_toy_topology()
        digest_before = topology_digest(topo)
        for batch in self._batches():
            apply_to_topology(topo, batch)
        assert topology_digest(topo) != digest_before
        assert topo.n_routers == 8
        lats, _ = topo.router_coordinates()
        assert 37.9 in np.round(lats, 6)

    def test_unknown_move_address_raises(self):
        topo = build_toy_topology()
        with pytest.raises(IngestError):
            apply_to_topology(
                topo,
                _batch(move_addresses=[999999], move_lats=[0.0],
                       move_lons=[0.0]),
            )


# -- write-ahead log ---------------------------------------------------------


class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "test.wal"
        batches = [
            _batch(add_addresses=[100 + i], add_lats=[float(i)],
                   add_lons=[float(i)], add_asns=[1], created_unix=1.0 + i)
            for i in range(4)
        ]
        with WriteAheadLog(path) as wal:
            for i, batch in enumerate(batches):
                assert wal.append_delta(batch) == i + 1
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 4
            replayed = list(wal.replay_deltas(0))
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4]
        for (_, got), want in zip(replayed, batches):
            assert delta_digest(got) == delta_digest(want)

    def test_replay_after_seq(self, tmp_path):
        path = tmp_path / "test.wal"
        with WriteAheadLog(path) as wal:
            for i in range(5):
                wal.append(f"payload-{i}".encode())
            tail = list(wal.entries(after_seq=3))
        assert [seq for seq, _ in tail] == [4, 5]
        assert tail[0][1] == b"payload-3"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_property_round_trip_to_identical_hash(self, tmp_path, seed):
        """Arbitrary batch streams replay to the identical dataset hash."""
        base = _tiny_dataset()
        stream = DeltaStream(base, np.random.default_rng(seed))
        batches = [
            stream.next_batch(n_adds=3, n_links=4, n_moves=2, n_remaps=1)
            for _ in range(5)
        ]
        direct = base
        with WriteAheadLog(tmp_path / "p.wal") as wal:
            for batch in batches:
                wal.append_delta(batch)
                direct, _ = patch_dataset(direct, batch)
        replayed = base
        with WriteAheadLog(tmp_path / "p.wal") as wal:
            for _, batch in wal.replay_deltas(0):
                replayed, _ = patch_dataset(replayed, batch)
        assert dataset_digest(replayed) == dataset_digest(direct)

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "torn.wal"
        with WriteAheadLog(path) as wal:
            for i in range(3):
                wal.append(f"record-{i}".encode())
        intact = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(intact - 5)  # tear the last record
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2
            assert wal.stats()["truncated_bytes"] > 0
            # Appends continue from the surviving sequence.
            assert wal.append(b"after-recovery") == 3
            payloads = [payload for _, payload in wal.entries(0)]
        assert payloads == [b"record-0", b"record-1", b"after-recovery"]

    def test_corrupt_record_hash_truncates(self, tmp_path):
        path = tmp_path / "flip.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b"good")
            second_at = path.stat().st_size
            wal.append(b"bad-to-be")
        with open(path, "r+b") as handle:
            handle.seek(second_at + struct.calcsize("<4sQQ32s"))
            handle.write(b"X")  # flip a payload byte under its hash
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 1
            assert [p for _, p in wal.entries(0)] == [b"good"]

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not-a.wal"
        path.write_bytes(b"definitely not a WAL header")
        with pytest.raises(IngestError):
            WriteAheadLog(path)


# -- incremental index: the bit-identity contract ----------------------------


class TestIncrementalIndex:
    @pytest.fixture(scope="class")
    def pair(self, dataset):
        """(incrementally patched index, from-scratch index) over the
        same final dataset, three delta batches downstream of base."""
        stream = DeltaStream(dataset, np.random.default_rng(42))
        incremental = SnapshotIndex(dataset)
        current = dataset
        for _ in range(3):
            batch = stream.next_batch(
                n_adds=6, n_links=8, n_moves=3, n_remaps=2
            )
            incremental = incremental.apply_delta(batch)
            current, _ = patch_dataset(current, batch)
        fresh = SnapshotIndex(current)
        return incremental, fresh

    def test_snapshot_hash_identical(self, pair):
        incremental, fresh = pair
        assert incremental.snapshot_hash == fresh.snapshot_hash

    def test_generation_advances(self, pair, dataset):
        incremental, fresh = pair
        assert incremental.gen == 4  # base gen 1 + three deltas
        assert fresh.gen == 1
        assert incremental.built_unix >= fresh.built_unix - 3600

    def test_internal_tables_identical(self, pair):
        incremental, fresh = pair
        for name in ("_addr_order", "_degrees", "_cells", "_cell_order"):
            np.testing.assert_array_equal(
                getattr(incremental, name), getattr(fresh, name), err_msg=name
            )
        assert incremental._cell_slices == fresh._cell_slices
        assert incremental._as_degrees == fresh._as_degrees
        assert incremental._as_edge_mult == fresh._as_edge_mult

    def test_http_responses_bit_identical(self, pair, dataset):
        """/locate, /near, /as/<asn>, /distance-preference answer with
        byte-identical bodies from both indexes, over real HTTP."""
        incremental, fresh = pair
        final = incremental.dataset
        added = np.setdiff1d(final.addresses, dataset.addresses)
        probes = [
            f"locate?address={int(final.addresses[0])}",
            f"locate?address={int(added[0])}",
            f"locate?address={int(final.addresses.max()) + 1}",  # miss
            "near?lat=40.0&lon=-95.0&k=7",
            "near?lat=51.0&lon=0.5&radius=300",
            "distance-preference?region=US",
            "distance-preference?region=Europe",
        ]
        asns = np.unique(final.asns[final.asns > 0])
        probes += [f"as/{int(a)}" for a in asns[:5]]
        probes.append(f"as/{int(asns.max()) + 1000}")  # miss
        with SnapshotServer(incremental, port=0) as a, SnapshotServer(
            fresh, port=0
        ) as b:
            for probe in probes:
                status_a, body_a = _fetch(f"{a.url}/{probe}")
                status_b, body_b = _fetch(f"{b.url}/{probe}")
                assert (status_a, body_a) == (status_b, body_b), probe

    def test_empty_batch_bumps_gen_only(self, dataset):
        index = SnapshotIndex(dataset)
        bumped = index.apply_delta(DeltaBatch())
        assert bumped.gen == index.gen + 1
        assert bumped.snapshot_hash == index.snapshot_hash

    def test_partition_refuses_deltas(self, dataset):
        part = SnapshotIndex.build_partition(
            dataset, None, int(dataset.addresses[10]), 75.0
        )
        with pytest.raises(ServeError):
            part.apply_delta(DeltaBatch())


# -- derived-table sidecar ---------------------------------------------------


class TestDerivedSidecar:
    def test_round_trip(self, dataset, tmp_path):
        built = SnapshotIndex(dataset)
        side = tmp_path / "derived.npz"
        built.save_derived(side)
        loaded = SnapshotIndex(dataset, derived=side)
        assert loaded.derived_loaded
        for name in ("_addr_order", "_degrees", "_cells", "_cell_order"):
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(built, name), err_msg=name
            )
        assert loaded.stats()["derived_loaded"] is True

    def test_falls_back_on_hash_mismatch(self, dataset, tmp_path):
        side = tmp_path / "derived.npz"
        SnapshotIndex(dataset).save_derived(side)
        other = _tiny_dataset()
        rebuilt = SnapshotIndex(other, derived=side)
        assert not rebuilt.derived_loaded
        assert rebuilt.locate(10) is not None

    def test_falls_back_on_cell_size_mismatch(self, dataset, tmp_path):
        side = tmp_path / "derived.npz"
        SnapshotIndex(dataset, 75.0).save_derived(side)
        rebuilt = SnapshotIndex(dataset, 60.0, derived=side)
        assert not rebuilt.derived_loaded

    def test_falls_back_on_corrupt_file(self, dataset, tmp_path):
        side = tmp_path / "derived.npz"
        side.write_bytes(b"garbage, not a zip archive")
        rebuilt = SnapshotIndex(dataset, derived=side)
        assert not rebuilt.derived_loaded

    def test_missing_file_is_fine(self, dataset, tmp_path):
        index = SnapshotIndex(dataset, derived=tmp_path / "absent.npz")
        assert not index.derived_loaded

    def test_partition_sidecar_round_trip(self, dataset, tmp_path):
        mid = int(np.sort(dataset.addresses)[dataset.n_nodes // 2])
        built = SnapshotIndex.build_partition(dataset, None, mid, 75.0)
        side = tmp_path / "part.npz"
        built.save_derived(side)
        loaded = SnapshotIndex.build_partition(
            dataset, None, mid, 75.0, derived=side
        )
        assert loaded.derived_loaded
        np.testing.assert_array_equal(loaded._degrees, built._degrees)
        # A different range must not accept the same sidecar.
        other = SnapshotIndex.build_partition(
            dataset, mid, None, 75.0, derived=side
        )
        assert not other.derived_loaded


# -- health endpoints report generation metadata -----------------------------


class TestGenerationMetadata:
    def test_server_healthz_reports_gen(self):
        index = SnapshotIndex(_tiny_dataset())
        with SnapshotServer(index, port=0) as server:
            status, body = _fetch(f"{server.url}/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["gen"] == 1
        assert payload["built_unix"] > 0

    def test_server_stats_reports_gen(self):
        index = SnapshotIndex(_tiny_dataset())
        with SnapshotServer(index, port=0) as server:
            _, body = _fetch(f"{server.url}/stats")
        facts = json.loads(body)["index"]
        assert facts["gen"] == 1
        assert facts["built_unix"] > 0
        assert facts["derived_loaded"] is False


# -- the ingester ------------------------------------------------------------


class TestIngester:
    def _stream(self, base, seed=7):
        return DeltaStream(base, np.random.default_rng(seed))

    def test_publish_at_batch_threshold(self, tmp_path):
        base = _tiny_dataset()
        stream = self._stream(base)
        with Ingester(base, tmp_path / "ing", publish_batches=2) as ing:
            first = ing.submit(stream.next_batch(2, 2, 1, 1))
            assert first["status"] == "applied" and not first["published"]
            assert ing.pending_batches == 1
            second = ing.submit(stream.next_batch(2, 2, 1, 1))
            assert second["published"]
            assert ing.pending_batches == 0
            assert ing.published_seq == 2
            gen_files = sorted(ing.out_dir.glob("gen-*.npz"))
            assert len(gen_files) == 1
            checkpoint = json.loads(
                (ing.out_dir / "checkpoint.json").read_text()
            )
            assert checkpoint["seq"] == 2
            assert checkpoint["snapshot_hash"] == ing.index.snapshot_hash

    def test_duplicate_batch_dropped(self, tmp_path):
        base = _tiny_dataset()
        batch = self._stream(base).next_batch(2, 2, 1, 1)
        with Ingester(base, tmp_path / "ing", publish_batches=10) as ing:
            assert ing.submit(batch)["status"] == "applied"
            assert ing.submit(batch)["status"] == "duplicate"
            assert ing.applied_seq == 1

    def test_invalid_batch_never_journaled(self, tmp_path):
        base = _tiny_dataset()
        bad = _batch(move_addresses=[424242], move_lats=[0.0],
                     move_lons=[0.0])
        with Ingester(base, tmp_path / "ing", publish_batches=10) as ing:
            with pytest.raises(IngestError):
                ing.submit(bad)
            assert ing.wal.last_seq == 0
            assert ing.applied_seq == 0

    def test_crash_mid_apply_replays_exactly_once(self, tmp_path):
        """Journaled-but-unpublished batches are re-applied exactly once
        and resubmitting any of them is a duplicate."""
        base = _tiny_dataset()
        stream = self._stream(base)
        batches = [stream.next_batch(2, 2, 1, 1) for _ in range(3)]
        out = tmp_path / "ing"
        with Ingester(base, out, publish_batches=10) as ing:
            for batch in batches:
                ing.submit(batch)
            interrupted_hash = ing.index.snapshot_hash
            # Simulated crash: no publish, no checkpoint, WAL has 3.
            assert not (out / "checkpoint.json").exists()
        with Ingester(base, out, publish_batches=10) as revived:
            assert revived.replayed_batches == 3
            assert revived.applied_seq == 3
            assert revived.index.snapshot_hash == interrupted_hash
            assert revived.submit(batches[1])["status"] == "duplicate"
            assert revived.applied_seq == 3

    def test_resume_from_checkpoint_replays_suffix(self, tmp_path):
        base = _tiny_dataset()
        stream = self._stream(base)
        out = tmp_path / "ing"
        with Ingester(base, out, publish_batches=2) as ing:
            for _ in range(2):
                ing.submit(stream.next_batch(2, 2, 1, 1))  # publishes
            ing.submit(stream.next_batch(2, 2, 1, 1))  # pending
            live_hash = ing.index.snapshot_hash
            live_gen = ing.index.gen
        with Ingester(base, out, publish_batches=2) as revived:
            # Only the post-checkpoint suffix is replayed...
            assert revived.replayed_batches == 1
            assert revived.published_seq == 2
            assert revived.applied_seq == 3
            # ... onto the checkpointed generation, reproducing state.
            assert revived.index.snapshot_hash == live_hash
            # Generations stay monotonic across the restart.
            assert revived.index.gen >= live_gen - 1

    def test_corrupt_checkpoint_snapshot_refuses_resume(self, tmp_path):
        base = _tiny_dataset()
        stream = self._stream(base)
        out = tmp_path / "ing"
        with Ingester(base, out, publish_batches=1) as ing:
            ing.submit(stream.next_batch(2, 2, 1, 1))
            snapshot = json.loads(
                (out / "checkpoint.json").read_text()
            )["snapshot"]
        # Swap the published generation for a different dataset.
        from repro.datasets.serialize import save_dataset_npz

        save_dataset_npz(base, out / snapshot)
        with pytest.raises(IngestError, match="hash"):
            Ingester(base, out, publish_batches=1)

    def test_status_facts(self, tmp_path):
        base = _tiny_dataset()
        with Ingester(base, tmp_path / "ing") as ing:
            facts = ing.status()
        assert facts["applied_seq"] == 0
        assert facts["n_nodes"] == base.n_nodes
        assert facts["wal"]["last_seq"] == 0

    def test_publish_by_age(self, tmp_path):
        base = _tiny_dataset()
        stream = self._stream(base)
        with Ingester(
            base, tmp_path / "ing", publish_batches=100,
            publish_age_s=0.05,
        ) as ing:
            batch = stream.next_batch(2, 2, 1, 1).stamped(1.0)  # ancient
            facts = ing.submit(batch)
            # The age threshold trips inside submit itself.
            assert facts["published"]
            assert ing.published_seq == 1
            assert ing.maybe_publish() is None  # nothing left pending
