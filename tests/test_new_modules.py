"""Tests for NetGeo, the BRITE generator, and recovery validation."""

import numpy as np
import pytest

from repro.core.validation import validate_recovery
from repro.errors import ConfigError, GeolocationError
from repro.generators.brite import (
    MODE_HYBRID,
    MODE_PREFERENTIAL,
    MODE_WAXMAN,
    brite_graph,
)
from repro.geoloc.base import METHOD_UNMAPPED, METHOD_WHOIS
from repro.geoloc.netgeo import NetGeo


class TestNetGeo:
    def test_maps_to_hq_via_whois(self, toy_topology):
        from repro.geoloc.whois import WhoisRegistry
        from repro.geoloc.base import GeoContext
        from repro.net.addressing import AddressPlan
        from repro.net.ip import Prefix

        plan = AddressPlan(pool=Prefix.parse("0.0.0.0/8"), block_length=16)
        plan.grant_block(100)
        context = GeoContext(
            city_locations={},
            hostnames={},
            whois=WhoisRegistry.from_plan(plan, toy_topology.asns),
            loc_records={},
            as_of_address={},
        )
        mapper = NetGeo(context, np.random.default_rng(0), failure_rate=0.0)
        result = mapper.locate(toy_topology.routers[0].loopback)
        assert result.method == METHOD_WHOIS
        assert result.location == toy_topology.asns[100].headquarters

    def test_unregistered_address_unmapped(self, toy_topology):
        from repro.geoloc.whois import WhoisRegistry
        from repro.geoloc.base import GeoContext
        from repro.net.addressing import AddressPlan

        context = GeoContext(
            city_locations={},
            hostnames={},
            whois=WhoisRegistry.from_plan(AddressPlan(), toy_topology.asns),
            loc_records={},
            as_of_address={},
        )
        mapper = NetGeo(context, np.random.default_rng(0), failure_rate=0.0)
        assert mapper.locate(12345).method == METHOD_UNMAPPED

    def test_bad_failure_rate_rejected(self, toy_topology):
        from repro.geoloc.whois import WhoisRegistry
        from repro.geoloc.base import GeoContext
        from repro.net.addressing import AddressPlan

        context = GeoContext(
            city_locations={},
            hostnames={},
            whois=WhoisRegistry.from_plan(AddressPlan(), toy_topology.asns),
            loc_records={},
            as_of_address={},
        )
        with pytest.raises(GeolocationError):
            NetGeo(context, np.random.default_rng(0), failure_rate=1.2)

    def test_piles_dispersed_as_onto_one_location(self, world_small,
                                                  generated_small):
        """NetGeo's known failure mode: one location per organisation."""
        from repro.config import GeolocConfig
        from repro.geoloc.base import build_context

        topology, plan, _ = generated_small
        rng = np.random.default_rng(1)
        context = build_context(world_small, topology, plan, GeolocConfig(), rng)
        mapper = NetGeo(context, rng, failure_rate=0.0)
        # Pick the largest AS; all its interfaces must land on one point.
        from collections import Counter

        sizes = Counter(r.asn for r in topology.routers)
        asn, _count = sizes.most_common(1)[0]
        locations = set()
        from repro.net.ip import is_private

        for address, iface in topology.interfaces.items():
            if is_private(address):
                continue
            if topology.routers[iface.router_id].asn != asn:
                continue
            result = mapper.locate(address)
            if result.mapped:
                locations.add((result.location.lat, result.location.lon))
        assert len(locations) == 1


class TestBriteGenerator:
    @pytest.mark.parametrize("mode", [MODE_WAXMAN, MODE_PREFERENTIAL, MODE_HYBRID])
    def test_modes_generate(self, mode):
        graph = brite_graph(400, m=2, rng=np.random.default_rng(3), mode=mode)
        assert graph.n_nodes == 400
        assert graph.name == f"brite-{mode}"
        # Incremental growth with m=2: roughly 2 edges per node.
        assert graph.n_edges == pytest.approx(2 * 400, rel=0.1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            brite_graph(100, m=2, rng=np.random.default_rng(0), mode="magic")

    def test_structural_validation(self):
        with pytest.raises(ConfigError):
            brite_graph(3, m=3, rng=np.random.default_rng(0))

    def test_connected(self):
        graph = brite_graph(300, m=1, rng=np.random.default_rng(4))
        from scipy import sparse
        from scipy.sparse.csgraph import connected_components

        m = sparse.csr_matrix(
            (np.ones(graph.n_edges), (graph.edges[:, 0], graph.edges[:, 1])),
            shape=(graph.n_nodes, graph.n_nodes),
        )
        n_comp, _ = connected_components(m, directed=False)
        assert n_comp == 1

    def test_waxman_mode_shorter_edges_than_preferential(self):
        wax = brite_graph(
            600, m=2, rng=np.random.default_rng(5), mode=MODE_WAXMAN,
            waxman_alpha=0.05,
        )
        pref = brite_graph(
            600, m=2, rng=np.random.default_rng(5), mode=MODE_PREFERENTIAL
        )
        assert wax.edge_lengths_miles().mean() < pref.edge_lengths_miles().mean()

    def test_preferential_mode_heavier_degree_tail(self):
        wax = brite_graph(
            1200, m=2, rng=np.random.default_rng(6), mode=MODE_WAXMAN,
            waxman_alpha=0.05,
        )
        pref = brite_graph(
            1200, m=2, rng=np.random.default_rng(6), mode=MODE_PREFERENTIAL
        )
        assert pref.degrees().max() > wax.degrees().max()


class TestValidateRecovery:
    def test_report_on_pipeline(self, pipeline_small):
        report = validate_recovery(pipeline_small)
        assert len(report.checks) >= 6
        rendered = report.render()
        assert "PLANTED vs RECOVERED" in rendered
        # Most checks pass even at test scale.
        passed = sum(1 for c in report.checks if c.ok)
        assert passed >= len(report.checks) - 2

    def test_check_fields(self, pipeline_small):
        report = validate_recovery(pipeline_small)
        laws = {c.law for c in report.checks}
        assert any("Waxman L" in law for law in laws)
        assert any("density exponent" in law for law in laws)
        assert any("intradomain" in law for law in laws)

    def test_edgescape_variant(self, pipeline_small):
        report = validate_recovery(pipeline_small, mapper="EdgeScape")
        assert report.checks
