"""Tests for the snapshot query service (repro.serve).

The index is validated against brute-force scans of the same dataset;
the server tests exercise the real HTTP transport end to end, including
the cache, micro-batching, and backpressure contracts.
"""

from __future__ import annotations

import threading
import time
import urllib.error

import numpy as np
import pytest

from repro.core.distance import PAPER_BIN_MILES, N_BINS, preference_function
from repro.datasets.mapped import UNMAPPED_ASN, MappedDataset
from repro.errors import AnalysisError, OverloadError, ServeError
from repro.geo.distance import haversine_miles
from repro.geo.regions import region_by_name
from repro.obs.report import validate_report
from repro.serve import (
    BackoffPolicy,
    ConnectError,
    LruCache,
    MicroBatcher,
    QueryError,
    SnapshotClient,
    SnapshotIndex,
    SnapshotServer,
    call_with_retries,
)


@pytest.fixture(scope="module")
def dataset(pipeline_small) -> MappedDataset:
    return pipeline_small.dataset("IxMapper", "Skitter")


@pytest.fixture(scope="module")
def index(dataset) -> SnapshotIndex:
    return SnapshotIndex(dataset)


@pytest.fixture()
def server(index):
    with SnapshotServer(index, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server) -> SnapshotClient:
    return SnapshotClient(server.url)


def _tiny_dataset() -> MappedDataset:
    return MappedDataset(
        label="tiny",
        kind="skitter",
        addresses=np.array([10, 20, 30], dtype=np.int64),
        lats=np.array([40.0, 41.0, 50.0]),
        lons=np.array([-100.0, -100.5, 10.0]),
        asns=np.array([1, 1, UNMAPPED_ASN], dtype=np.int64),
        links=np.array([[0, 1]], dtype=np.intp),
    )


class TestSnapshotIndex:
    def test_locate_matches_dataset(self, index, dataset):
        for row in (0, dataset.n_nodes // 2, dataset.n_nodes - 1):
            record = index.locate(int(dataset.addresses[row]))
            assert record is not None
            assert record["lat"] == pytest.approx(float(dataset.lats[row]))
            assert record["lon"] == pytest.approx(float(dataset.lons[row]))

    def test_locate_unknown_address(self, index, dataset):
        absent = int(dataset.addresses.max()) + 1
        assert index.locate(absent) is None

    def test_locate_many_matches_scalar(self, index, dataset):
        addresses = [int(a) for a in dataset.addresses[:50]]
        addresses.append(int(dataset.addresses.max()) + 7)  # unknown
        addresses.append(addresses[0])  # duplicate
        batch = index.locate_many(addresses)
        assert batch == [index.locate(a) for a in addresses]
        assert batch[-2] is None
        assert batch[-1] == batch[0]

    def test_degree_matches_link_table(self, index, dataset):
        row = int(dataset.links[0, 0])
        expected = int(np.count_nonzero(dataset.links == row))
        record = index.locate(int(dataset.addresses[row]))
        assert record["degree"] == expected

    def test_unmapped_asn_is_null(self):
        index = SnapshotIndex(_tiny_dataset())
        assert index.locate(30)["asn"] is None
        assert index.locate(10)["asn"] == 1

    def test_nearest_matches_brute_force(self, index, dataset):
        for lat, lon in ((40.0, -95.0), (51.0, 0.5), (35.7, 139.7)):
            got = index.nearest(lat, lon, k=5)
            dists = np.asarray(
                haversine_miles(lat, lon, dataset.lats, dataset.lons)
            )
            want = np.sort(dists)[:5]
            assert [r["miles"] for r in got] == pytest.approx(want.tolist())

    def test_within_radius_matches_brute_force(self, index, dataset):
        lat, lon, radius = 40.0, -95.0, 500.0
        got = index.within_radius(lat, lon, radius)
        dists = np.asarray(
            haversine_miles(lat, lon, dataset.lats, dataset.lons)
        )
        assert len(got) == int(np.count_nonzero(dists <= radius))
        assert all(r["miles"] <= radius for r in got)
        miles = [r["miles"] for r in got]
        assert miles == sorted(miles)

    def test_invalid_queries_rejected(self, index):
        with pytest.raises(ServeError):
            index.nearest(91.0, 0.0)
        with pytest.raises(ServeError):
            index.nearest(0.0, 181.0)
        with pytest.raises(ServeError):
            index.nearest(0.0, 0.0, k=0)
        with pytest.raises(ServeError):
            index.within_radius(0.0, 0.0, -5.0)

    def test_as_summary_matches_dataset(self, index, dataset):
        counts = dataset.as_node_counts()
        assert index.n_ases == len(counts)
        asn = max(counts, key=counts.get)
        summary = index.as_summary(asn)
        assert summary.n_nodes == counts[asn]
        assert summary.degree == dataset.as_degrees()[asn]
        nodes = index.as_nodes(asn)
        assert summary.centroid_lat == pytest.approx(
            float(np.mean(dataset.lats[nodes]))
        )

    def test_unknown_as(self, index):
        assert index.as_summary(999_999_999) is None
        assert index.as_nodes(999_999_999).size == 0

    def test_distance_preference_matches_core(self, index, dataset):
        region = region_by_name("US")
        pref = index.distance_preference(region)
        direct = preference_function(
            dataset, region, PAPER_BIN_MILES["US"], n_bins=N_BINS
        )
        assert np.array_equal(pref.link_counts, direct.link_counts)
        assert np.array_equal(pref.pair_counts, direct.pair_counts)
        # Memoised: the second call returns the same object.
        assert index.distance_preference(region) is pref

    def test_distance_preference_failure_memoised(self):
        index = SnapshotIndex(_tiny_dataset())
        region = region_by_name("Japan")
        with pytest.raises(AnalysisError):
            index.distance_preference(region)
        with pytest.raises(AnalysisError):  # memoised failure, same type
            index.distance_preference(region)

    def test_stats_shape(self, index, dataset):
        stats = index.stats()
        assert stats["n_nodes"] == dataset.n_nodes
        assert stats["n_links"] == dataset.n_links
        assert stats["snapshot_hash"] == index.snapshot_hash
        assert stats["build_seconds"] >= 0


class TestLruCache:
    def test_hit_miss_and_eviction(self):
        cache = LruCache(2)
        hit, _ = cache.get("a")
        assert not hit
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes recency of "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert len(cache) == 2

    def test_stats(self):
        cache = LruCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_ratio"] == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ServeError):
            LruCache(0)


class TestMicroBatcher:
    def test_concurrent_submissions_all_resolve(self):
        def compute(keys):
            return [k * 10 for k in keys]

        batcher = MicroBatcher(compute, max_wait_s=0.005)
        try:
            futures = {}
            threads = []

            def submit(k):
                futures[k] = batcher.submit(k)

            for k in range(32):
                t = threading.Thread(target=submit, args=(k,))
                threads.append(t)
                t.start()
            for t in threads:
                t.join()
            for k, future in futures.items():
                assert future.result(timeout=5.0) == k * 10
        finally:
            batcher.close()

    def test_flush_deduplicates(self):
        calls: list[list[int]] = []
        release = threading.Event()

        def compute(keys):
            release.wait(timeout=5.0)
            calls.append(list(keys))
            return [k + 1 for k in keys]

        # A long window so all submissions land in one flush.
        batcher = MicroBatcher(compute, max_wait_s=0.2)
        try:
            futures = [batcher.submit(k) for k in (5, 5, 8, 5)]
            release.set()
            assert [f.result(timeout=5.0) for f in futures] == [6, 6, 9, 6]
            flat = [k for call in calls for k in call]
            assert sorted(set(flat)) == [5, 8]
            assert len(flat) == len(set(flat))  # no key computed twice
            stats = batcher.stats()
            assert stats["requests"] == 4
            assert stats["dedup_saved"] == 2
        finally:
            batcher.close()

    def test_overflow_sheds(self):
        blocker = threading.Event()

        def compute(keys):
            blocker.wait(timeout=5.0)
            return [0 for _ in keys]

        batcher = MicroBatcher(compute, max_pending=2, max_wait_s=0.0)
        try:
            # Fill the queue while the flusher is blocked in compute.
            batcher.submit(1)
            time.sleep(0.05)  # let the flusher take the first batch
            batcher.submit(2)
            batcher.submit(3)
            with pytest.raises(OverloadError):
                batcher.submit(4)
        finally:
            blocker.set()
            batcher.close()

    def test_compute_failure_propagates(self):
        def compute(keys):
            raise RuntimeError("boom")

        batcher = MicroBatcher(compute, max_wait_s=0.0)
        try:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError):
                future.result(timeout=5.0)
        finally:
            batcher.close()

    def test_closed_batcher_rejects(self):
        batcher = MicroBatcher(lambda keys: [0 for _ in keys])
        batcher.close()
        with pytest.raises(ServeError):
            batcher.submit(1)

    def test_invalid_configuration(self):
        with pytest.raises(ServeError):
            MicroBatcher(lambda keys: [], max_batch=0)


class TestServerEndToEnd:
    def test_healthz(self, client, index):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["snapshot_hash"] == index.snapshot_hash

    def test_locate_and_cache_hit(self, server, client, dataset):
        address = int(dataset.addresses[0])
        first = client.locate(address)
        second = client.locate(address)
        assert first == second
        assert first["lat"] == pytest.approx(float(dataset.lats[0]))
        assert server.cache.hits >= 1

    def test_locate_many_endpoint(self, client, index, dataset):
        addresses = [int(a) for a in dataset.addresses[:5]]
        addresses.append(int(dataset.addresses.max()) + 1)
        results = client.locate_many(addresses)
        assert results == index.locate_many(addresses)
        assert results[-1] is None

    def test_locate_unknown_is_404(self, client, dataset):
        with pytest.raises(QueryError) as err:
            client.locate(int(dataset.addresses.max()) + 123)
        assert err.value.status == 404

    def test_as_endpoint(self, client, index, dataset):
        asn = max(dataset.as_node_counts())
        payload = client.as_info(asn)
        assert payload["n_nodes"] == index.as_summary(asn).n_nodes
        assert len(payload["sample_addresses"]) >= 1

    def test_near_endpoint(self, client, index):
        payload = client.near(40.0, -95.0, k=3)
        assert payload["results"] == index.nearest(40.0, -95.0, k=3)

    def test_radius_endpoint(self, client, index):
        payload = client.within_radius(40.0, -95.0, 300.0)
        assert payload["results"] == index.within_radius(40.0, -95.0, 300.0)

    def test_preference_endpoint(self, client, index):
        payload = client.distance_preference("US")
        pref = index.distance_preference(region_by_name("US"))
        assert payload["bin_miles"] == pref.bin_miles
        assert payload["link_counts"] == pref.link_counts.tolist()
        single = client.distance_preference("US", d=10.0)
        assert single["f_hat"] == index.f_of_d(region_by_name("US"), 10.0)

    def test_bad_params_are_400(self, client):
        with pytest.raises(QueryError) as err:
            client.get("locate", address="not-a-number")
        assert err.value.status == 400
        with pytest.raises(QueryError) as err:
            client.get("near", lat="91", lon="0")
        assert err.value.status == 400
        with pytest.raises(QueryError) as err:
            client.get("distance-preference")
        assert err.value.status == 400

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(QueryError) as err:
            client.get("no-such-endpoint")
        assert err.value.status == 404

    def test_stats_endpoint(self, client, dataset):
        payload = client.stats()
        assert payload["index"]["n_nodes"] == dataset.n_nodes
        assert "cache" in payload and "batcher" in payload
        # Request counters are recorded after the payload is rendered,
        # so the first call's counter shows up in the second call.
        payload = client.stats()
        assert payload["metrics"]["counters"]["serve.requests.stats"] >= 1

    def test_stats_report_is_schema_valid(self, server, client):
        client.healthz()
        report = server.stats_report()
        assert validate_report(report.to_dict()) == []
        assert report.config["service"] == "snapshot-query"


class TestBackpressure:
    def test_burst_sheds_while_healthz_answers(self, index, dataset):
        # A deliberately tiny server: one admitted request at a time and
        # a long batch window, so a concurrent burst must overflow.
        server = SnapshotServer(
            index,
            port=0,
            max_inflight=1,
            max_pending=1,
            batch_window_s=0.2,
            cache_size=1,
        )
        with server:
            client = SnapshotClient(server.url, max_retries=0)
            addresses = [int(a) for a in dataset.addresses[:24]]
            outcomes: list[str] = []
            lock = threading.Lock()

            def fire(address):
                c = SnapshotClient(server.url, max_retries=0)
                try:
                    c.locate(address)
                    result = "ok"
                except OverloadError:
                    result = "shed"
                except QueryError:
                    result = "other"
                with lock:
                    outcomes.append(result)

            threads = [
                threading.Thread(target=fire, args=(a,)) for a in addresses
            ]
            for t in threads:
                t.start()
            # While the burst is in flight, liveness must keep answering.
            assert client.healthz()["status"] == "ok"
            for t in threads:
                t.join()
            assert "shed" in outcomes  # some requests were 503ed
            assert "ok" in outcomes  # ...but the service did real work
            stats = client.stats()
            assert stats["metrics"]["counters"]["serve.shed"] >= 1

    def test_clean_shutdown_and_restartable_port(self, index):
        server = SnapshotServer(index, port=0)
        server.start()
        port = server.port
        SnapshotClient(server.url).healthz()
        server.stop()
        # The port is released: a new server can bind it immediately.
        again = SnapshotServer(index, port=port)
        with again:
            assert SnapshotClient(again.url).healthz()["status"] == "ok"

    def test_invalid_configuration(self, index):
        with pytest.raises(ServeError):
            SnapshotServer(index, max_inflight=0)


class TestRingSearchEdges:
    """Grid ring search at the coordinate seams, against brute force."""

    def _seam_dataset(self) -> MappedDataset:
        rng = np.random.default_rng(7)
        n = 120
        lats = np.concatenate(
            [
                rng.uniform(-10.0, 10.0, n),  # antimeridian band
                rng.uniform(85.0, 89.9, n),  # arctic cap
                np.array([-89.9, -89.5, 89.9, 89.5]),  # at the poles
            ]
        )
        lons = np.concatenate(
            [
                # Cluster tightly around the +-180 seam.
                np.where(
                    rng.random(n) < 0.5,
                    rng.uniform(178.0, 180.0, n),
                    rng.uniform(-180.0, -178.0, n),
                ),
                rng.uniform(-180.0, 180.0, n),
                np.array([0.0, 90.0, -120.0, 45.0]),
            ]
        )
        count = lats.shape[0]
        return MappedDataset(
            label="seam",
            kind="skitter",
            addresses=np.arange(1, count + 1, dtype=np.int64),
            lats=lats,
            lons=lons,
            asns=np.full(count, UNMAPPED_ASN, dtype=np.int64),
            links=np.zeros((0, 2), dtype=np.intp),
        )

    def _assert_matches_brute_force(self, index, dataset, lat, lon, k):
        got = index.nearest(lat, lon, k=k)
        dists = np.asarray(
            haversine_miles(lat, lon, dataset.lats, dataset.lons)
        )
        order = np.lexsort((dataset.addresses, dists))[:k]
        assert [r["address"] for r in got] == [
            int(dataset.addresses[i]) for i in order
        ]
        assert [r["miles"] for r in got] == pytest.approx(
            dists[order].tolist()
        )

    def test_nearest_across_antimeridian(self):
        dataset = self._seam_dataset()
        index = SnapshotIndex(dataset)
        for lon in (179.9, -179.9, 178.5, -178.5):
            self._assert_matches_brute_force(index, dataset, 0.0, lon, 10)

    def test_nearest_at_poles(self):
        dataset = self._seam_dataset()
        index = SnapshotIndex(dataset)
        for lat, lon in ((89.99, 0.0), (89.99, 179.0), (-89.99, -45.0)):
            self._assert_matches_brute_force(index, dataset, lat, lon, 8)

    def test_radius_across_antimeridian(self):
        dataset = self._seam_dataset()
        index = SnapshotIndex(dataset)
        lat, lon, radius = 0.0, 179.95, 400.0
        got = index.within_radius(lat, lon, radius)
        dists = np.asarray(
            haversine_miles(lat, lon, dataset.lats, dataset.lons)
        )
        assert len(got) == int(np.count_nonzero(dists <= radius))
        # Nodes on *both* sides of the seam are inside this disc.
        lons = [r["lon"] for r in got]
        assert any(value > 0 for value in lons)
        assert any(value < 0 for value in lons)


class TestBatcherShutdownFlush:
    def test_queued_submissions_resolve_through_close(self):
        release = threading.Event()
        entered = threading.Event()

        def compute(keys):
            entered.set()
            release.wait(timeout=5.0)
            return [k * 2 for k in keys]

        batcher = MicroBatcher(compute, max_batch=1, max_wait_s=0.0)
        first = batcher.submit(1)
        assert entered.wait(timeout=5.0)  # flusher is busy with key 1
        queued = [batcher.submit(k) for k in (2, 3, 4)]
        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        # close() drains: everything submitted before it resolves.
        assert first.result(timeout=5.0) == 2
        assert [f.result(timeout=5.0) for f in queued] == [4, 6, 8]
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        with pytest.raises(ServeError):
            batcher.submit(5)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda keys: [0 for _ in keys])
        batcher.close()
        batcher.close()


class TestStatsGauges:
    def test_shed_and_queue_depth_reported(self, client):
        stats = client.stats()
        assert stats["shed_requests"] == 0
        assert stats["queue_depth"] == 0

    def test_shed_requests_counts_rejections(self, index, dataset):
        server = SnapshotServer(index, port=0, max_inflight=1, cache_size=1)
        blocker = threading.Event()
        original = index.locate_many

        def slow_locate(addresses):
            blocker.wait(timeout=5.0)
            return original(addresses)

        server.batcher._compute = slow_locate
        address = int(dataset.addresses[0])
        with server:
            client = SnapshotClient(server.url, max_retries=0)
            worker = threading.Thread(
                target=lambda: SnapshotClient(server.url).locate(address)
            )
            worker.start()
            try:
                # Wait until the blocked request owns the only slot, so
                # the next query is deterministically shed.
                deadline = time.monotonic() + 5.0
                while server.inflight < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                with pytest.raises(OverloadError):
                    client.locate(address)
            finally:
                blocker.set()
                worker.join(timeout=5.0)
            assert client.stats()["shed_requests"] >= 1


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = BackoffPolicy(
            retries=6, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_jitter_bounds(self):
        policy = BackoffPolicy(
            retries=1, base_delay_s=1.0, max_delay_s=8.0, jitter=0.25, seed=3
        )
        for attempt in range(50):
            delay = policy.delay_s(0)
            assert 0.75 <= delay <= 1.25

    def test_invalid_policies_rejected(self):
        with pytest.raises(ServeError):
            BackoffPolicy(retries=-1)
        with pytest.raises(ServeError):
            BackoffPolicy(jitter=1.5)

    def test_call_with_retries_eventual_success(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectError("nope")
            return "ok"

        policy = BackoffPolicy(retries=3, base_delay_s=0.01, jitter=0.0)
        result = call_with_retries(
            flaky, policy, retry_on=(ConnectError,), sleep=slept.append
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_non_retryable_errors_propagate_immediately(self):
        def boom():
            raise ValueError("not transient")

        policy = BackoffPolicy(retries=5, base_delay_s=0.01, jitter=0.0)
        with pytest.raises(ValueError):
            call_with_retries(
                boom, policy, retry_on=(ConnectError,), sleep=lambda _: None
            )

    def test_budget_exhaustion_reraises_last(self):
        def always():
            raise ConnectError("still down")

        policy = BackoffPolicy(retries=2, base_delay_s=0.01, jitter=0.0)
        with pytest.raises(ConnectError, match="still down"):
            call_with_retries(
                always, policy, retry_on=(ConnectError,), sleep=lambda _: None
            )


class TestClientConnectRetry:
    def test_unreachable_server_is_connect_error(self):
        import socket as socket_mod

        with socket_mod.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        client = SnapshotClient(
            f"http://127.0.0.1:{port}",
            timeout_s=0.5,
            connect_backoff=BackoffPolicy(
                retries=2, base_delay_s=0.01, jitter=0.0
            ),
        )
        with pytest.raises(ConnectError, match="cannot reach"):
            client.healthz()

    def test_refused_then_up_succeeds(self, index, monkeypatch):
        # A server that starts binding only after the first attempt:
        # the client's connection backoff should absorb the gap.
        import urllib.request as request_mod

        real_urlopen = request_mod.urlopen
        server = SnapshotServer(index, port=0)
        server.start()
        try:
            calls = []

            def flaky_urlopen(url, timeout=None):
                calls.append(url)
                if len(calls) < 3:
                    raise urllib.error.URLError(OSError(111, "refused"))
                return real_urlopen(url, timeout=timeout)

            monkeypatch.setattr(request_mod, "urlopen", flaky_urlopen)
            client = SnapshotClient(
                server.url,
                connect_backoff=BackoffPolicy(
                    retries=3, base_delay_s=0.01, jitter=0.0
                ),
            )
            assert client.healthz()["status"] == "ok"
            assert len(calls) == 3
        finally:
            server.stop()
