"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess exactly as a user would run it
and checked for a zero exit code and its headline output.  Marked slow:
together they run several pipelines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "TABLE I" in out
    assert "IxMapper, Skitter" in out


def test_topology_generator_comparison():
    out = _run("topology_generator_comparison.py")
    assert "geogen" in out
    assert "erdos-renyi" in out
    assert "AS labels" in out


def test_isp_footprint_analysis():
    out = _run("isp_footprint_analysis.py")
    assert "Top 10 ASes" in out
    assert "dispersed" in out


def test_measurement_bias_study():
    out = _run("measurement_bias_study.py")
    assert "vantage-point sweep" in out
    assert "alias-resolution sweep" in out
    assert "Geolocation error" in out


def test_export_paper_figures(tmp_path):
    out = _run("export_paper_figures.py", "--outdir", str(tmp_path / "figs"))
    assert "series files" in out
    assert "PLANTED vs RECOVERED" in out
    assert list((tmp_path / "figs").rglob("*.dat"))
