"""Tests for repro.population.raster."""

import numpy as np
import pytest

from repro.geo.regions import US, WORLD
from repro.population.raster import rasterize


class TestRasterize:
    def test_raster_conserves_region_population(self, world_small):
        raster = rasterize(world_small.field, US, cell_arcmin=75.0)
        direct = world_small.field.region_population(US)
        assert raster.total_population == pytest.approx(direct, rel=1e-9)

    def test_raster_conserves_online(self, world_small):
        raster = rasterize(world_small.field, US, cell_arcmin=75.0)
        direct = world_small.field.region_online(US)
        assert raster.total_online == pytest.approx(direct, rel=1e-9)

    def test_world_raster_covers_everything(self, world_small):
        raster = rasterize(world_small.field, WORLD, cell_arcmin=150.0)
        assert raster.total_population == pytest.approx(
            world_small.field.total_population, rel=1e-6
        )

    def test_occupied_cells_nonzero(self, world_small):
        raster = rasterize(world_small.field, US, cell_arcmin=75.0)
        occupied = raster.occupied_cells()
        assert occupied.size > 0
        assert np.all(raster.population[occupied] > 0)

    def test_occupied_centers_inside_region(self, world_small):
        raster = rasterize(world_small.field, US, cell_arcmin=75.0)
        lats, lons, pop = raster.occupied_centers()
        assert np.all(US.contains_mask(lats, lons))
        assert pop.sum() == pytest.approx(raster.total_population, rel=1e-9)

    def test_finer_grid_same_total(self, world_small):
        coarse = rasterize(world_small.field, US, cell_arcmin=150.0)
        fine = rasterize(world_small.field, US, cell_arcmin=30.0)
        assert coarse.total_population == pytest.approx(
            fine.total_population, rel=1e-9
        )
        assert fine.grid.n_cells > coarse.grid.n_cells
