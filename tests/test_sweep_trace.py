"""Tests for cross-process sweep tracing: heartbeats and trace stitching.

Workers append start/finish/fail heartbeats straight into the result
store (WAL mode makes the concurrent writes safe) and carry the
campaign's trace context in their payloads, so per-trial span trees
recorded by isolated processes stitch into a single campaign-rooted
tree — stable across crash recovery and ``sweep resume``.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepError
from repro.sweep import (
    ResultStore,
    SweepSpec,
    render_trace_tree,
    run_campaign,
    stitch_campaign_trace,
)
from repro.sweep.engine import campaign_parent_span_id
from repro.sweep.tracing import distinct_pids

SYNTH = {"duration_s": 0.01}
FAST = dict(trial_timeout_s=30.0, retry_backoff_s=0.01)


def synth_spec(name, seeds=(1, 2, 3), **kwargs):
    merged = {**FAST, **kwargs}
    return SweepSpec(name=name, seeds=tuple(seeds), synthetic=(SYNTH,), **merged)


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "trace.db")


class TestHeartbeats:
    def test_every_trial_heartbeats_start_and_finish(self, store):
        spec = synth_spec("hb", seeds=(1, 2, 3))
        run_campaign(spec, store, workers=2, start_method="fork")
        info = store.campaign_info("hb")
        events = store.events_since(info["id"])
        starts = [e for e in events if e["event"] == "start"]
        finishes = [e for e in events if e["event"] == "finish"]
        assert len(starts) == len(finishes) == 3
        assert {e["key"] for e in starts} == {e["key"] for e in finishes}
        assert all(e["pid"] > 0 for e in events)
        assert all(e["wall_s"] >= 0 for e in finishes)
        # pooled workers: heartbeats come from non-parent processes
        import os

        assert os.getpid() not in distinct_pids(starts)

    def test_failed_trial_heartbeats_fail_with_error(self, store):
        spec = synth_spec(
            "fails", seeds=(1,), inject={0: "raise"}, max_retries=0
        )
        run_campaign(spec, store, workers=0)
        events = store.events_since(store.campaign_info("fails")["id"])
        fails = [e for e in events if e["event"] == "fail"]
        assert len(fails) == 1
        assert "injected" in fails[0]["error"]

    def test_events_since_cursor_pages_without_overlap(self, store):
        spec = synth_spec("cursor", seeds=(1, 2, 3, 4))
        run_campaign(spec, store, workers=0)
        cid = store.campaign_info("cursor")["id"]
        seen: list[int] = []
        cursor = 0
        while True:
            page = store.events_since(cid, after_id=cursor, limit=3)
            if not page:
                break
            assert len(page) <= 3
            seen.extend(e["id"] for e in page)
            cursor = page[-1]["id"]
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)
        assert len(seen) == len(store.events_since(cid))

    def test_record_event_keeps_extra_fields(self, store):
        cid = store.ensure_campaign(synth_spec("manual", seeds=(1,)))
        store.record_event(
            cid, "k", "start", attempt=2, pid=99, fields={"note": "hi"}
        )
        (event,) = store.events_since(cid)
        assert event["attempt"] == 2
        assert event["pid"] == 99
        assert event["note"] == "hi"


class TestTraceIdentity:
    def test_trace_id_persists_and_parent_is_deterministic(self, store):
        spec = synth_spec("tid", seeds=(1,))
        run_campaign(spec, store, workers=0)
        trace_id = store.campaign_info("tid")["trace_id"]
        assert len(trace_id) == 32
        assert campaign_parent_span_id(trace_id) == trace_id[:16]
        # ensure_trace_id keeps the first-assigned identity
        assert store.ensure_trace_id(
            store.campaign_info("tid")["id"], "f" * 32
        ) == trace_id

    def test_unknown_campaign_raises(self, store):
        with pytest.raises(SweepError):
            store.campaign_info("nope")


class TestStitchedTrace:
    def test_single_tree_with_one_span_per_trial(self, store):
        spec = synth_spec("tree", seeds=(1, 2, 3))
        run_campaign(spec, store, workers=2, start_method="fork")
        tree = stitch_campaign_trace(store, "tree")
        assert tree["name"] == "campaign:tree"
        trace_id = store.campaign_info("tree")["trace_id"]
        assert tree["trace_id"] == trace_id
        assert tree["span_id"] == campaign_parent_span_id(trace_id)
        assert len(tree["children"]) == 3
        for child in tree["children"]:
            assert child["trace_id"] == trace_id
            assert child["parent_span_id"] == tree["span_id"]
            assert child["name"] == "sweep:trial"
        rendered = render_trace_tree(tree)
        assert "campaign:tree" in rendered
        assert rendered.count("sweep:trial") == 3

    def test_crash_and_resume_stitch_into_one_tree(self, store):
        """The acceptance scenario: crash mid-campaign, resume, one tree."""
        spec = synth_spec(
            "phoenix", seeds=(1, 2, 3, 4), inject={1: "crash_once"}
        )
        first = run_campaign(
            spec, store, workers=2, start_method="fork", stop_after=2
        )
        assert first.interrupted
        trace_id = store.campaign_info("phoenix")["trace_id"]

        resumed = run_campaign(
            store.load_spec("phoenix"), store, workers=2, start_method="fork"
        )
        assert not resumed.interrupted
        assert store.campaign_info("phoenix")["trace_id"] == trace_id

        tree = stitch_campaign_trace(store, "phoenix")
        assert tree["trace_id"] == trace_id
        assert len(tree["children"]) == 4  # every trial under ONE root
        assert all(
            child["parent_span_id"] == campaign_parent_span_id(trace_id)
            for child in tree["children"]
        )
        events = store.events_since(store.campaign_info("phoenix")["id"])
        starts = [e for e in events if e["event"] == "start"]
        finishes = [e for e in events if e["event"] == "finish"]
        # the crashed attempt left a start with no matching finish;
        # heartbeats are at-least-once per execution, so a trial cut off
        # by stop_after may finish again after resume — count keys.
        assert len(starts) > len(finishes)
        assert {e["key"] for e in finishes} == {
            trial.key for trial in spec.expand()
        }

    def test_inline_trials_stitch_too(self, store):
        spec = synth_spec("inline", seeds=(1, 2))
        run_campaign(spec, store, workers=0)
        tree = stitch_campaign_trace(store, "inline")
        assert len(tree["children"]) == 2
        assert tree["attributes"]["status"] == "done"
