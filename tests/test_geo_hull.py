"""Tests for repro.geo.hull (monotone chain + shoelace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.hull import convex_hull, convex_hull_area, polygon_area

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
point_sets = st.lists(st.tuples(coords, coords), min_size=0, max_size=60)


class TestConvexHull:
    def test_unit_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        hull = convex_hull(pts)
        assert hull.shape[0] == 4
        assert {tuple(v) for v in hull} == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_single_point(self):
        hull = convex_hull(np.array([[3.0, 4.0]]))
        assert hull.shape == (1, 2)

    def test_two_points(self):
        hull = convex_hull(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert hull.shape == (2, 2)

    def test_duplicates_collapse(self):
        hull = convex_hull(np.array([[1.0, 1.0]] * 5))
        assert hull.shape == (1, 2)

    def test_collinear_points_return_extremes(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        hull = convex_hull(pts)
        assert hull.shape == (2, 2)
        assert {tuple(v) for v in hull} == {(0.0, 0.0), (3.0, 3.0)}

    def test_empty_input(self):
        assert convex_hull(np.empty((0, 2))).shape == (0, 2)

    def test_bad_shape_raises(self):
        with pytest.raises(GeoError):
            convex_hull(np.zeros((3, 3)))

    def test_non_finite_raises(self):
        with pytest.raises(GeoError):
            convex_hull(np.array([[np.nan, 0.0]]))

    @settings(max_examples=60)
    @given(point_sets)
    def test_hull_contains_all_points(self, raw):
        pts = np.asarray(raw, dtype=float).reshape(-1, 2)
        hull = convex_hull(pts)
        if hull.shape[0] < 3:
            return
        # Every input point must be inside or on the hull: check via
        # cross products against each hull edge (hull is CCW).
        for p in pts:
            for i in range(hull.shape[0]):
                a = hull[i]
                b = hull[(i + 1) % hull.shape[0]]
                cross = (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
                assert cross >= -1e-6 * max(1.0, abs(cross))

    @settings(max_examples=60)
    @given(point_sets)
    def test_hull_vertices_are_input_points(self, raw):
        pts = np.asarray(raw, dtype=float).reshape(-1, 2)
        hull = convex_hull(pts)
        input_set = {tuple(p) for p in pts}
        for v in hull:
            assert tuple(v) in input_set


class TestPolygonArea:
    def test_unit_square_area(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(square) == pytest.approx(1.0)

    def test_triangle_area(self):
        tri = np.array([[0, 0], [4, 0], [0, 3]], dtype=float)
        assert polygon_area(tri) == pytest.approx(6.0)

    def test_orientation_invariance(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(square[::-1]) == pytest.approx(1.0)

    def test_degenerate_inputs_are_zero(self):
        assert polygon_area(np.empty((0, 2))) == 0.0
        assert polygon_area(np.array([[1.0, 1.0]])) == 0.0
        assert polygon_area(np.array([[0.0, 0.0], [1.0, 1.0]])) == 0.0


class TestConvexHullArea:
    def test_square_with_interior_points(self):
        rng = np.random.default_rng(5)
        interior = rng.uniform(0.1, 0.9, size=(50, 2))
        corners = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        pts = np.vstack([interior, corners])
        assert convex_hull_area(pts) == pytest.approx(1.0)

    def test_one_or_two_locations_have_zero_extent(self):
        # The paper: ~80% of ASes sit at one or two locations and "have
        # no extent at all".
        assert convex_hull_area(np.array([[5.0, 5.0]])) == 0.0
        assert convex_hull_area(np.array([[0.0, 0.0], [100.0, 100.0]])) == 0.0

    @settings(max_examples=60)
    @given(point_sets)
    def test_area_non_negative_and_bounded_by_bbox(self, raw):
        pts = np.asarray(raw, dtype=float).reshape(-1, 2)
        area = convex_hull_area(pts)
        assert area >= 0.0
        if pts.shape[0]:
            bbox = np.ptp(pts[:, 0]) * np.ptp(pts[:, 1])
            assert area <= bbox + 1e-6

    @settings(max_examples=40)
    @given(point_sets, coords, coords)
    def test_translation_invariance(self, raw, dx, dy):
        pts = np.asarray(raw, dtype=float).reshape(-1, 2)
        a1 = convex_hull_area(pts)
        a2 = convex_hull_area(pts + np.array([dx, dy]))
        assert a1 == pytest.approx(a2, rel=1e-6, abs=1e-6)
