"""Tests for repro.core.figures (series export + ASCII plots)."""

import numpy as np
import pytest

from repro.core import experiments
from repro.core.asgeo import hull_areas, size_distributions, as_size_measures
from repro.core.figures import (
    FigureData,
    Series,
    figure2_data,
    figure4_data,
    figure5_data,
    figure7_data,
    figure9_data,
)
from repro.errors import AnalysisError


class TestSeries:
    def test_parallel_arrays_enforced(self):
        with pytest.raises(AnalysisError):
            Series("bad", np.zeros(3), np.zeros(4))

    def test_add_drops_non_finite(self):
        fig = FigureData(title="t", xlabel="x", ylabel="y")
        fig.add("s", np.array([1.0, np.nan, 3.0]), np.array([1.0, 2.0, np.inf]))
        assert fig.series[0].x.tolist() == [1.0]


class TestRender:
    def _figure(self) -> FigureData:
        fig = FigureData(title="demo", xlabel="d", ylabel="f")
        x = np.linspace(0, 10, 40)
        fig.add("line", x, 2 * x)
        fig.add("curve", x, x**1.5)
        return fig

    def test_render_contains_title_and_legend(self):
        text = self._figure().render()
        assert "demo" in text
        assert "line" in text and "curve" in text

    def test_render_dimensions(self):
        text = self._figure().render(width=40, height=10)
        lines = text.splitlines()
        canvas_lines = [line for line in lines if line.strip().startswith("|")]
        assert len(canvas_lines) == 10

    def test_render_log_axes(self):
        fig = FigureData(title="log", xlabel="x", ylabel="y", logx=True, logy=True)
        fig.add("pl", np.logspace(0, 3, 20), np.logspace(0, 6, 20))
        text = fig.render()
        assert "log10(x)" in text

    def test_empty_figure_raises(self):
        fig = FigureData(title="empty", xlabel="x", ylabel="y")
        with pytest.raises(AnalysisError):
            fig.render()

    def test_constant_series_renders(self):
        fig = FigureData(title="const", xlabel="x", ylabel="y")
        fig.add("flat", np.arange(5.0), np.ones(5))
        assert "const" in fig.render()


class TestExport:
    def test_export_writes_dat_files(self, tmp_path):
        fig = FigureData(title="t", xlabel="x", ylabel="y")
        fig.add("series one", np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        paths = fig.export(tmp_path)
        assert len(paths) == 1
        content = paths[0].read_text()
        assert content.startswith("# t")
        assert "1\t3" in content

    def test_export_round_trips_through_numpy(self, tmp_path):
        fig = FigureData(title="t", xlabel="x", ylabel="y")
        x = np.linspace(0, 1, 17)
        fig.add("s", x, x**2)
        (path,) = fig.export(tmp_path)
        data = np.loadtxt(path)
        assert np.allclose(data[:, 0], x)
        assert np.allclose(data[:, 1], x**2)


class TestPaperFigureBuilders:
    def test_figure2_data(self, pipeline_small):
        panels = experiments.figure2(pipeline_small)
        figures = figure2_data(panels)
        assert len(figures) == len(panels)
        for fig in figures:
            assert len(fig.series) == 2  # scatter + fit
            assert fig.render()

    def test_figure4_and_5_data(self, pipeline_small):
        panels = experiments.figure4(pipeline_small)
        figures4 = figure4_data(panels)
        assert figures4 and all(f.render() for f in figures4)
        fits = experiments.figure5(panels)
        figures5 = figure5_data(panels, fits)
        assert figures5 and all(f.render() for f in figures5)

    def test_figure7_data(self, pipeline_small):
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        fig = figure7_data(size_distributions(table))
        assert len(fig.series) == 3
        assert "interfaces" in fig.render()

    def test_figure9_data(self, pipeline_small):
        hulls = hull_areas(pipeline_small.dataset("IxMapper", "Skitter"))
        figures = figure9_data({"World": hulls})
        assert len(figures) == 1
        assert "World" in figures[0].title

    def test_export_full_figure_set(self, pipeline_small, tmp_path):
        panels = experiments.figure2(pipeline_small)
        total = 0
        for fig in figure2_data(panels):
            total += len(fig.export(tmp_path))
        assert total == 2 * len(panels)
