"""Tests for repro.measure.mercator and repro.measure.alias."""

import numpy as np
import pytest

from repro.config import MercatorConfig
from repro.errors import MeasurementError
from repro.measure.alias import merge_members, resolve_aliases
from repro.measure.mercator import run_mercator


class TestResolveAliases:
    def test_full_success_collapses_to_loopbacks(self, toy_topology):
        addresses = {
            link.interface_a for link in toy_topology.links
        } | {link.interface_b for link in toy_topology.links}
        mapping = resolve_aliases(
            toy_topology, addresses, np.random.default_rng(0), 1.0
        )
        for address, canonical in mapping.items():
            router = toy_topology.interfaces[address].router_id
            assert canonical == toy_topology.routers[router].loopback

    def test_failure_leaves_interfaces_alone(self, toy_topology):
        addresses = {toy_topology.links[0].interface_a}
        mapping = resolve_aliases(
            toy_topology, addresses, np.random.default_rng(0), 1e-12
        )
        address = next(iter(addresses))
        assert mapping[address] == address

    def test_unknown_address_raises(self, toy_topology):
        with pytest.raises(MeasurementError):
            resolve_aliases(
                toy_topology, {424242}, np.random.default_rng(0), 1.0
            )

    def test_bad_rate_raises(self, toy_topology):
        with pytest.raises(MeasurementError):
            resolve_aliases(toy_topology, set(), np.random.default_rng(0), 0.0)

    def test_merge_members_inverts_mapping(self):
        mapping = {1: 100, 2: 100, 3: 3}
        members = merge_members(mapping)
        assert members[100] == [1, 2, 100]
        assert members[3] == [3]


class TestRunMercator:
    def _config(self, **overrides) -> MercatorConfig:
        base = dict(
            n_targets=5, n_source_routed=4, response_rate=1.0,
            alias_resolution_rate=1.0,
        )
        base.update(overrides)
        return MercatorConfig(**base)

    def test_router_level_nodes(self, toy_topology):
        inventory = run_mercator(
            toy_topology, self._config(), np.random.default_rng(0), source=0
        )
        inventory.validate()
        assert inventory.kind == "mercator"
        loopbacks = {r.loopback for r in toy_topology.routers}
        assert inventory.nodes <= loopbacks

    def test_alias_members_recorded(self, toy_topology):
        inventory = run_mercator(
            toy_topology, self._config(), np.random.default_rng(0), source=0
        )
        multi = [n for n in inventory.nodes if len(inventory.aliases[n]) > 1]
        assert multi  # middle routers have several observed interfaces

    def test_no_self_links_after_merging(self, toy_topology):
        inventory = run_mercator(
            toy_topology, self._config(), np.random.default_rng(0), source=0
        )
        for a, b in inventory.links:
            assert a != b

    def test_alias_failures_inflate_node_count(self, generated_small):
        topology, _, _ = generated_small
        merged = run_mercator(
            topology,
            self._config(n_targets=300, n_source_routed=100),
            np.random.default_rng(1),
        )
        unmerged = run_mercator(
            topology,
            self._config(
                n_targets=300, n_source_routed=100,
                alias_resolution_rate=0.05,
            ),
            np.random.default_rng(1),
        )
        assert unmerged.n_nodes > merged.n_nodes

    def test_source_routing_discovers_lateral_links(self, generated_small):
        topology, _, _ = generated_small
        no_lateral = run_mercator(
            topology,
            self._config(n_targets=300, n_source_routed=0),
            np.random.default_rng(2),
            source=0,
        )
        lateral = run_mercator(
            topology,
            self._config(n_targets=300, n_source_routed=400),
            np.random.default_rng(2),
            source=0,
        )
        assert lateral.n_links > no_lateral.n_links

    def test_links_are_real_adjacencies(self, generated_small):
        topology, _, _ = generated_small
        inventory = run_mercator(
            topology,
            self._config(n_targets=200, n_source_routed=100),
            np.random.default_rng(3),
        )
        by_loopback = {r.loopback: r.router_id for r in topology.routers}
        for a, b in list(inventory.links)[:200]:
            ra = by_loopback.get(a, None)
            rb = by_loopback.get(b, None)
            if ra is None:
                ra = topology.interfaces[a].router_id
            if rb is None:
                rb = topology.interfaces[b].router_id
            assert topology.has_link(ra, rb)

    def test_tiny_topology_rejected(self):
        from repro.net.topology import Topology

        with pytest.raises(Exception):
            run_mercator(
                Topology(), self._config(), np.random.default_rng(0)
            )
