"""Shared fixtures.

Expensive artefacts (the small end-to-end pipeline, a generated
topology) are session-scoped; cheap ones (RNGs, toy topologies) are
function-scoped so tests stay independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GroundTruthConfig, ScenarioConfig, small_scenario
from repro.datasets.pipeline import PipelineResult, run_pipeline
from repro.geo.coords import GeoPoint
from repro.net.elements import AutonomousSystem
from repro.net.generate import generate_ground_truth
from repro.net.topology import Topology
from repro.population.worldmodel import World, build_world


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def world_small() -> World:
    """A small synthetic world (shared; treat as read-only)."""
    return build_world(np.random.default_rng(77), city_scale=0.2)


@pytest.fixture(scope="session")
def generated_small(world_small: World):
    """A small generated ground truth: (topology, plan, report)."""
    config = GroundTruthConfig(
        total_routers=800, n_ases=60, tier1_count=4, tier2_count=12
    )
    return generate_ground_truth(
        world_small, config, np.random.default_rng(99)
    )


@pytest.fixture(scope="session")
def pipeline_small() -> PipelineResult:
    """The full small-scenario pipeline (shared; treat as read-only)."""
    return run_pipeline(small_scenario())


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    """The scenario behind :func:`pipeline_small`."""
    return small_scenario()


def build_toy_topology() -> Topology:
    """A deterministic 6-router, 2-AS topology for exact-value tests.

    Layout (AS 100 on the west coast, AS 200 on the east coast)::

        r0 -- r1 -- r2   (AS 100, San Francisco area)
                     |
        r3 -- r4 -- r5   (AS 200, New York area; r2--r3 interdomain)

    Interface addresses are hand-assigned: loopback of router i is
    ``1000 + i``; link k uses addresses ``2000 + 2k`` and ``2001 + 2k``.
    """
    topo = Topology()
    topo.add_as(
        AutonomousSystem(
            asn=100, name="westnet", headquarters=GeoPoint(37.77, -122.42)
        )
    )
    topo.add_as(
        AutonomousSystem(
            asn=200, name="eastnet", headquarters=GeoPoint(40.71, -74.01)
        )
    )
    west = [
        GeoPoint(37.77, -122.42),
        GeoPoint(37.80, -122.27),
        GeoPoint(38.58, -121.49),
    ]
    east = [
        GeoPoint(40.71, -74.01),
        GeoPoint(39.95, -75.17),
        GeoPoint(38.90, -77.04),
    ]
    for i, point in enumerate(west):
        topo.add_router(asn=100, location=point, city_code="SFO", loopback=1000 + i)
    for i, point in enumerate(east):
        topo.add_router(
            asn=200, location=point, city_code="NYC", loopback=1003 + i
        )
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
    for k, (a, b) in enumerate(pairs):
        topo.add_link(a, b, 2000 + 2 * k, 2001 + 2 * k)
    for address in list(topo.interfaces):
        topo.set_hostname(address, f"0.so-1-0-0.CR1.XXX{address % 7}.example.net")
    return topo


@pytest.fixture
def toy_topology() -> Topology:
    """Fresh deterministic toy topology per test."""
    return build_toy_topology()
