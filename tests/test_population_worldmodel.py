"""Tests for repro.population.worldmodel (zones, world synthesis)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.geo.regions import Region, USA_ECON, WESTERN_EUROPE
from repro.population.worldmodel import (
    EconomicZone,
    World,
    build_world,
    default_zones,
)


def _zone(**overrides) -> EconomicZone:
    base = dict(
        name="Testland",
        box=Region("Testland box", north=10.0, south=0.0, west=0.0, east=10.0),
        population_millions=100.0,
        online_millions=50.0,
        n_synthetic_cities=5,
    )
    base.update(overrides)
    return EconomicZone(**base)


class TestEconomicZone:
    def test_penetration(self):
        assert _zone().penetration == pytest.approx(0.5)

    def test_zero_population_rejected(self):
        with pytest.raises(ConfigError):
            _zone(population_millions=0.0)

    def test_online_exceeding_population_rejected(self):
        with pytest.raises(ConfigError):
            _zone(online_millions=101.0)

    def test_bad_urban_fraction_rejected(self):
        with pytest.raises(ConfigError):
            _zone(urban_fraction=1.0)

    def test_bad_interface_rate_rejected(self):
        with pytest.raises(ConfigError):
            _zone(interfaces_per_online=0.0)


class TestDefaultZones:
    def test_seven_zones_matching_table3(self):
        zones = default_zones()
        names = [z.name for z in zones]
        assert names == [
            "Africa", "South America", "Mexico", "W. Europe", "Japan",
            "Australia", "USA",
        ]

    def test_paper_population_totals(self):
        by_name = {z.name: z for z in default_zones()}
        # Table III population column, in millions.
        assert by_name["Africa"].population_millions == 837.0
        assert by_name["USA"].population_millions == 299.0
        assert by_name["Japan"].population_millions == 136.0

    def test_paper_online_totals(self):
        by_name = {z.name: z for z in default_zones()}
        assert by_name["USA"].online_millions == 166.0
        assert by_name["Africa"].online_millions == 4.15

    def test_penetration_contrast(self):
        by_name = {z.name: z for z in default_zones()}
        assert by_name["USA"].penetration > 50 * by_name["Africa"].penetration

    def test_city_scale_reduces_counts(self):
        full = default_zones(city_scale=1.0)
        small = default_zones(city_scale=0.1)
        assert all(
            s.n_synthetic_cities <= f.n_synthetic_cities
            for s, f in zip(small, full)
        )


class TestBuildWorld:
    @pytest.fixture(scope="class")
    def world(self) -> World:
        return build_world(np.random.default_rng(5), city_scale=0.2)

    def test_total_population_matches_zone_sum(self, world):
        expected = sum(z.population_millions for z in world.zones) * 1e6
        assert world.field.total_population == pytest.approx(expected, rel=1e-6)

    def test_total_online_matches_zone_sum(self, world):
        expected = sum(z.online_millions for z in world.zones) * 1e6
        assert world.field.total_online == pytest.approx(expected, rel=1e-6)

    def test_online_never_exceeds_population_pointwise(self, world):
        assert np.all(
            world.field.online_weights <= world.field.weights + 1e-9
        )

    def test_field_arrays_parallel(self, world):
        n = world.field.lats.shape[0]
        assert world.field.lons.shape == (n,)
        assert world.field.weights.shape == (n,)
        assert world.field.zone_index.shape == (n,)

    def test_us_region_population_is_large(self, world):
        pop = world.field.region_population(USA_ECON)
        assert pop > 250e6

    def test_europe_online_fraction_high(self, world):
        pop = world.field.region_population(WESTERN_EUROPE)
        online = world.field.region_online(WESTERN_EUROPE)
        assert 0.2 < online / pop < 0.6

    def test_cities_have_unique_codes(self, world):
        codes = [c.code for c in world.cities]
        assert len(codes) == len(set(codes))

    def test_zone_lookup(self, world):
        assert world.zone_by_name("USA").name == "USA"
        with pytest.raises(ConfigError):
            world.zone_by_name("Mars")

    def test_cities_in_zone(self, world):
        usa_cities = world.cities_in_zone("USA")
        assert usa_cities
        assert all(c.zone == "USA" for c in usa_cities)

    def test_deterministic_given_seed(self):
        w1 = build_world(np.random.default_rng(42), city_scale=0.1)
        w2 = build_world(np.random.default_rng(42), city_scale=0.1)
        assert np.array_equal(w1.field.lats, w2.field.lats)
        assert np.array_equal(w1.field.weights, w2.field.weights)
