"""Tests for repro.geo.projection (Albers equal-area, equirectangular)."""

import numpy as np
import pytest

from repro.errors import ProjectionError
from repro.geo.coords import EARTH_RADIUS_MILES
from repro.geo.hull import convex_hull_area
from repro.geo.projection import (
    WORLD_ALBERS,
    AlbersEqualArea,
    equirectangular_miles,
)


class TestAlbersBasics:
    def test_origin_projects_to_origin(self):
        proj = AlbersEqualArea(origin_lat=0.0, origin_lon=0.0)
        x, y = proj.project(0.0, 0.0)
        assert float(x) == pytest.approx(0.0, abs=1e-6)
        assert float(y) == pytest.approx(0.0, abs=1e-6)

    def test_east_is_positive_x(self):
        x, _ = WORLD_ALBERS.project(0.0, 10.0)
        assert float(x) > 0

    def test_north_is_positive_y(self):
        _, y0 = WORLD_ALBERS.project(0.0, 0.0)
        _, y1 = WORLD_ALBERS.project(30.0, 0.0)
        assert float(y1) > float(y0)

    def test_symmetric_parallels_rejected(self):
        proj = AlbersEqualArea(std_parallel_1=-30.0, std_parallel_2=30.0)
        with pytest.raises(ProjectionError):
            proj.project(0.0, 0.0)

    def test_invalid_latitude_rejected(self):
        with pytest.raises(ProjectionError):
            WORLD_ALBERS.project(np.array([95.0]), np.array([0.0]))

    def test_date_line_unfolding(self):
        # Longitudes straddling the date line map to opposite x signs,
        # i.e. the globe is cut there (as the paper describes).
        x_west, _ = WORLD_ALBERS.project(0.0, 179.0)
        x_east, _ = WORLD_ALBERS.project(0.0, -179.0)
        assert float(x_west) > 0 > float(x_east)


class TestAlbersAreaPreservation:
    def _cell_area(self, lat: float, lon: float, d: float = 1.0) -> float:
        """Projected area of a small d x d degree cell at (lat, lon)."""
        lats = np.array([lat, lat, lat + d, lat + d])
        lons = np.array([lon, lon + d, lon + d, lon])
        x, y = WORLD_ALBERS.project(lats, lons)
        return convex_hull_area(np.column_stack([x, y]))

    def _true_cell_area(self, lat: float, d: float = 1.0) -> float:
        """Spherical area of a d x d degree cell starting at lat."""
        lat1 = np.radians(lat)
        lat2 = np.radians(lat + d)
        dlon = np.radians(d)
        return EARTH_RADIUS_MILES**2 * dlon * (np.sin(lat2) - np.sin(lat1))

    @pytest.mark.parametrize("lat", [-40.0, 0.0, 20.0, 35.0, 50.0, 65.0])
    def test_area_matches_spherical_truth(self, lat):
        projected = self._cell_area(lat, 10.0)
        truth = self._true_cell_area(lat)
        assert projected == pytest.approx(truth, rel=0.02)

    def test_equal_areas_at_different_longitudes(self):
        a1 = self._cell_area(30.0, 0.0)
        a2 = self._cell_area(30.0, 120.0)
        assert a1 == pytest.approx(a2, rel=1e-6)


class TestEquirectangular:
    def test_empty_input(self):
        x, y = equirectangular_miles(np.empty(0), np.empty(0))
        assert x.shape == (0,)

    def test_one_degree_latitude_is_about_69_miles(self):
        x, y = equirectangular_miles(np.array([0.0, 1.0]), np.array([0.0, 0.0]),
                                     ref_lat=0.0)
        assert (y[1] - y[0]) == pytest.approx(69.1, rel=0.01)

    def test_longitude_scaled_by_cos_latitude(self):
        x, _ = equirectangular_miles(
            np.array([60.0, 60.0]), np.array([0.0, 1.0]), ref_lat=60.0
        )
        assert (x[1] - x[0]) == pytest.approx(69.1 * 0.5, rel=0.01)

    def test_default_reference_latitude_is_mean(self):
        lats = np.array([10.0, 30.0])
        lons = np.array([0.0, 1.0])
        x_auto, _ = equirectangular_miles(lats, lons)
        x_explicit, _ = equirectangular_miles(lats, lons, ref_lat=20.0)
        assert np.allclose(x_auto, x_explicit)
