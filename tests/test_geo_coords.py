"""Tests for repro.geo.coords."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.coords import (
    GeoPoint,
    arrays_to_points,
    normalize_longitude,
    points_to_arrays,
    validate_latitude,
    validate_longitude,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


class TestValidation:
    def test_valid_latitude_passes_through(self):
        assert validate_latitude(45.5) == 45.5

    def test_boundary_latitudes_accepted(self):
        assert validate_latitude(90.0) == 90.0
        assert validate_latitude(-90.0) == -90.0

    def test_latitude_out_of_range_raises(self):
        with pytest.raises(GeoError):
            validate_latitude(90.1)
        with pytest.raises(GeoError):
            validate_latitude(-90.0001)

    def test_latitude_nan_raises(self):
        with pytest.raises(GeoError):
            validate_latitude(float("nan"))

    def test_latitude_inf_raises(self):
        with pytest.raises(GeoError):
            validate_latitude(float("inf"))

    def test_longitude_out_of_range_raises(self):
        with pytest.raises(GeoError):
            validate_longitude(180.5)
        with pytest.raises(GeoError):
            validate_longitude(-181.0)

    def test_longitude_nan_raises(self):
        with pytest.raises(GeoError):
            validate_longitude(float("nan"))


class TestNormalizeLongitude:
    def test_identity_in_range(self):
        assert normalize_longitude(10.0) == pytest.approx(10.0)

    def test_wraps_positive_overflow(self):
        assert normalize_longitude(190.0) == pytest.approx(-170.0)

    def test_wraps_negative_overflow(self):
        assert normalize_longitude(-190.0) == pytest.approx(170.0)

    def test_wraps_multiple_revolutions(self):
        assert normalize_longitude(370.0 + 720.0) == pytest.approx(10.0)

    def test_non_finite_raises(self):
        with pytest.raises(GeoError):
            normalize_longitude(float("inf"))

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_always_lands_in_range(self, lon):
        wrapped = normalize_longitude(lon)
        assert -180.0 <= wrapped < 180.0

    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_wrap_preserves_angle_mod_360(self, lon):
        wrapped = normalize_longitude(lon)
        assert math.isclose(
            math.cos(math.radians(wrapped)), math.cos(math.radians(lon)),
            abs_tol=1e-6,
        )


class TestGeoPoint:
    def test_construction_stores_coordinates(self):
        p = GeoPoint(40.7, -74.0)
        assert p.lat == 40.7
        assert p.lon == -74.0

    def test_invalid_latitude_rejected(self):
        with pytest.raises(GeoError):
            GeoPoint(91.0, 0.0)

    def test_invalid_longitude_rejected(self):
        with pytest.raises(GeoError):
            GeoPoint(0.0, 181.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_rounded_groups_nearby_points(self):
        a = GeoPoint(40.7128, -74.0060).rounded(1)
        b = GeoPoint(40.7306, -73.9866).rounded(1)
        assert a == GeoPoint(40.7, -74.0)
        assert b == GeoPoint(40.7, -74.0)

    def test_rounded_separates_distant_points(self):
        a = GeoPoint(40.7, -74.0).rounded(1)
        b = GeoPoint(41.9, -87.6).rounded(1)
        assert a != b

    def test_as_tuple(self):
        assert GeoPoint(5.0, 6.0).as_tuple() == (5.0, 6.0)

    @given(latitudes, longitudes)
    def test_any_valid_pair_constructs(self, lat, lon):
        p = GeoPoint(lat, lon)
        assert p.lat == lat and p.lon == lon


class TestArrayConversion:
    def test_round_trip(self):
        points = [GeoPoint(10.0, 20.0), GeoPoint(-5.0, 30.0)]
        lats, lons = points_to_arrays(points)
        assert arrays_to_points(lats, lons) == points

    def test_empty_list_gives_empty_arrays(self):
        lats, lons = points_to_arrays([])
        assert lats.shape == (0,) and lons.shape == (0,)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(GeoError):
            arrays_to_points(np.zeros(3), np.zeros(2))

    def test_invalid_values_raise(self):
        with pytest.raises(GeoError):
            arrays_to_points(np.array([95.0]), np.array([0.0]))
