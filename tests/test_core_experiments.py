"""Tests for repro.core.experiments (per-table/figure runners)."""

import numpy as np

from repro.core import experiments, report


class TestTable1:
    def test_four_rows(self, pipeline_small):
        rows = experiments.table1(pipeline_small)
        assert len(rows) == 4
        labels = [r.label for r in rows]
        assert labels == [
            "IxMapper, Mercator",
            "IxMapper, Skitter",
            "EdgeScape, Mercator",
            "EdgeScape, Skitter",
        ]

    def test_sizes_positive(self, pipeline_small):
        for row in experiments.table1(pipeline_small):
            assert row.n_nodes > 0
            assert row.n_links > 0
            assert 0 < row.n_locations <= row.n_nodes


class TestTables3And4:
    def test_table3_contrast(self, pipeline_small):
        result = experiments.table3(pipeline_small)
        assert result.people_variation > result.online_variation
        assert any(r.region == "World" for r in result.rows)

    def test_table4_rows(self, pipeline_small):
        rows = experiments.table4(pipeline_small)
        assert {r.region for r in rows} == {
            "Northern US", "Southern US", "Central Am.",
        }


class TestTable5And6:
    def test_table5_rows_have_positive_limits(self, pipeline_small):
        rows = experiments.table5(pipeline_small)
        assert rows
        for row in rows:
            assert row.limit.limit_miles > 0
            assert 0.0 <= row.limit.fraction_below <= 1.0

    def test_table6_world_first(self, pipeline_small):
        rows = experiments.table6(pipeline_small)
        assert rows[0].region == "World"
        assert rows[0].intradomain_fraction > 0.5


class TestFigures:
    def test_figure1_series(self, pipeline_small):
        series = experiments.figure1(pipeline_small)
        assert set(series) == {"US", "Europe", "Japan"}
        for lats, lons in series.values():
            assert lats.shape == lons.shape

    def test_figure2_superlinear_panels(self, pipeline_small):
        panels = experiments.figure2(pipeline_small)
        assert panels
        slopes = [p.fit.slope for p in panels.values()]
        assert np.mean(slopes) > 1.0

    def test_figure4_to_6_chain(self, pipeline_small):
        panels = experiments.figure4(pipeline_small)
        assert panels
        fits = experiments.figure5(panels)
        for fit in fits.values():
            assert fit.fit.slope < 0
        curves = experiments.figure6(panels)
        for curve in curves.values():
            assert np.all(np.diff(curve.big_f) >= -1e-12)

    def test_figures7_to_10_bundle(self, pipeline_small):
        bundle = experiments.figures7_to_10(pipeline_small)
        assert bundle.table.n_ases > 10
        assert bundle.hulls_world.areas.shape == (bundle.table.n_ases,)
        assert set(bundle.dispersal) == {"nodes", "locations", "degree"}

    def test_edgescape_variants_run(self, pipeline_small):
        # Appendix figures: same runners with mapper="EdgeScape".
        panels = experiments.figure2(pipeline_small, mapper="EdgeScape")
        assert panels
        bundle = experiments.figures7_to_10(pipeline_small, mapper="EdgeScape")
        assert bundle.table.n_ases > 10


class TestX1AndX2:
    def test_fractal_result(self, pipeline_small):
        result = experiments.experiment_x1(pipeline_small)
        assert 0.2 < result.routers.dimension < 2.0
        assert 0.2 < result.population.dimension < 2.0

    def test_dataset_from_graph(self, world_small):
        from repro.generators.geogen import GeoGenConfig, geogen_graph

        annotated = geogen_graph(
            world_small, GeoGenConfig(n_nodes=300, n_ases=15),
            np.random.default_rng(0),
        )
        ds = experiments.dataset_from_graph(annotated.graph)
        assert ds.n_nodes == 300
        assert ds.n_links == annotated.graph.n_edges

    def test_compare_generator_geogen_decays(self, world_small):
        from repro.generators.geogen import GeoGenConfig, geogen_graph
        from repro.geo.regions import WORLD

        annotated = geogen_graph(
            world_small,
            GeoGenConfig(n_nodes=800, n_ases=30, waxman_l_miles=120.0),
            np.random.default_rng(1),
        )
        comparison = experiments.compare_generator(
            annotated.graph, region=WORLD, bin_miles=50.0
        )
        assert comparison.decay_slope < 0

    def test_compare_generator_er_flat(self):
        from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree
        from repro.geo.regions import US

        graph = erdos_renyi_for_mean_degree(
            600, 4.0, np.random.default_rng(2),
            south=26.0, north=49.0, west=-124.0, east=-66.0,
        )
        comparison = experiments.compare_generator(graph, region=US,
                                                   bin_miles=35.0)
        # Geometry-blind: decay slope near zero (much shallower than any
        # genuine Waxman decay scale of ~100 miles => slope ~ -0.01).
        assert np.isnan(comparison.decay_slope) or abs(
            comparison.decay_slope
        ) < 0.004


class TestRendering:
    def test_all_renderers_produce_text(self, pipeline_small):
        out = []
        out.append(report.render_table1(experiments.table1(pipeline_small)))
        out.append(report.render_table3(experiments.table3(pipeline_small)))
        out.append(report.render_table4(experiments.table4(pipeline_small)))
        out.append(report.render_table5(experiments.table5(pipeline_small)))
        out.append(report.render_table6(experiments.table6(pipeline_small)))
        panels = experiments.figure4(pipeline_small)
        out.append(report.render_figure2(experiments.figure2(pipeline_small)))
        out.append(report.render_figure4(panels))
        out.append(report.render_figure5(experiments.figure5(panels)))
        out.append(report.render_figure6(experiments.figure6(panels)))
        out.append(
            report.render_as_geography(experiments.figures7_to_10(pipeline_small))
        )
        out.append(report.render_fractal(experiments.experiment_x1(pipeline_small)))
        for text in out:
            assert isinstance(text, str)
            assert len(text.splitlines()) >= 2

    def test_table_headers_match_paper_vocabulary(self, pipeline_small):
        text = report.render_table5(experiments.table5(pipeline_small))
        assert "LIMITS OF DISTANCE SENSITIVITY" in text
        text = report.render_table6(experiments.table6(pipeline_small))
        assert "INTRADOMAIN" in text and "INTERDOMAIN" in text
