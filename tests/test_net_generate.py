"""Tests for repro.net.generate (the planted ground truth)."""

import numpy as np
import pytest

from repro.config import GroundTruthConfig
from repro.errors import ConfigError
from repro.net.generate import generate_ground_truth
from repro.net.ip import is_private


class TestConfigValidation:
    def test_too_few_routers_rejected(self):
        with pytest.raises(ConfigError):
            GroundTruthConfig(total_routers=5)

    def test_too_many_ases_rejected(self):
        with pytest.raises(ConfigError):
            GroundTruthConfig(total_routers=100, n_ases=200)

    def test_tier_counts_must_fit(self):
        with pytest.raises(ConfigError):
            GroundTruthConfig(n_ases=50, tier1_count=30, tier2_count=30)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            GroundTruthConfig(long_range_fraction=1.5)


class TestGeneratedTopology:
    def test_router_count_close_to_target(self, generated_small):
        topology, _, report = generated_small
        assert abs(topology.n_routers - 800) / 800 < 0.15

    def test_topology_validates(self, generated_small):
        topology, _, _ = generated_small
        topology.validate()  # raises on inconsistency

    def test_all_ases_have_routers(self, generated_small):
        topology, _, report = generated_small
        assert set(report.as_sizes) == set(topology.asns)
        assert all(size >= 1 for size in report.as_sizes.values())

    def test_as_sizes_long_tailed(self, generated_small):
        _, _, report = generated_small
        sizes = np.array(sorted(report.as_sizes.values(), reverse=True))
        assert sizes[0] >= 10 * sizes[len(sizes) // 2]

    def test_no_isolated_routers(self, generated_small):
        topology, _, _ = generated_small
        for router in topology.routers:
            assert topology.degree(router.router_id) > 0

    def test_interdomain_fraction_in_band(self, generated_small):
        _, _, report = generated_small
        assert 0.05 <= report.interdomain_fraction <= 0.35

    def test_mean_degree_near_target(self, generated_small):
        topology, _, _ = generated_small
        mean_degree = 2.0 * topology.n_links / topology.n_routers
        assert 2.0 <= mean_degree <= 4.5

    def test_each_as_internally_connected(self, generated_small):
        topology, _, _ = generated_small
        by_asn: dict[int, list[int]] = {}
        for router in topology.routers:
            by_asn.setdefault(router.asn, []).append(router.router_id)
        for asn, members in by_asn.items():
            member_set = set(members)
            seen = {members[0]}
            stack = [members[0]]
            while stack:
                current = stack.pop()
                for neighbor in topology.neighbors(current):
                    if neighbor in member_set and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            assert seen == member_set, f"AS {asn} is internally disconnected"

    def test_whole_graph_one_component(self, generated_small):
        topology, _, _ = generated_small
        from repro.routing.shortest_path import largest_component

        component = largest_component(topology.routing_graph())
        assert component.size == topology.n_routers

    def test_hostnames_assigned_to_every_interface(self, generated_small):
        topology, _, _ = generated_small
        assert set(topology.hostnames) == set(topology.interfaces)

    def test_some_private_interfaces_planted(self, generated_small):
        topology, _, _ = generated_small
        private = [a for a in topology.interfaces if is_private(a)]
        # ~0.5% of interfaces; should exist but stay rare.
        assert 0 < len(private) < 0.03 * topology.n_interfaces

    def test_interface_addresses_unique(self, generated_small):
        topology, _, _ = generated_small
        addresses = list(topology.interfaces)
        assert len(addresses) == len(set(addresses))

    def test_addresses_belong_to_owner_as_blocks(self, generated_small):
        topology, plan, _ = generated_small
        checked = 0
        for address, iface in topology.interfaces.items():
            if is_private(address):
                continue
            asn = topology.routers[iface.router_id].asn
            assert any(p.contains(address) for p in plan.prefixes_of(asn))
            checked += 1
            if checked > 500:
                break

    def test_report_matches_topology(self, generated_small):
        topology, _, report = generated_small
        assert report.n_routers == topology.n_routers
        assert report.n_links == topology.n_links
        assert report.n_interfaces == topology.n_interfaces

    def test_intradomain_links_shorter_on_average(self, generated_small):
        topology, _, _ = generated_small
        lengths = topology.link_lengths()
        inter = np.array([link.interdomain for link in topology.links])
        assert lengths[~inter].mean() < lengths[inter].mean()

    def test_city_routers_carry_city_codes(self, generated_small):
        topology, _, _ = generated_small
        with_code = sum(1 for r in topology.routers if r.city_code)
        assert with_code > 0.8 * topology.n_routers

    def test_deterministic_given_seed(self, world_small):
        config = GroundTruthConfig(
            total_routers=200, n_ases=20, tier1_count=2, tier2_count=4
        )
        t1, _, _ = generate_ground_truth(
            world_small, config, np.random.default_rng(3)
        )
        t2, _, _ = generate_ground_truth(
            world_small, config, np.random.default_rng(3)
        )
        assert t1.n_routers == t2.n_routers
        assert t1.n_links == t2.n_links
        assert [r.location for r in t1.routers] == [r.location for r in t2.routers]
