"""Tests for repro.bgp.table and repro.bgp.routeviews."""

import numpy as np
import pytest

from repro.bgp.routeviews import (
    build_routeviews_snapshot,
    perfect_snapshot,
    snapshot_from_topology,
)
from repro.bgp.table import UNMAPPED_ASN, BgpTable, RibEntry
from repro.config import BgpConfig
from repro.errors import AddressError
from repro.net.addressing import AddressPlan
from repro.net.ip import Prefix, parse_address


class TestRibEntry:
    def test_valid(self):
        entry = RibEntry(Prefix.parse("16.0.0.0/16"), 100)
        assert entry.origin_asn == 100

    def test_rejects_non_positive_asn(self):
        with pytest.raises(AddressError):
            RibEntry(Prefix.parse("16.0.0.0/16"), 0)


class TestBgpTable:
    def test_origin_lookup(self):
        table = BgpTable([RibEntry(Prefix.parse("16.0.0.0/16"), 7)])
        assert table.origin_of(parse_address("16.0.1.2")) == 7

    def test_unmapped_sentinel(self):
        table = BgpTable([RibEntry(Prefix.parse("16.0.0.0/16"), 7)])
        assert table.origin_of(parse_address("17.0.0.1")) == UNMAPPED_ASN

    def test_longest_prefix_wins(self):
        table = BgpTable(
            [
                RibEntry(Prefix.parse("16.0.0.0/8"), 1),
                RibEntry(Prefix.parse("16.32.0.0/11"), 2),
            ]
        )
        assert table.origin_of(parse_address("16.33.0.1")) == 2
        assert table.origin_of(parse_address("16.128.0.1")) == 1

    def test_matching_prefix(self):
        table = BgpTable([RibEntry(Prefix.parse("16.0.0.0/8"), 1)])
        assert str(table.matching_prefix(parse_address("16.1.1.1"))) == "16.0.0.0/8"
        assert table.matching_prefix(parse_address("99.0.0.1")) is None

    def test_map_addresses_bulk(self):
        table = BgpTable([RibEntry(Prefix.parse("16.0.0.0/8"), 5)])
        out = table.map_addresses(
            [parse_address("16.0.0.1"), parse_address("20.0.0.1")]
        )
        assert out[parse_address("16.0.0.1")] == 5
        assert out[parse_address("20.0.0.1")] == UNMAPPED_ASN

    def test_len_counts_prefixes(self):
        table = BgpTable(
            [
                RibEntry(Prefix.parse("16.0.0.0/16"), 1),
                RibEntry(Prefix.parse("16.1.0.0/16"), 2),
            ]
        )
        assert len(table) == 2


class TestRouteViewsSnapshots:
    def _plan(self) -> AddressPlan:
        plan = AddressPlan()
        for asn in range(100, 140):
            plan.allocate(asn)
        return plan

    def test_perfect_snapshot_covers_all_allocations(self):
        plan = self._plan()
        table = perfect_snapshot(plan)
        for prefix, asn in plan.prefix_origin_pairs():
            assert table.origin_of(prefix.base + 1) == asn

    def test_unannounced_fraction_roughly_respected(self):
        plan = self._plan()
        config = BgpConfig(unannounced_rate=0.5, deaggregation_rate=0.0)
        table = build_routeviews_snapshot(plan, config, np.random.default_rng(0))
        unmapped = sum(
            1
            for prefix, _ in plan.prefix_origin_pairs()
            if table.origin_of(prefix.base + 1) == UNMAPPED_ASN
        )
        assert 8 <= unmapped <= 32  # 40 prefixes at 50%

    def test_zero_distortion_equals_perfect(self):
        plan = self._plan()
        config = BgpConfig(unannounced_rate=0.0, deaggregation_rate=0.0)
        table = build_routeviews_snapshot(plan, config, np.random.default_rng(0))
        perfect = perfect_snapshot(plan)
        for prefix, _ in plan.prefix_origin_pairs():
            probe = prefix.base + 3
            assert table.origin_of(probe) == perfect.origin_of(probe)

    def test_deaggregation_preserves_origin(self):
        plan = self._plan()
        config = BgpConfig(unannounced_rate=0.0, deaggregation_rate=1.0)
        table = build_routeviews_snapshot(plan, config, np.random.default_rng(0))
        for prefix, asn in plan.prefix_origin_pairs():
            assert table.origin_of(prefix.base + 1) == asn
            assert table.origin_of(prefix.last - 1) == asn
        # Announced prefixes are the more-specific halves.
        assert all(e.prefix.length == 17 for e in table.entries)

    def test_snapshot_from_topology_maps_interfaces(self, generated_small):
        topology, _, _ = generated_small
        config = BgpConfig(unannounced_rate=0.0, deaggregation_rate=0.0)
        table = snapshot_from_topology(
            topology, config, np.random.default_rng(0)
        )
        from repro.net.ip import is_private

        hits = 0
        for address, iface in list(topology.interfaces.items())[:300]:
            if is_private(address):
                continue
            assert (
                table.origin_of(address)
                == topology.routers[iface.router_id].asn
            )
            hits += 1
        assert hits > 100

    def test_snapshot_from_topology_excludes_private(self, generated_small):
        topology, _, _ = generated_small
        config = BgpConfig(unannounced_rate=0.0, deaggregation_rate=0.0)
        table = snapshot_from_topology(
            topology, config, np.random.default_rng(0)
        )
        assert table.origin_of(parse_address("10.0.0.5")) == UNMAPPED_ASN
