"""Tests for repro.net.hostnames (ISP naming conventions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeolocationError
from repro.net.hostnames import extract_city_code, make_hostname

codes = st.from_regex(r"[A-Z]{3}", fullmatch=True)
router_ids = st.integers(min_value=0, max_value=10_000)


class TestMakeHostname:
    def test_embedded_code_round_trips(self):
        rng = np.random.default_rng(0)
        hostname = make_hostname(7, "NYC", "alter.net", rng, embed_location=True)
        assert extract_city_code(hostname) == "NYC"

    def test_without_embedding_no_code(self):
        rng = np.random.default_rng(0)
        hostname = make_hostname(7, "NYC", "alter.net", rng, embed_location=False)
        assert extract_city_code(hostname) is None

    def test_empty_city_code_means_no_location(self):
        rng = np.random.default_rng(0)
        hostname = make_hostname(7, "", "alter.net", rng, embed_location=True)
        assert extract_city_code(hostname) is None

    def test_hostname_ends_with_domain(self):
        rng = np.random.default_rng(0)
        hostname = make_hostname(3, "LAX", "example.net", rng, embed_location=True)
        assert hostname.endswith(".example.net")

    def test_paper_example_shape(self):
        # The paper's example: 0.so-5-2-0.XL1.NYC8.ALTER.NET
        rng = np.random.default_rng(1)
        hostname = make_hostname(3, "NYC", "alter.net", rng, embed_location=True)
        parts = hostname.split(".")
        assert parts[0].isdigit()
        assert "-" in parts[1]

    @settings(max_examples=60)
    @given(router_ids, codes)
    def test_round_trip_property(self, router_id, code):
        rng = np.random.default_rng(router_id)
        hostname = make_hostname(
            router_id, code, "testnet.net", rng, embed_location=True
        )
        assert extract_city_code(hostname) == code

    def test_digit_tagged_synthetic_codes_round_trip(self):
        rng = np.random.default_rng(2)
        hostname = make_hostname(11, "3QF", "zone.net", rng, embed_location=True)
        assert extract_city_code(hostname) == "3QF"


class TestExtractCityCode:
    def test_unparseable_hostname_raises(self):
        with pytest.raises(GeolocationError):
            extract_city_code("www.example.com")

    def test_garbage_raises(self):
        with pytest.raises(GeolocationError):
            extract_city_code("!!!")

    def test_unit_digits_stripped(self):
        rng = np.random.default_rng(3)
        hostname = make_hostname(8, "SEA", "x.net", rng, embed_location=True)
        # Router 8 gets a unit number appended to the code; the parser
        # must strip it.
        assert extract_city_code(hostname) == "SEA"
