"""Tests for repro.datasets.pipeline (the end-to-end build)."""

import numpy as np
import pytest

from repro.bgp.table import UNMAPPED_ASN, BgpTable, RibEntry
from repro.datasets.pipeline import _majority_vote, build_snapshot, run_pipeline
from repro.errors import DatasetError
from repro.geo.coords import GeoPoint
from repro.geoloc.base import METHOD_HOSTNAME, METHOD_UNMAPPED, MappingResult
from repro.measure.inventory import RawInventory
from repro.net.ip import Prefix


class _StubMapper:
    """Geolocator stub with a scripted answer per address."""

    name = "Stub"

    def __init__(self, answers: dict[int, GeoPoint | None]):
        self._answers = answers

    def locate(self, address: int) -> MappingResult:
        location = self._answers.get(address)
        if location is None:
            return MappingResult(location=None, method=METHOD_UNMAPPED)
        return MappingResult(location=location, method=METHOD_HOSTNAME)


def _table() -> BgpTable:
    return BgpTable([RibEntry(Prefix.parse("0.0.0.0/8"), 77)])


class TestMajorityVote:
    def test_clear_winner(self):
        assert _majority_vote([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]) == (1.0, 1.0)

    def test_tie_returns_none(self):
        assert _majority_vote([(1.0, 1.0), (2.0, 2.0)]) is None

    def test_single_vote_wins(self):
        assert _majority_vote([(3.0, 4.0)]) == (3.0, 4.0)


class TestBuildSnapshot:
    def _inventory(self) -> RawInventory:
        inv = RawInventory(kind="skitter")
        for node in (10, 20, 30):
            inv.add_node(node)
        inv.add_link(10, 20)
        inv.add_link(20, 30)
        return inv

    def test_unmapped_nodes_dropped_with_links(self):
        mapper = _StubMapper(
            {10: GeoPoint(1.0, 1.0), 20: None, 30: GeoPoint(2.0, 2.0)}
        )
        dataset, report = build_snapshot(self._inventory(), mapper, _table(), "t")
        assert dataset.n_nodes == 2
        assert dataset.n_links == 0  # both links touched node 20
        assert report.n_unmapped == 1

    def test_all_mapped_keeps_links(self):
        mapper = _StubMapper(
            {10: GeoPoint(1.0, 1.0), 20: GeoPoint(1.5, 1.5), 30: GeoPoint(2.0, 2.0)}
        )
        dataset, report = build_snapshot(self._inventory(), mapper, _table(), "t")
        assert dataset.n_nodes == 3 and dataset.n_links == 2
        assert report.n_unmapped == 0

    def test_as_mapping_uses_bgp_table(self):
        mapper = _StubMapper({10: GeoPoint(1.0, 1.0)})
        inv = RawInventory(kind="skitter")
        inv.add_node(10)
        dataset, report = build_snapshot(inv, mapper, _table(), "t")
        assert dataset.asns[0] == 77
        assert report.n_as_unmapped == 0

    def test_unannounced_address_gets_sentinel(self):
        mapper = _StubMapper({0x20000001: GeoPoint(1.0, 1.0)})
        inv = RawInventory(kind="skitter")
        inv.add_node(0x20000001)  # outside the announced 0.0.0.0/8
        dataset, report = build_snapshot(inv, mapper, _table(), "t")
        assert dataset.asns[0] == UNMAPPED_ASN
        assert report.n_as_unmapped == 1

    def test_mercator_tie_discards_router(self):
        inv = RawInventory(kind="mercator")
        inv.add_node(100)
        inv.aliases[100] = [100, 101]
        mapper = _StubMapper(
            {100: GeoPoint(1.0, 1.0), 101: GeoPoint(5.0, 5.0)}
        )
        dataset, report = build_snapshot(inv, mapper, _table(), "t")
        assert dataset.n_nodes == 0
        assert report.n_location_ties == 1

    def test_mercator_majority_wins(self):
        inv = RawInventory(kind="mercator")
        inv.add_node(100)
        inv.aliases[100] = [100, 101, 102]
        mapper = _StubMapper(
            {
                100: GeoPoint(1.0, 1.0),
                101: GeoPoint(1.0, 1.0),
                102: GeoPoint(5.0, 5.0),
            }
        )
        dataset, _ = build_snapshot(inv, mapper, _table(), "t")
        assert dataset.n_nodes == 1
        assert dataset.lats[0] == pytest.approx(1.0)


class TestRunPipeline:
    def test_produces_four_datasets(self, pipeline_small):
        assert set(pipeline_small.datasets) == {
            "IxMapper, Mercator",
            "IxMapper, Skitter",
            "EdgeScape, Mercator",
            "EdgeScape, Skitter",
        }

    def test_dataset_lookup_helper(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        assert ds.kind == "skitter"
        with pytest.raises(DatasetError):
            pipeline_small.dataset("NetGeo", "Skitter")

    def test_datasets_nonempty(self, pipeline_small):
        for ds in pipeline_small.datasets.values():
            assert ds.n_nodes > 500
            assert ds.n_links > 500
            assert ds.n_locations > 20

    def test_unmapped_rates_match_paper_band(self, pipeline_small):
        for label, report in pipeline_small.processing_reports.items():
            rate = report.n_unmapped / report.n_raw_nodes
            if label.startswith("IxMapper"):
                assert rate < 0.04
            else:
                assert rate < 0.02

    def test_mercator_tie_rate_small(self, pipeline_small):
        for label, report in pipeline_small.processing_reports.items():
            if "Mercator" in label:
                tie_rate = report.n_location_ties / report.n_raw_nodes
                assert tie_rate < 0.06  # paper observes 2.5-2.9%

    def test_as_unmapped_rate_small(self, pipeline_small):
        for report in pipeline_small.processing_reports.values():
            rate = report.n_as_unmapped / report.n_raw_nodes
            assert rate < 0.06  # paper observes 1.5-2.8%

    def test_skitter_larger_than_mercator(self, pipeline_small):
        skitter = pipeline_small.dataset("IxMapper", "Skitter")
        mercator = pipeline_small.dataset("IxMapper", "Mercator")
        assert skitter.n_nodes > mercator.n_nodes

    def test_deterministic_given_config(self, pipeline_small, small_config):
        again = run_pipeline(small_config)
        ds1 = pipeline_small.dataset("IxMapper", "Skitter")
        ds2 = again.dataset("IxMapper", "Skitter")
        assert ds1.n_nodes == ds2.n_nodes
        assert np.array_equal(ds1.addresses, ds2.addresses)
        assert np.array_equal(ds1.lats, ds2.lats)
