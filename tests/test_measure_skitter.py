"""Tests for repro.measure.skitter."""

import numpy as np
import pytest

from repro.config import SkitterConfig
from repro.errors import MeasurementError
from repro.measure.skitter import (
    SkitterCampaign,
    choose_monitors,
    plan_campaign,
    run_skitter,
)


def _config(**overrides) -> SkitterConfig:
    base = dict(n_monitors=2, destinations_per_monitor=4, response_rate=1.0)
    base.update(overrides)
    return SkitterConfig(**base)


class TestChooseMonitors:
    def test_monitors_in_distinct_ases_when_possible(self, toy_topology):
        monitors = choose_monitors(toy_topology, 2, np.random.default_rng(0))
        asns = {toy_topology.routers[m].asn for m in monitors}
        assert len(asns) == 2

    def test_relaxes_distinct_as_constraint(self, toy_topology):
        # Only 2 ASes exist; asking for 4 monitors must still succeed.
        monitors = choose_monitors(toy_topology, 4, np.random.default_rng(0))
        assert len(set(monitors)) == 4

    def test_too_many_monitors_raise(self, toy_topology):
        with pytest.raises(MeasurementError):
            choose_monitors(toy_topology, 7, np.random.default_rng(0))


class TestPlanCampaign:
    def test_destination_lists_sized(self, toy_topology):
        campaign = plan_campaign(toy_topology, _config(), np.random.default_rng(1))
        assert len(campaign.monitors) == 2
        for dests in campaign.destination_lists:
            assert dests.shape == (4,)
            assert len(set(dests.tolist())) == 4

    def test_destination_count_capped_at_router_count(self, toy_topology):
        config = _config(destinations_per_monitor=100)
        campaign = plan_campaign(toy_topology, config, np.random.default_rng(1))
        assert all(d.shape[0] == 6 for d in campaign.destination_lists)


class TestRunSkitter:
    def test_full_probing_from_chain_end(self, toy_topology):
        # Monitor at router 0 probing everything on a chain topology
        # observes the inbound interface of every other router.
        campaign = SkitterCampaign(
            monitors=[0], destination_lists=[np.arange(1, 6)]
        )
        inventory = run_skitter(
            toy_topology, _config(n_monitors=1), np.random.default_rng(0),
            campaign=campaign,
        )
        inventory.validate()
        assert inventory.kind == "skitter"
        # 4 intermediate inbound interfaces + 5 destination loopbacks.
        routers_seen = {
            toy_topology.interfaces[a].router_id for a in inventory.nodes
        }
        assert routers_seen == {1, 2, 3, 4, 5}

    def test_destinations_recorded_as_loopbacks(self, toy_topology):
        campaign = SkitterCampaign(
            monitors=[0], destination_lists=[np.array([5])]
        )
        inventory = run_skitter(
            toy_topology, _config(n_monitors=1), np.random.default_rng(0),
            campaign=campaign,
        )
        assert toy_topology.routers[5].loopback in inventory.destinations
        assert toy_topology.routers[5].loopback in inventory.nodes

    def test_links_connect_consecutive_hops(self, toy_topology):
        campaign = SkitterCampaign(
            monitors=[0], destination_lists=[np.array([3])]
        )
        inventory = run_skitter(
            toy_topology, _config(n_monitors=1), np.random.default_rng(0),
            campaign=campaign,
        )
        # Path 0-1-2-3 yields adjacencies between hops 1-2 and 2-3.
        assert inventory.n_links == 2

    def test_silent_router_breaks_adjacency(self, toy_topology):
        # With response_rate ~ 0 only the destination (forced responsive
        # monitors aside) can appear; no links should be recorded across
        # silent gaps.
        campaign = SkitterCampaign(
            monitors=[0], destination_lists=[np.array([5])]
        )
        inventory = run_skitter(
            toy_topology,
            _config(n_monitors=1, response_rate=1e-12),
            np.random.default_rng(0),
            campaign=campaign,
        )
        assert inventory.n_links == 0

    def test_max_hops_limits_reach(self, toy_topology):
        campaign = SkitterCampaign(
            monitors=[0], destination_lists=[np.array([5])]
        )
        inventory = run_skitter(
            toy_topology,
            SkitterConfig(
                n_monitors=1, destinations_per_monitor=1, response_rate=1.0,
                max_hops=2,
            ),
            np.random.default_rng(0),
            campaign=campaign,
        )
        routers_seen = {
            toy_topology.interfaces[a].router_id for a in inventory.nodes
        }
        assert routers_seen == {1, 2}

    def test_union_of_monitors_sees_more(self, generated_small):
        topology, _, _ = generated_small
        few = run_skitter(
            topology,
            SkitterConfig(n_monitors=1, destinations_per_monitor=150),
            np.random.default_rng(5),
        )
        many = run_skitter(
            topology,
            SkitterConfig(n_monitors=6, destinations_per_monitor=150),
            np.random.default_rng(5),
        )
        assert many.n_nodes > few.n_nodes
        assert many.n_links > few.n_links

    def test_observed_subgraph_of_ground_truth(self, generated_small):
        topology, _, _ = generated_small
        inventory = run_skitter(
            topology,
            SkitterConfig(n_monitors=3, destinations_per_monitor=120),
            np.random.default_rng(6),
        )
        for a, b in list(inventory.links)[:200]:
            ra = topology.interfaces[a].router_id
            rb = topology.interfaces[b].router_id
            assert topology.has_link(ra, rb)
