"""Equivalence and round-trip tests for the array-native topology core.

The structure-of-arrays refactor must be observationally identical to
the old object-per-element topology: same adjacency, same lookups, same
validation errors, same derived statistics.  These tests pin that
equivalence with brute-force reference implementations, exercise the
``.npz`` serialisation (directly and through the runtime artifact
cache), and cover the vectorised tree-walk helpers the measurement
simulators are built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import small_scenario
from repro.datasets.pipeline import run_pipeline
from repro.errors import MeasurementError, TopologyError
from repro.measure.inventory import RawInventory
from repro.net.ip import is_private, is_private_many
from repro.routing.shortest_path import (
    ancestor_closure,
    ancestors_at_depth,
    shortest_path_tree,
    tree_depths,
)
from repro.obs.report import build_run_report
from repro.runtime.cache import ArtifactCache, stage_key

from tests.conftest import build_toy_topology


# --- CSR adjacency and per-router interface slices ---------------------------


class TestAdjacencyEquivalence:
    def test_neighbors_match_brute_force(self, generated_small):
        topology, _, _ = generated_small
        link_a, link_b = topology.link_endpoints()
        reference: dict[int, set[int]] = {
            rid: set() for rid in range(topology.n_routers)
        }
        for a, b in zip(link_a.tolist(), link_b.tolist()):
            reference[a].add(b)
            reference[b].add(a)
        for rid in range(topology.n_routers):
            neighbors = topology.neighbors(rid)
            assert neighbors == sorted(reference[rid])
            assert topology.degree(rid) == len(reference[rid])

    def test_degrees_match_scalar_degree(self, generated_small):
        topology, _, _ = generated_small
        degrees = topology.degrees()
        assert degrees.shape == (topology.n_routers,)
        for rid in range(topology.n_routers):
            assert degrees[rid] == topology.degree(rid)

    def test_incident_links_cover_every_link(self, generated_small):
        topology, _, _ = generated_small
        link_a, link_b = topology.link_endpoints()
        seen = set()
        for rid in range(topology.n_routers):
            for link_id in topology.incident_links(rid):
                assert rid in (link_a[link_id], link_b[link_id])
                seen.add(int(link_id))
        assert seen == set(range(topology.n_links))

    def test_interfaces_of_router_matches_column_scan(self, generated_small):
        topology, _, _ = generated_small
        addresses = topology.interface_addresses()
        owners = topology.interface_routers()
        for rid in range(0, topology.n_routers, 17):
            expected = addresses[owners == rid].tolist()
            got = [i.address for i in topology.interfaces_of_router(rid)]
            assert sorted(got) == sorted(expected)

    def test_link_interfaces_toward_matches_scalar(self, generated_small):
        topology, _, _ = generated_small
        link_a, link_b = topology.link_endpoints()
        sample = slice(0, min(200, topology.n_links))
        forward = topology.link_interfaces_toward(link_a[sample], link_b[sample])
        backward = topology.link_interfaces_toward(link_b[sample], link_a[sample])
        for i in range(forward.shape[0]):
            a, b = int(link_a[i]), int(link_b[i])
            assert forward[i] == topology.link_interface_toward(a, b)
            assert backward[i] == topology.link_interface_toward(b, a)

    def test_link_interfaces_toward_rejects_non_adjacent(self):
        topology = build_toy_topology()
        with pytest.raises(TopologyError, match="no link between routers"):
            topology.link_interfaces_toward(
                np.array([0]), np.array([5])
            )


# --- Address index -----------------------------------------------------------


class TestAddressIndex:
    def test_interface_positions_roundtrip(self, generated_small):
        topology, _, _ = generated_small
        addresses = topology.interface_addresses()
        positions = topology.interface_positions(addresses)
        assert np.array_equal(positions, np.arange(topology.n_interfaces))

    def test_interface_positions_flags_unknown(self):
        topology = build_toy_topology()
        known = int(topology.interface_addresses()[0])
        positions = topology.interface_positions(np.array([known, 999_999]))
        assert positions[0] >= 0
        assert positions[1] == -1

    def test_columns_are_read_only(self, generated_small):
        topology, _, _ = generated_small
        lats, lons = topology.router_coordinates()
        for column in (
            lats,
            lons,
            topology.router_asns(),
            topology.router_loopbacks(),
            topology.link_lengths(),
            topology.interface_addresses(),
            topology.interface_routers(),
        ):
            with pytest.raises(ValueError):
                column[0] = 1


# --- npz round-trip ----------------------------------------------------------


def _assert_topology_equal(a, b) -> None:
    assert a.n_routers == b.n_routers
    assert a.n_links == b.n_links
    assert a.n_interfaces == b.n_interfaces
    a_lat, a_lon = a.router_coordinates()
    b_lat, b_lon = b.router_coordinates()
    assert np.array_equal(a_lat, b_lat)
    assert np.array_equal(a_lon, b_lon)
    assert np.array_equal(a.router_asns(), b.router_asns())
    assert np.array_equal(a.router_loopbacks(), b.router_loopbacks())
    assert a.router_city_codes() == b.router_city_codes()
    for left, right in zip(a.link_endpoints(), b.link_endpoints()):
        assert np.array_equal(left, right)
    for left, right in zip(a.link_interfaces(), b.link_interfaces()):
        assert np.array_equal(left, right)
    assert np.array_equal(a.interface_addresses(), b.interface_addresses())
    assert np.array_equal(a.interface_routers(), b.interface_routers())
    assert np.array_equal(a.interface_links(), b.interface_links())
    assert a.hostnames == b.hostnames
    assert list(a.asns) == list(b.asns)
    assert a.asns == b.asns


class TestNpzRoundTrip:
    def test_toy_topology_roundtrip(self, tmp_path):
        topology = build_toy_topology()
        path = tmp_path / "toy.npz"
        topology.to_npz(path)
        restored = type(topology).from_npz(path)
        restored.validate()
        _assert_topology_equal(topology, restored)

    def test_generated_roundtrip(self, generated_small, tmp_path):
        topology, _, _ = generated_small
        path = tmp_path / "generated.npz"
        topology.to_npz(path)
        restored = type(topology).from_npz(path)
        restored.validate()
        _assert_topology_equal(topology, restored)

    def test_extra_strings_survive(self, tmp_path):
        topology = build_toy_topology()
        path = tmp_path / "extra.npz"
        topology.to_npz(path, extra={"meta_json": '{"k": 1}'})
        with np.load(path, allow_pickle=False) as data:
            assert str(data["meta_json"]) == '{"k": 1}'

    def test_extra_key_collision_rejected(self, tmp_path):
        topology = build_toy_topology()
        with pytest.raises(TopologyError, match="collides with a column"):
            topology.to_npz(tmp_path / "bad.npz", extra={"r_lat": "x"})

    def test_restored_queries_work(self, tmp_path):
        topology = build_toy_topology()
        path = tmp_path / "toy.npz"
        topology.to_npz(path)
        restored = type(topology).from_npz(path)
        assert restored.neighbors(1) == topology.neighbors(1)
        assert restored.link_between(2, 3).interdomain
        graph = restored.routing_graph()
        assert graph.shape == (topology.n_routers, topology.n_routers)


class TestGroundTruthCacheCodec:
    def test_cache_roundtrip(self, generated_small, tmp_path):
        truth = generated_small
        cache = ArtifactCache(tmp_path)
        key = stage_key("cfg", "ground_truth", ())
        cache.store(key, truth, codec="ground-truth-npz")
        hit, restored = cache.load(key, codec="ground-truth-npz")
        assert hit
        topology, plan, report = truth
        restored_topology, restored_plan, restored_report = restored
        _assert_topology_equal(topology, restored_topology)
        assert restored_report == report
        assert all(
            isinstance(asn, int) for asn in restored_report.as_sizes
        )
        assert restored_plan.to_dict() == plan.to_dict()


# --- validate() equivalence --------------------------------------------------


class TestValidateInvariants:
    def test_clean_topology_passes(self, generated_small):
        topology, _, _ = generated_small
        topology.validate()

    def test_unknown_as_detected(self):
        topology = build_toy_topology()
        asns = topology._r_asn
        original = asns[0]
        asns[0] = 31337
        topology._invalidate()
        with pytest.raises(TopologyError, match="references unknown AS"):
            topology.validate()
        asns[0] = original
        topology._invalidate()

    def test_missing_loopback_detected(self):
        topology = build_toy_topology()
        topology._r_loopback[0] = 424242
        topology._invalidate()
        with pytest.raises(TopologyError, match="loopback missing"):
            topology.validate()

    def test_inconsistent_link_interface_detected(self):
        topology = build_toy_topology()
        topology._l_ia[0] = topology._l_ia[1]  # another link's interface
        topology._invalidate()
        with pytest.raises(TopologyError, match="inconsistent"):
            topology.validate()


# --- Tree-walk helpers -------------------------------------------------------


@pytest.fixture(scope="module")
def sample_tree(generated_small):
    topology, _, _ = generated_small
    graph = topology.routing_graph()
    source = int(np.argmax(topology.degrees()))
    return topology, shortest_path_tree(graph, source)


class TestTreeHelpers:
    def test_depths_match_path_lengths(self, sample_tree):
        topology, tree = sample_tree
        depths = tree_depths(tree)
        assert depths[tree.source] == 0
        for target in range(0, topology.n_routers, 13):
            if not tree.reachable(target):
                assert depths[target] == -1
            else:
                assert depths[target] == len(tree.path_to(target)) - 1

    def test_ancestors_at_depth_match_paths(self, sample_tree):
        topology, tree = sample_tree
        depths = tree_depths(tree)
        cut = 3
        nodes = np.flatnonzero(depths >= cut)[:50]
        ancestors = ancestors_at_depth(tree, depths, nodes, cut)
        for node, ancestor in zip(nodes.tolist(), ancestors.tolist()):
            assert tree.path_to(node)[cut] == ancestor

    def test_closure_is_union_of_paths(self, sample_tree):
        topology, tree = sample_tree
        depths = tree_depths(tree)
        starts = np.flatnonzero(depths > 0)[:40]
        mask = ancestor_closure(tree, starts)
        expected: set[int] = set()
        for start in starts.tolist():
            expected.update(tree.path_to(start)[1:])
        assert set(np.flatnonzero(mask).tolist()) == expected

    def test_closure_excludes_source(self, sample_tree):
        _, tree = sample_tree
        mask = ancestor_closure(tree, np.array([tree.source]))
        assert not mask[tree.source]
        assert not mask.any()


# --- Bulk inventory updates --------------------------------------------------


class TestInventoryBulkOps:
    def test_add_nodes_idempotent(self):
        inventory = RawInventory(kind="skitter")
        inventory.add_nodes([5, 6, 5])
        inventory.add_nodes([6, 7])
        assert inventory.nodes == {5, 6, 7}
        assert inventory.aliases == {5: [5], 6: [6], 7: [7]}
        inventory.validate()

    def test_add_link_pairs_normalises(self):
        inventory = RawInventory(kind="skitter")
        inventory.add_nodes([1, 2, 3])
        inventory.add_link_pairs(np.array([2, 3]), np.array([1, 1]))
        assert inventory.links == {(1, 2), (1, 3)}
        inventory.validate()

    def test_add_link_pairs_rejects_self_link(self):
        inventory = RawInventory(kind="skitter")
        inventory.add_nodes([1])
        with pytest.raises(MeasurementError, match="self-link"):
            inventory.add_link_pairs(np.array([1]), np.array([1]))

    def test_add_link_pairs_rejects_unknown_endpoint(self):
        inventory = RawInventory(kind="skitter")
        inventory.add_nodes([1])
        with pytest.raises(MeasurementError, match="never recorded"):
            inventory.add_link_pairs(np.array([1]), np.array([9]))


# --- Vectorised address classification ---------------------------------------


class TestIsPrivateMany:
    def test_matches_scalar(self):
        probes = np.array(
            [
                0x0A000001,  # 10.0.0.1
                0xAC100001,  # 172.16.0.1
                0xAC200001,  # 172.32.0.1 (public)
                0xC0A80001,  # 192.168.0.1
                0x10000001,  # 16.0.0.1 (public pool)
            ],
            dtype=np.int64,
        )
        vector = is_private_many(probes)
        for address, flag in zip(probes.tolist(), vector.tolist()):
            assert flag == is_private(address)

    def test_rejects_out_of_range(self):
        with pytest.raises(Exception):
            is_private_many(np.array([-1]))


# --- Determinism through the refactored cache path ---------------------------


class TestArtifactHashDeterminism:
    def test_serial_parallel_and_cache_hit_hashes_match(self, tmp_path):
        config = small_scenario(seed=321)
        serial = run_pipeline(config, cache_dir=tmp_path / "a")
        parallel = run_pipeline(config, cache_dir=tmp_path / "b", jobs=4)
        warm = run_pipeline(config, cache_dir=tmp_path / "a")
        hashes = [
            build_run_report(config=config, result=result).artifacts
            for result in (serial, parallel, warm)
        ]
        assert hashes[0]  # at least one dataset hashed
        assert hashes[0] == hashes[1] == hashes[2]
