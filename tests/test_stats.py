"""Tests for repro.core.stats (fits, distributions, correlation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    bin_counts,
    ccdf_loglog_points,
    empirical_distribution,
    least_squares_fit,
    loglog_fit,
    pearson_correlation,
    semilog_fit,
    spearman_correlation,
    tail_span_decades,
)
from repro.errors import AnalysisError

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestLeastSquares:
    def test_exact_line_recovered(self):
        x = np.linspace(0, 10, 50)
        y = 2.5 * x - 3.0
        fit = least_squares_fit(x, y)
        assert fit.slope == pytest.approx(2.5)
        assert fit.intercept == pytest.approx(-3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_approximate(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 500)
        y = 1.7 * x + 4.0 + rng.normal(0, 0.1, 500)
        fit = least_squares_fit(x, y)
        assert fit.slope == pytest.approx(1.7, abs=0.05)
        assert fit.r_squared > 0.95

    def test_predict_evaluates_line(self):
        fit = least_squares_fit(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert float(fit.predict(2.0)) == pytest.approx(5.0)

    def test_equation_string(self):
        fit = least_squares_fit(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert "y = " in fit.equation("d")
        assert "d" in fit.equation("d")

    def test_too_few_points_raise(self):
        with pytest.raises(AnalysisError):
            least_squares_fit(np.array([1.0]), np.array([2.0]))

    def test_constant_x_raises(self):
        with pytest.raises(AnalysisError):
            least_squares_fit(np.array([2.0, 2.0]), np.array([1.0, 3.0]))

    def test_non_finite_raises(self):
        with pytest.raises(AnalysisError):
            least_squares_fit(np.array([0.0, np.inf]), np.array([0.0, 1.0]))

    @settings(max_examples=50)
    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_recovers_arbitrary_lines(self, slope, intercept):
        x = np.linspace(-5, 5, 20)
        fit = least_squares_fit(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-6)


class TestLogLogFit:
    def test_power_law_slope_recovered(self):
        x = np.logspace(1, 4, 60)
        y = 0.5 * x**1.4
        fit = loglog_fit(x, y)
        assert fit.slope == pytest.approx(1.4, abs=1e-6)

    def test_non_positive_entries_dropped(self):
        x = np.array([0.0, 10.0, 100.0, 1000.0])
        y = np.array([5.0, 10.0, 100.0, 1000.0])
        fit = loglog_fit(x, y)
        assert fit.n == 3

    def test_all_non_positive_raise(self):
        with pytest.raises(AnalysisError):
            loglog_fit(np.array([0.0, -1.0]), np.array([1.0, 2.0]))


class TestSemilogFit:
    def test_exponential_decay_recovered(self):
        d = np.linspace(0, 300, 40)
        f = 0.01 * np.exp(-d / 140.0)
        fit = semilog_fit(d, f)
        assert -1.0 / fit.slope == pytest.approx(140.0, rel=1e-6)

    def test_zero_values_dropped(self):
        d = np.array([0.0, 10.0, 20.0, 30.0])
        f = np.array([1.0, 0.0, np.e**-2, np.e**-3])
        fit = semilog_fit(d, f)
        assert fit.n == 3


class TestEmpiricalDistribution:
    def test_cdf_and_ccdf_complement(self):
        dist = empirical_distribution(np.array([1.0, 2.0, 2.0, 5.0]))
        assert np.allclose(dist.cdf + dist.ccdf, 1.0)

    def test_cdf_monotone_and_ends_at_one(self):
        rng = np.random.default_rng(4)
        dist = empirical_distribution(rng.pareto(1.5, 500))
        assert np.all(np.diff(dist.cdf) > 0)
        assert dist.cdf[-1] == pytest.approx(1.0)

    def test_values_sorted_unique(self):
        dist = empirical_distribution(np.array([3.0, 1.0, 3.0]))
        assert dist.values.tolist() == [1.0, 3.0]

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            empirical_distribution(np.array([]))

    def test_nan_raises(self):
        with pytest.raises(AnalysisError):
            empirical_distribution(np.array([1.0, np.nan]))

    @settings(max_examples=40)
    @given(st.lists(finite, min_size=1, max_size=100))
    def test_cdf_at_value_counts_at_most(self, samples):
        arr = np.asarray(samples)
        dist = empirical_distribution(arr)
        for v, c in zip(dist.values, dist.cdf):
            assert c == pytest.approx(np.mean(arr <= v))


class TestCcdfLogLog:
    def test_tail_points_are_finite(self):
        rng = np.random.default_rng(9)
        lx, ly = ccdf_loglog_points(rng.pareto(1.0, 1000) + 1.0)
        assert np.all(np.isfinite(lx)) and np.all(np.isfinite(ly))

    def test_pareto_tail_is_roughly_linear(self):
        rng = np.random.default_rng(10)
        lx, ly = ccdf_loglog_points(rng.pareto(1.2, 20_000) + 1.0)
        fit = least_squares_fit(lx, ly)
        assert fit.slope == pytest.approx(-1.2, abs=0.25)

    def test_decades_span(self):
        assert tail_span_decades(np.array([1.0, 10.0, 1000.0])) == pytest.approx(3.0)
        assert tail_span_decades(np.array([-1.0, 0.0])) == 0.0


class TestCorrelation:
    def test_perfect_positive(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_raises(self):
        with pytest.raises(AnalysisError):
            pearson_correlation(np.ones(5), np.arange(5.0))

    def test_spearman_monotone_nonlinear_is_one(self):
        x = np.arange(1.0, 20.0)
        assert spearman_correlation(x, x**3) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    @settings(max_examples=40)
    @given(st.lists(finite, min_size=3, max_size=50))
    def test_pearson_bounded(self, xs):
        x = np.asarray(xs)
        if np.std(x) < 1e-6:  # (near-)constant input is rejected by design
            return
        rng = np.random.default_rng(0)
        y = rng.normal(size=x.size)
        r = pearson_correlation(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestBinCounts:
    def test_basic_binning(self):
        series = bin_counts(np.array([0.5, 1.5, 1.7, 9.0]), width=1.0, n_bins=5)
        assert series.values[0] == 1
        assert series.values[1] == 2
        assert series.values.sum() == 3  # 9.0 beyond the last bin is dropped

    def test_negative_samples_dropped(self):
        series = bin_counts(np.array([-0.5, 0.5]), width=1.0, n_bins=2)
        assert series.values.sum() == 1

    def test_invalid_parameters_raise(self):
        with pytest.raises(AnalysisError):
            bin_counts(np.array([1.0]), width=0.0, n_bins=5)
        with pytest.raises(AnalysisError):
            bin_counts(np.array([1.0]), width=1.0, n_bins=0)
