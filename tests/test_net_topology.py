"""Tests for repro.net.topology and repro.net.elements."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.net.elements import AutonomousSystem, Link, Router
from repro.net.topology import Topology


class TestElements:
    def test_as_domain_slug(self):
        asys = AutonomousSystem(
            asn=7, name="Alter Net 7", headquarters=GeoPoint(0.0, 0.0)
        )
        assert asys.domain == "alternet7.net"

    def test_as_rejects_bad_asn(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=0, name="x", headquarters=GeoPoint(0.0, 0.0))

    def test_as_rejects_bad_tier(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(
                asn=1, name="x", headquarters=GeoPoint(0.0, 0.0), tier=4
            )

    def test_router_rejects_negative_id(self):
        with pytest.raises(TopologyError):
            Router(router_id=-1, asn=1, location=GeoPoint(0, 0), city_code="",
                   loopback=5)

    def test_link_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link(0, 1, 1, 10, 11, 0.0, False)

    def test_link_other_router(self):
        link = Link(0, 1, 2, 10, 11, 5.0, False)
        assert link.other_router(1) == 2
        assert link.other_router(2) == 1
        with pytest.raises(TopologyError):
            link.other_router(3)


class TestTopologyConstruction:
    def test_toy_shape(self, toy_topology):
        assert toy_topology.n_routers == 6
        assert toy_topology.n_links == 5
        # 6 loopbacks + 2 interfaces per link.
        assert toy_topology.n_interfaces == 6 + 10

    def test_duplicate_asn_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_as(
                AutonomousSystem(asn=100, name="dup", headquarters=GeoPoint(0, 0))
            )

    def test_router_unknown_as_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_router(999, GeoPoint(0, 0), "", 5000)

    def test_duplicate_loopback_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_router(100, GeoPoint(0, 0), "", 1000)

    def test_self_loop_link_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_link(0, 0, 9000, 9001)

    def test_duplicate_link_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_link(0, 1, 9000, 9001)
        with pytest.raises(TopologyError):
            toy_topology.add_link(1, 0, 9002, 9003)

    def test_duplicate_interface_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_link(0, 4, 2000, 9001)

    def test_unknown_router_link_rejected(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.add_link(0, 77, 9000, 9001)

    def test_endpoint_normalisation(self, toy_topology):
        link = toy_topology.add_link(5, 0, 9000, 9001)
        assert link.router_a == 0 and link.router_b == 5
        assert link.interface_a == 9001 and link.interface_b == 9000


class TestTopologyQueries:
    def test_neighbors(self, toy_topology):
        assert set(toy_topology.neighbors(1)) == {0, 2}
        assert toy_topology.neighbors(0) == [1]

    def test_unknown_router_neighbors_raise(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.neighbors(42)

    def test_degree(self, toy_topology):
        assert toy_topology.degree(0) == 1
        assert toy_topology.degree(2) == 2

    def test_has_link_symmetric(self, toy_topology):
        assert toy_topology.has_link(0, 1)
        assert toy_topology.has_link(1, 0)
        assert not toy_topology.has_link(0, 5)

    def test_interdomain_flag(self, toy_topology):
        cross = toy_topology.link_between(2, 3)
        within = toy_topology.link_between(0, 1)
        assert cross.interdomain
        assert not within.interdomain

    def test_link_lengths_positive(self, toy_topology):
        lengths = toy_topology.link_lengths()
        assert lengths.shape == (5,)
        assert np.all(lengths > 0)

    def test_router_coordinates(self, toy_topology):
        lats, lons = toy_topology.router_coordinates()
        assert lats.shape == (6,)
        assert lats[0] == pytest.approx(37.77)

    def test_router_asns(self, toy_topology):
        asns = toy_topology.router_asns()
        assert asns.tolist() == [100, 100, 100, 200, 200, 200]

    def test_link_between_missing_raises(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.link_between(0, 5)

    def test_incident_links(self, toy_topology):
        ids = toy_topology.incident_links(2)
        assert len(ids) == 2

    def test_link_interface_toward(self, toy_topology):
        link = toy_topology.link_between(0, 1)
        toward_1 = toy_topology.link_interface_toward(0, 1)
        toward_0 = toy_topology.link_interface_toward(1, 0)
        assert {toward_0, toward_1} == {link.interface_a, link.interface_b}
        # The interface toward router 1 must belong to router 1.
        assert toy_topology.interfaces[toward_1].router_id == 1

    def test_interfaces_of_router(self, toy_topology):
        interfaces = toy_topology.interfaces_of_router(2)
        # Loopback + 2 link interfaces.
        assert len(interfaces) == 3


class TestRoutingGraph:
    def test_symmetric_csr(self, toy_topology):
        graph = toy_topology.routing_graph()
        dense = graph.toarray()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] > 0

    def test_hop_cost_added(self, toy_topology):
        no_cost = toy_topology.routing_graph(hop_cost=0.0).toarray()
        with_cost = toy_topology.routing_graph(hop_cost=100.0).toarray()
        nz = no_cost > 0
        assert np.allclose(with_cost[nz] - no_cost[nz], 100.0)

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            Topology().routing_graph()


class TestValidate:
    def test_valid_topology_passes(self, toy_topology):
        toy_topology.validate()

    def test_hostname_requires_known_interface(self, toy_topology):
        with pytest.raises(TopologyError):
            toy_topology.set_hostname(424242, "x.example.net")

    def test_corruption_detected(self, toy_topology):
        # Simulate corruption: break an interface's link reference.
        from repro.net.elements import Interface

        address = toy_topology.links[0].interface_a
        toy_topology.interfaces[address] = Interface(address, 0, 99)
        with pytest.raises(TopologyError):
            toy_topology.validate()
