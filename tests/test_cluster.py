"""Tests for the sharded serving cluster (repro.cluster).

The load-bearing property is *bit identity*: a coordinator fronting
partitioned shard workers must answer every endpoint with the exact
status and body a single-process SnapshotServer produces from the same
snapshot.  The differential test here drives both through real HTTP
and compares raw bytes.  The rest covers the moving parts around that
contract: partition planning, replica failover and ejection, the
generation-pinned hot snapshot swap, and the fleet metrics merge.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.distance import (
    N_BINS,
    exact_pair_counts,
    exact_pair_counts_rows,
)
from repro.datasets.mapped import UNMAPPED_ASN, MappedDataset
from repro.datasets.serialize import save_dataset
from repro.errors import ServeError
from repro.obs import merge_expositions
from repro.serve import (
    SnapshotClient,
    SnapshotIndex,
    SnapshotServer,
)
from repro.cluster import (
    ClusterCoordinator,
    ReplicaSet,
    Routing,
    ShardClient,
    ShardRange,
    ShardServer,
    ShardUnavailable,
    build_routing,
    partition_bounds,
    range_indices,
)


@pytest.fixture(scope="module")
def dataset(pipeline_small) -> MappedDataset:
    return pipeline_small.dataset("IxMapper", "Skitter")


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("cluster") / "snapshot.npz"
    save_dataset(dataset, path)
    return str(path)


@pytest.fixture(scope="module")
def snapshot_b_path(dataset, tmp_path_factory) -> str:
    """A second snapshot with every latitude visibly shifted."""
    shifted = MappedDataset(
        label="shifted",
        kind=dataset.kind,
        addresses=dataset.addresses,
        lats=np.clip(dataset.lats + 1.0, -90.0, 90.0),
        lons=dataset.lons,
        asns=dataset.asns,
        links=dataset.links,
    )
    path = tmp_path_factory.mktemp("cluster-b") / "snapshot_b.npz"
    save_dataset(shifted, path)
    return str(path)


def _start_fleet(snapshot_path, ranges, replicas=1):
    shards = []
    urls_by_slot = []
    for rng in ranges:
        urls = []
        for _ in range(replicas):
            shard = ShardServer(
                snapshot_path, rng.addr_lo, rng.addr_hi, port=0
            )
            shard.start()
            shards.append(shard)
            urls.append(shard.url)
        urls_by_slot.append(urls)
    return shards, urls_by_slot


@pytest.fixture(scope="module")
def cluster(dataset, snapshot_path):
    """A 2-range x 1-replica in-process fleet behind a coordinator."""
    ranges = partition_bounds(dataset.addresses, 2)
    shards, urls_by_slot = _start_fleet(snapshot_path, ranges)
    routing = build_routing(ranges, urls_by_slot)
    coordinator = ClusterCoordinator(routing, port=0)
    coordinator.start()
    yield coordinator
    coordinator.stop()
    for shard in shards:
        shard.stop()


@pytest.fixture(scope="module")
def single(dataset):
    server = SnapshotServer(SnapshotIndex(dataset), port=0)
    server.start()
    yield server
    server.stop()


def _raw_get(base_url: str, target: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(base_url + target, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestPartitionPlan:
    def test_ranges_cover_and_do_not_overlap(self, dataset):
        ranges = partition_bounds(dataset.addresses, 4)
        assert len(ranges) == 4
        assert ranges[0].addr_lo is None
        assert ranges[-1].addr_hi is None
        for left, right in zip(ranges, ranges[1:]):
            assert left.addr_hi == right.addr_lo
        owners = range_indices(ranges, dataset.addresses)
        for owner, address in zip(owners, dataset.addresses):
            assert ranges[int(owner)].contains(int(address))

    def test_balanced_node_counts(self, dataset):
        ranges = partition_bounds(dataset.addresses, 3)
        owners = range_indices(ranges, dataset.addresses)
        counts = np.bincount(owners, minlength=3)
        assert counts.min() > 0.5 * counts.max()

    def test_single_range_is_unbounded(self, dataset):
        (only,) = partition_bounds(dataset.addresses, 1)
        assert only.addr_lo is None and only.addr_hi is None
        assert only.label() == "[*,*)"

    def test_more_ranges_than_addresses(self):
        addresses = np.array([5, 7], dtype=np.int64)
        ranges = partition_bounds(addresses, 5)
        assert len(ranges) == 5
        owners = range_indices(ranges, addresses)
        for owner, address in zip(owners, addresses):
            assert ranges[int(owner)].contains(int(address))

    def test_invalid_range_count(self):
        with pytest.raises(ServeError, match="n_ranges"):
            partition_bounds(np.array([1], dtype=np.int64), 0)

    def test_contains_half_open(self):
        rng = ShardRange(10, 20)
        assert rng.contains(10)
        assert rng.contains(19)
        assert not rng.contains(20)
        assert not rng.contains(9)
        assert rng.label() == "[10,20)"

    def test_absent_addresses_still_route(self, dataset):
        ranges = partition_bounds(dataset.addresses, 3)
        probe = np.array(
            [0, int(dataset.addresses.max()) + 10_000], dtype=np.int64
        )
        owners = range_indices(ranges, probe)
        assert int(owners[0]) == 0
        assert int(owners[1]) == 2


class TestPartitionIndex:
    def test_partition_nodes_are_the_owned_slice(
        self, dataset, snapshot_path
    ):
        ranges = partition_bounds(dataset.addresses, 2)
        total = 0
        for rng in ranges:
            index = SnapshotIndex.build_partition(
                snapshot_path, rng.addr_lo, rng.addr_hi
            )
            for address in index.dataset.addresses:
                assert rng.contains(int(address))
            total += index.dataset.n_nodes
        assert total == dataset.n_nodes

    def test_pair_count_partials_sum_to_exact(self, dataset):
        lats = dataset.lats[:200]
        lons = dataset.lons[:200]
        bin_miles = 35.0
        full = exact_pair_counts(lats, lons, bin_miles, N_BINS)
        split = np.zeros_like(full)
        for rows in (np.arange(0, 80), np.arange(80, 200)):
            split += exact_pair_counts_rows(
                lats, lons, rows, bin_miles, N_BINS
            )
        assert np.array_equal(full, split)


class TestBitIdentity:
    def _targets(self, dataset):
        addrs = [int(a) for a in dataset.addresses[:4]]
        absent = int(dataset.addresses.max()) + 1
        mapped = dataset.asns[dataset.asns != UNMAPPED_ASN]
        asn = int(mapped[0]) if mapped.size else 1
        return [
            f"/locate?address={addrs[0]}",
            f"/locate?address={absent}",
            "/locate?address=xyz",
            "/locate",
            f"/locate?addresses={addrs[0]},{absent},{addrs[1]},{addrs[0]}",
            "/locate?addresses=",
            "/near?lat=40&lon=-100&k=5",
            "/near?lat=40&lon=-100&radius=500&limit=3",
            "/near?lat=40",
            "/near?lat=40&lon=-100&k=0",
            "/near?lat=abc&lon=-100&k=5",
            f"/as/{asn}",
            "/as/999999",
            "/as/xyz",
            "/distance-preference?region=USA",
            "/distance-preference?region=USA&d=100",
            "/distance-preference?region=USA&d=-1",
            "/distance-preference?region=USA&d=abc",
            "/distance-preference?region=Nowhere",
            "/distance-preference",
            "/bogus",
        ]

    def test_every_endpoint_matches_single_process(
        self, dataset, cluster, single
    ):
        for target in self._targets(dataset):
            expected = _raw_get(single.url, target)
            actual = _raw_get(cluster.url, target)
            assert actual == expected, f"diverged on {target}"

    def test_near_merge_is_exhaustive(self, dataset, cluster, single):
        # k larger than any single shard's node count forces the merge
        # to interleave results from both ranges.
        target = f"/near?lat=40&lon=-100&k={dataset.n_nodes}"
        assert _raw_get(cluster.url, target) == _raw_get(single.url, target)

    def test_healthz_reports_full_snapshot_hash(
        self, dataset, cluster, single
    ):
        ours = json.loads(_raw_get(cluster.url, "/healthz")[1])
        theirs = json.loads(_raw_get(single.url, "/healthz")[1])
        assert ours["snapshot_hash"] == theirs["snapshot_hash"]
        assert ours["gen"] == 1

    def test_cluster_stats_shape(self, cluster):
        stats = json.loads(_raw_get(cluster.url, "/stats")[1])
        assert stats["cluster"]["gen"] == 1
        assert len(stats["cluster"]["ranges"]) == 2
        for slot in stats["cluster"]["ranges"]:
            assert slot["n_healthy"] == 1
            assert slot["replicas"][0]["healthy"] is True
        assert "shed_requests" in stats
        assert "queue_depth" in stats

    def test_metrics_include_shard_samples(self, cluster):
        _raw_get(cluster.url, "/locate?address=1")
        body = _raw_get(cluster.url, "/metrics")[1].decode()
        names = {
            line.split("{")[0].split()[0]
            for line in body.splitlines()
            if line and not line.startswith("#")
        }
        assert any(name.startswith("repro_coord_") for name in names)
        assert any(name.startswith("repro_serve_") for name in names)


class TestFailover:
    def test_dead_replica_fails_over_and_ejects(
        self, dataset, snapshot_path
    ):
        ranges = partition_bounds(dataset.addresses, 1)
        shards, urls_by_slot = _start_fleet(snapshot_path, ranges)
        dead_url = f"http://127.0.0.1:{_free_port()}"
        routing = Routing(
            1,
            ranges,
            [
                ReplicaSet(
                    [ShardClient(dead_url), ShardClient(urls_by_slot[0][0])]
                )
            ],
            shards[0].index.snapshot_hash,
        )
        coordinator = ClusterCoordinator(
            routing, port=0, health_interval_s=0.05
        )
        coordinator.start()
        try:
            client = SnapshotClient(coordinator.url)
            address = int(dataset.addresses[0])
            for _ in range(10):
                record = client.get("locate", address=address)
                assert record["address"] == address
            deadline = time.monotonic() + 10.0
            while routing.replica_sets[0].n_healthy != 1:
                assert time.monotonic() < deadline, "dead replica not ejected"
                time.sleep(0.05)
            snap = routing.replica_sets[0].snapshot()
            assert snap[0]["healthy"] is False
            assert snap[1]["healthy"] is True
        finally:
            coordinator.stop()
            for shard in shards:
                shard.stop()

    def test_ejected_replica_is_readmitted(self, dataset, snapshot_path):
        ranges = partition_bounds(dataset.addresses, 1)
        shards, urls_by_slot = _start_fleet(snapshot_path, ranges)
        late_port = _free_port()
        routing = Routing(
            1,
            ranges,
            [
                ReplicaSet(
                    [
                        ShardClient(f"http://127.0.0.1:{late_port}"),
                        ShardClient(urls_by_slot[0][0]),
                    ]
                )
            ],
            shards[0].index.snapshot_hash,
        )
        coordinator = ClusterCoordinator(
            routing, port=0, health_interval_s=0.05
        )
        coordinator.start()
        late = None
        try:
            deadline = time.monotonic() + 10.0
            while routing.replica_sets[0].n_healthy != 1:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            late = ShardServer(
                snapshot_path, None, None, port=late_port
            )
            late.start()
            shards.append(late)
            deadline = time.monotonic() + 10.0
            while routing.replica_sets[0].n_healthy != 2:
                assert time.monotonic() < deadline, "replica not readmitted"
                time.sleep(0.05)
        finally:
            coordinator.stop()
            for shard in shards:
                shard.stop()

    def test_all_replicas_down_is_503(self, dataset, snapshot_path):
        ranges = partition_bounds(dataset.addresses, 1)
        shard = ShardServer(snapshot_path, None, None, port=0)
        shard.start()
        routing = Routing(
            1,
            ranges,
            [ReplicaSet([ShardClient(f"http://127.0.0.1:{_free_port()}")])],
            shard.index.snapshot_hash,
        )
        coordinator = ClusterCoordinator(routing, port=0)
        coordinator.start()
        try:
            status, body = _raw_get(
                coordinator.url,
                f"/locate?address={int(dataset.addresses[0])}",
            )
            assert status == 503
            assert "retry_after_s" in json.loads(body)
        finally:
            coordinator.stop()
            shard.stop()


class TestShardClient:
    def test_rejects_url_without_port(self):
        with pytest.raises(ServeError, match="host and port"):
            ShardClient("http://localhost")

    def test_unreachable_then_blackout(self):
        client = ShardClient(f"http://127.0.0.1:{_free_port()}")
        with pytest.raises(ShardUnavailable, match="cannot reach"):
            client.get("/healthz")
        # The failed dial opens a blackout window: fail fast, no dial.
        with pytest.raises(ShardUnavailable, match="blackout"):
            client.get("/healthz")
        assert client.probe(timeout_s=0.2) is None

    def test_keep_alive_reuses_connection(self, cluster):
        client = ShardClient(cluster.url)
        try:
            assert client.get("/healthz")[0] == 200
            assert len(client._idle) == 1
            assert client.get("/healthz")[0] == 200
            assert len(client._idle) == 1
        finally:
            client.close()

    def test_replica_set_requires_clients(self):
        with pytest.raises(ServeError):
            ReplicaSet([])

    def test_replica_set_ejection_and_candidates(self):
        rset = ReplicaSet(
            [
                ShardClient("http://127.0.0.1:1"),
                ShardClient("http://127.0.0.1:2"),
            ],
            eject_after=2,
        )
        rset.record_failure(0)
        assert rset.is_healthy(0)
        rset.record_failure(0)
        assert not rset.is_healthy(0)
        # Unhealthy replicas go last, not away.
        assert [idx for idx, _ in rset.candidates()] == [1, 0]
        rset.record_success(0, 5.0)
        assert rset.is_healthy(0)

    def test_probe_accounting_leaves_traffic_stats_alone(self):
        rset = ReplicaSet([ShardClient("http://127.0.0.1:1")])
        rset.record_success(0, 8.0)
        before = rset.snapshot()[0]
        rset.record_probe(0, True)
        rset.record_probe(0, False)
        after = rset.snapshot()[0]
        assert after["requests"] == before["requests"] == 1
        assert after["ewma_latency_ms"] == before["ewma_latency_ms"]


class TestHotReload:
    def test_reload_swaps_answers_without_drops(
        self, dataset, snapshot_path, snapshot_b_path
    ):
        ranges = partition_bounds(dataset.addresses, 2)
        shards, urls_by_slot = _start_fleet(snapshot_path, ranges)
        routing = build_routing(ranges, urls_by_slot)
        coordinator = ClusterCoordinator(
            routing, port=0, health_interval_s=0.1
        )
        coordinator.start()
        address = int(dataset.addresses[0])
        failures: list[str] = []
        stop = threading.Event()

        def hammer() -> None:
            client = SnapshotClient(coordinator.url)
            while not stop.is_set():
                try:
                    client.get("locate", address=address)
                except Exception as exc:  # noqa: BLE001 - recording all
                    failures.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        try:
            before = SnapshotClient(coordinator.url).get(
                "locate", address=address
            )
            for thread in threads:
                thread.start()
            result = coordinator.reload(snapshot_b_path)
            stop.set()
            for thread in threads:
                thread.join()
            assert result["gen"] == 2
            assert result["staged_replicas"] == len(shards)
            assert failures == []
            after = SnapshotClient(coordinator.url).get(
                "locate", address=address
            )
            assert after["lat"] == pytest.approx(before["lat"] + 1.0)
            # The shards dropped the old generation entirely.
            shard_stats = shards[0].stats()["shard"]
            assert shard_stats["staged_gens"] == [2]
            assert coordinator.routing.gen == 2
        finally:
            stop.set()
            coordinator.stop()
            for shard in shards:
                shard.stop()

    def test_unknown_pinned_generation_answers_503(
        self, dataset, snapshot_path
    ):
        shard = ShardServer(snapshot_path, None, None, port=0)
        shard.start()
        try:
            status, body = _raw_get(
                shard.url, "/locate?address=1&_gen=99"
            )
            assert status == 503
            assert "generation 99" in json.loads(body)["error"]
        finally:
            shard.stop()

    def test_reload_missing_snapshot_is_rejected(
        self, dataset, snapshot_path, tmp_path
    ):
        ranges = partition_bounds(dataset.addresses, 1)
        shards, urls_by_slot = _start_fleet(snapshot_path, ranges)
        routing = build_routing(ranges, urls_by_slot)
        coordinator = ClusterCoordinator(routing, port=0)
        coordinator.start()
        try:
            with pytest.raises(ServeError):
                coordinator.reload(tmp_path / "missing.npz")
            # The fleet still serves generation 1 afterwards.
            assert coordinator.routing.gen == 1
            status, _ = _raw_get(
                coordinator.url,
                f"/locate?address={int(dataset.addresses[0])}",
            )
            assert status == 200
        finally:
            coordinator.stop()
            for shard in shards:
                shard.stop()


class TestMergeExpositions:
    def test_sums_matching_series(self):
        merged = merge_expositions(
            [
                'serve_requests_total{endpoint="locate"} 3\nup 1\n',
                'serve_requests_total{endpoint="locate"} 4\nup 1\n',
            ]
        )
        assert 'serve_requests_total{endpoint="locate"} 7' in merged
        assert "up 2" in merged

    def test_disjoint_series_pass_through(self):
        merged = merge_expositions(["a_total 1\n", "b_total 2.5\n"])
        assert "a_total 1" in merged
        assert "b_total 2.5" in merged

    def test_empty_input(self):
        assert merge_expositions([]) == ""
