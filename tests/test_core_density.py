"""Tests for repro.core.density (Section IV analyses)."""

import numpy as np
import pytest

from repro.core.density import (
    density_variation,
    homogeneity_table,
    patch_regression,
    region_density_row,
    region_density_table,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.regions import Region
from repro.population.worldmodel import EconomicZone, PopulationField


def _field(lats, lons, weights, online=None) -> PopulationField:
    lats = np.asarray(lats, dtype=float)
    weights = np.asarray(weights, dtype=float)
    zone = EconomicZone(
        name="T",
        box=Region("T box", north=90.0, south=-90.0, west=-180.0, east=180.0),
        population_millions=max(weights.sum() / 1e6, 1e-3),
        online_millions=max(weights.sum() / 2e6, 1e-4),
        n_synthetic_cities=1,
    )
    return PopulationField(
        lats=lats,
        lons=np.asarray(lons, dtype=float),
        weights=weights,
        online_weights=(
            np.asarray(online, dtype=float) if online is not None else weights / 2.0
        ),
        zone_index=np.zeros(lats.shape[0], dtype=np.intp),
        zones=(zone,),
    )


def _dataset(lats, lons) -> MappedDataset:
    lats = np.asarray(lats, dtype=float)
    n = lats.shape[0]
    return MappedDataset(
        label="d",
        kind="skitter",
        addresses=np.arange(n, dtype=np.int64),
        lats=lats,
        lons=np.asarray(lons, dtype=float),
        asns=np.ones(n, dtype=np.int64),
        links=np.empty((0, 2), dtype=np.intp),
    )


REGION = Region("R", north=10.0, south=0.0, west=0.0, east=10.0)


class TestRegionDensityRow:
    def test_basic_ratios(self):
        field = _field([5.0, 5.0], [5.0, 6.0], [1000.0, 3000.0])
        ds = _dataset([5.0, 5.1, 5.2, 20.0], [5.0, 5.0, 5.0, 5.0])
        row = region_density_row(ds, field, REGION)
        assert row.n_nodes == 3  # the 20N node is outside
        assert row.people_per_node == pytest.approx(4000.0 / 3)
        assert row.online_per_node == pytest.approx(2000.0 / 3)

    def test_empty_region_raises(self):
        field = _field([5.0], [5.0], [100.0])
        ds = _dataset([50.0], [50.0])
        with pytest.raises(AnalysisError):
            region_density_row(ds, field, REGION)


class TestDensityTables:
    def test_table3_shape_on_pipeline(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        rows = region_density_table(ds, pipeline_small.world.field)
        names = [r.region for r in rows]
        assert "USA" in names and "World" in names

    def test_paper_contrast_people_vs_online(self, pipeline_small):
        # The planted Table III contrast: people/node varies far more
        # than online/node across economic regions.
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        rows = region_density_table(ds, pipeline_small.world.field)
        named = [r for r in rows if r.region != "World"]
        people_var, online_var = density_variation(named)
        assert people_var > 5 * online_var
        assert people_var > 20

    def test_homogeneity_table_shape(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        rows = homogeneity_table(ds, pipeline_small.world.field)
        by_name = {r.region: r for r in rows}
        assert set(by_name) == {"Northern US", "Southern US", "Central Am."}
        # The two US halves are similar; Central America is far off.
        north = by_name["Northern US"].people_per_node
        south = by_name["Southern US"].people_per_node
        central = by_name["Central Am."].people_per_node
        assert max(north, south) / min(north, south) < 4.0
        assert central > 5 * max(north, south)

    def test_density_variation_empty_raises(self):
        with pytest.raises(AnalysisError):
            density_variation([])


class TestPatchRegression:
    def test_planted_power_law_recovered(self):
        # Build a field and node set where nodes-per-cell follows
        # population^1.5 exactly, then check the fitted slope.
        rng = np.random.default_rng(0)
        cell_lats, cell_lons, pops, node_lats, node_lons = [], [], [], [], []
        for i in range(60):
            lat = 0.5 + (i % 8)
            lon = 0.5 + (i // 8)
            # Keep populations high enough that the integer node count
            # never floors to a constant (which would flatten the slope).
            pop = float(10 ** rng.uniform(3.3, 5))
            cell_lats.append(lat)
            cell_lons.append(lon)
            pops.append(pop)
            n_nodes = int(round((pop / 1e3) ** 1.5))
            node_lats.extend([lat] * n_nodes)
            node_lons.extend([lon] * n_nodes)
        field = _field(cell_lats, cell_lons, pops)
        ds = _dataset(node_lats, node_lons)
        panel = patch_regression(ds, field, REGION, cell_arcmin=60.0)
        assert panel.fit.slope == pytest.approx(1.5, abs=0.15)

    def test_superlinear_slope_on_pipeline(self, pipeline_small):
        from repro.geo.regions import US

        ds = pipeline_small.dataset("IxMapper", "Skitter")
        panel = patch_regression(ds, pipeline_small.world.field, US)
        assert panel.fit.slope > 0.9  # superlinearity is noisy at test scale
        assert panel.fit.n >= 10

    def test_loglog_points_positive_only(self, pipeline_small):
        from repro.geo.regions import US

        ds = pipeline_small.dataset("IxMapper", "Skitter")
        panel = patch_regression(ds, pipeline_small.world.field, US)
        log_pop, log_nodes = panel.loglog_points()
        assert np.all(np.isfinite(log_pop))
        assert log_pop.shape == log_nodes.shape

    def test_empty_region_raises(self):
        field = _field([5.0], [5.0], [100.0])
        ds = _dataset([5.0], [5.0])
        empty = Region("empty", north=-50.0, south=-60.0, west=0.0, east=10.0)
        with pytest.raises(AnalysisError):
            patch_regression(ds, field, empty)
