"""End-to-end acceptance tests: the pipeline recovers the planted laws.

These tests encode DESIGN.md's acceptance criteria at test scale.  The
bands are deliberately loose (the small scenario is noisy); the
benchmark harness exercises the tight full-scale bands.
"""

import numpy as np

from repro.core import experiments
from repro.core.asgeo import as_size_measures, hull_areas, size_correlations
from repro.core.density import patch_regression
from repro.core.distance import preference_function, sensitivity_limit
from repro.geo.regions import US


class TestDensityRecovery:
    def test_people_per_node_contrast(self, pipeline_small):
        """T3: people/node varies widely, online/node narrowly."""
        result = experiments.table3(pipeline_small)
        assert result.people_variation > 15
        assert result.online_variation < result.people_variation / 3

    def test_homogeneity_contrast(self, pipeline_small):
        """T4: US halves similar, Central America far off."""
        rows = {r.region: r for r in experiments.table4(pipeline_small)}
        north = rows["Northern US"].people_per_node
        south = rows["Southern US"].people_per_node
        central = rows["Central Am."].people_per_node
        assert max(north, south) / min(north, south) < 4
        assert central / max(north, south) > 5

    def test_superlinear_density_us(self, pipeline_small):
        """F2: the US panel's fitted slope exceeds 1 (superlinearity)."""
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        panel = patch_regression(ds, pipeline_small.world.field, US)
        assert panel.fit.slope > 1.0


class TestDistanceRecovery:
    def test_two_regime_structure_us(self, pipeline_small):
        """F4/F5/T5: exponential small-d decay, most links below limit."""
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        pref = preference_function(ds, US, bin_miles=35.0)
        result = sensitivity_limit(pref)
        assert result.waxman.fit.slope < 0
        assert result.fraction_below > 0.6
        # The planted US Waxman scale is 140 miles; expect the right
        # order of magnitude even at test scale.
        assert 30.0 < result.waxman.l_miles < 600.0

    def test_consistency_across_measurements(self, pipeline_small):
        """T5: Mercator and Skitter agree on the US sensitivity limit."""
        limits = {}
        for measurement in ("Mercator", "Skitter"):
            ds = pipeline_small.dataset("IxMapper", measurement)
            pref = preference_function(ds, US, bin_miles=35.0)
            limits[measurement] = sensitivity_limit(pref).fraction_below
        assert abs(limits["Mercator"] - limits["Skitter"]) < 0.25


class TestAsRecovery:
    def test_size_measures_correlated(self, pipeline_small):
        """F8: all three pairwise correlations positive."""
        table = as_size_measures(pipeline_small.dataset("IxMapper", "Skitter"))
        corr = size_correlations(table)
        assert corr.pearson_nodes_locations > 0.5
        assert corr.pearson_nodes_degree > 0.3
        assert corr.pearson_locations_degree > 0.3

    def test_majority_zero_extent(self, pipeline_small):
        """F9: most ASes have zero hull area."""
        hulls = hull_areas(pipeline_small.dataset("IxMapper", "Skitter"))
        assert hulls.zero_fraction > 0.4

    def test_intradomain_majority_and_shorter(self, pipeline_small):
        """T6: intradomain links dominate and are shorter."""
        rows = experiments.table6(pipeline_small)
        world = rows[0]
        assert world.intradomain_fraction > 0.7
        # The ~2x length ratio is a full-scale property (asserted in the
        # benchmarks); at test scale just require a clear ordering.
        assert world.mean_interdomain_miles > 1.1 * world.mean_intradomain_miles


class TestCrossToolConsistency:
    def test_conclusions_robust_across_mappers(self, pipeline_small):
        """The paper's headline: results consistent across both mappers."""
        fractions = {}
        for mapper in ("IxMapper", "EdgeScape"):
            ds = pipeline_small.dataset(mapper, "Skitter")
            pref = preference_function(ds, US, bin_miles=35.0)
            fractions[mapper] = sensitivity_limit(pref).fraction_below
        assert abs(fractions["IxMapper"] - fractions["EdgeScape"]) < 0.25

    def test_dataset_sizes_agree_across_mappers(self, pipeline_small):
        rows = {r.label: r for r in experiments.table1(pipeline_small)}
        ix = rows["IxMapper, Skitter"].n_nodes
        es = rows["EdgeScape, Skitter"].n_nodes
        assert abs(ix - es) / max(ix, es) < 0.1


class TestGeneratorComparison:
    def test_geogen_matches_measured_shape_er_does_not(self, pipeline_small):
        """X2: GeoGen decays with distance; ER does not."""
        from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree
        from repro.generators.geogen import GeoGenConfig, geogen_graph
        from repro.geo.regions import WORLD

        geo = geogen_graph(
            pipeline_small.world,
            GeoGenConfig(n_nodes=800, n_ases=30),
            np.random.default_rng(0),
        )
        geo_cmp = experiments.compare_generator(
            geo.graph, region=WORLD, bin_miles=50.0
        )
        er = erdos_renyi_for_mean_degree(
            600, 4.0, np.random.default_rng(1),
            south=26.0, north=49.0, west=-124.0, east=-66.0,
        )
        er_cmp = experiments.compare_generator(er, region=US, bin_miles=35.0)
        assert geo_cmp.decay_slope < -0.002
        assert np.isnan(er_cmp.decay_slope) or abs(er_cmp.decay_slope) < 0.004
