"""Tests for repro.population.cities."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.population.cities import (
    City,
    seed_cities,
    seed_zone_names,
    synthesize_cities,
    zipf_populations,
)
from repro.geo.coords import GeoPoint


class TestCity:
    def test_valid_city(self):
        c = City("Testville", "TST", GeoPoint(10.0, 20.0), 1e5, "USA")
        assert c.code == "TST"

    def test_lowercase_code_rejected(self):
        with pytest.raises(ConfigError):
            City("x", "abc", GeoPoint(0.0, 0.0), 1e5, "USA")

    def test_empty_code_rejected(self):
        with pytest.raises(ConfigError):
            City("x", "", GeoPoint(0.0, 0.0), 1e5, "USA")

    def test_non_positive_population_rejected(self):
        with pytest.raises(ConfigError):
            City("x", "XXX", GeoPoint(0.0, 0.0), 0.0, "USA")


class TestSeedCities:
    def test_all_zones_have_seeds(self):
        for zone in seed_zone_names():
            cities = seed_cities(zone)
            assert len(cities) >= 7

    def test_unknown_zone_raises(self):
        with pytest.raises(ConfigError):
            seed_cities("Narnia")

    def test_seed_codes_unique_within_zone(self):
        for zone in seed_zone_names():
            codes = [c.code for c in seed_cities(zone)]
            assert len(codes) == len(set(codes))

    def test_seed_codes_unique_globally(self):
        codes = [
            c.code for zone in seed_zone_names() for c in seed_cities(zone)
        ]
        assert len(codes) == len(set(codes))

    def test_known_city_coordinates(self):
        usa = {c.code: c for c in seed_cities("USA")}
        nyc = usa["NYC"]
        assert nyc.location.lat == pytest.approx(40.71, abs=0.1)
        assert nyc.location.lon == pytest.approx(-74.01, abs=0.1)

    def test_populations_are_plausible(self):
        for zone in seed_zone_names():
            for city in seed_cities(zone):
                assert 1e4 < city.population < 5e7


class TestZipfPopulations:
    def test_follows_zipf_law(self):
        sizes = zipf_populations(100, largest=1e6, exponent=1.0, floor=1.0)
        assert sizes[0] == pytest.approx(1e6)
        assert sizes[9] == pytest.approx(1e5)

    def test_floor_applied(self):
        sizes = zipf_populations(1000, largest=1e5, floor=5e3)
        assert sizes.min() == pytest.approx(5e3)

    def test_monotone_non_increasing(self):
        sizes = zipf_populations(50, largest=1e6)
        assert np.all(np.diff(sizes) <= 0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigError):
            zipf_populations(0, largest=1e6)
        with pytest.raises(ConfigError):
            zipf_populations(10, largest=-1.0)
        with pytest.raises(ConfigError):
            zipf_populations(10, largest=1e6, exponent=0.0)


class TestSynthesizeCities:
    def _make(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        return synthesize_cities(
            "USA", 50.0, 24.0, -130.0, -65.0, n_synthetic=n, rng=rng,
            zone_tag="6",
        )

    def test_counts(self):
        cities = self._make(40)
        assert len(cities) == len(seed_cities("USA")) + 40

    def test_synthetic_cities_inside_box(self):
        for city in self._make(60):
            if city.name.startswith("USA town"):
                assert 24.0 <= city.location.lat <= 50.0
                assert -130.0 <= city.location.lon <= -65.0

    def test_synthetic_codes_unique_and_tagged(self):
        cities = self._make(80)
        codes = [c.code for c in cities]
        assert len(codes) == len(set(codes))
        synthetic = [c.code for c in cities if c.name.startswith("USA town")]
        assert all(code.startswith("6") for code in synthetic)

    def test_synthetic_smaller_than_seeds(self):
        cities = self._make(30)
        seeds = [c for c in cities if not c.name.startswith("USA town")]
        synth = [c for c in cities if c.name.startswith("USA town")]
        assert max(s.population for s in synth) <= min(
            s.population for s in seeds
        )

    def test_zero_synthetic_returns_seeds_only(self):
        rng = np.random.default_rng(1)
        cities = synthesize_cities(
            "Japan", 46.0, 30.0, 129.0, 146.0, n_synthetic=0, rng=rng
        )
        assert len(cities) == len(seed_cities("Japan"))

    def test_deterministic_given_seed(self):
        a = self._make(25, seed=5)
        b = self._make(25, seed=5)
        assert [(c.code, c.location) for c in a] == [
            (c.code, c.location) for c in b
        ]
