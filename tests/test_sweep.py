"""Tests for the sweep engine: spec, store, worker, engine, aggregate.

The fault-injection suite exercises the failure modes the engine must
survive: a trial that raises every time, a flaky trial, a hanging trial
under a timeout, a worker that dies mid-trial (broken pool), and a
campaign interrupted mid-flight then resumed — asserting exactly-once
trial rows and aggregates identical to an uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core.experiments import compare_generator, dataset_from_graph
from repro.errors import SweepError
from repro.generators import waxman_graph
from repro.obs import validate_report
from repro.sweep import (
    InjectedFailure,
    ResultStore,
    SweepSpec,
    TrialTimeout,
    aggregate_campaign,
    bootstrap_ci,
    build_scenario,
    build_sweep_report,
    diff_sweep_reports,
    execute_trial,
    load_spec,
    render_sweep_report,
    run_campaign,
    score_generators,
    validate_sweep_report,
    write_sweep_report,
)

SYNTH = {"duration_s": 0.01}
FAST = dict(trial_timeout_s=30.0, retry_backoff_s=0.01)


def synth_spec(name, seeds=(1, 2, 3), **kwargs):
    merged = {**FAST, **kwargs}
    return SweepSpec(name=name, seeds=tuple(seeds), synthetic=(SYNTH,), **merged)


# -- spec ---------------------------------------------------------------------


class TestSpec:
    def test_expansion_is_deterministic(self):
        spec = SweepSpec(
            name="x",
            seeds=(1, 2),
            pipeline=({"scale": "tiny"},),
            generators=({"generator": "waxman", "n": 100},),
        )
        first = spec.expand()
        second = spec.expand()
        assert [t.key for t in first] == [t.key for t in second]
        assert len(first) == 4
        assert len({t.key for t in first}) == 4

    def test_cell_excludes_seed(self):
        spec = SweepSpec(name="x", seeds=(1, 2), synthetic=(SYNTH,))
        cells = {json.dumps(t.cell, sort_keys=True) for t in spec.expand()}
        assert len(cells) == 1

    def test_sampling_and_budget(self):
        spec = SweepSpec(
            name="x", seeds=tuple(range(20)), synthetic=(SYNTH,), sample=7
        )
        trials = spec.expand()
        assert len(trials) == 7
        assert [t.key for t in trials] == [t.key for t in spec.expand()]
        capped = SweepSpec(
            name="x", seeds=tuple(range(20)), synthetic=(SYNTH,), max_trials=5
        )
        assert len(capped.expand()) == 5

    def test_injection_lands_on_final_index(self):
        spec = SweepSpec(
            name="x", seeds=(1, 2, 3), synthetic=(SYNTH,), inject={1: "raise"}
        )
        trials = spec.expand()
        assert trials[1].inject == "raise"
        assert trials[0].inject is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", seeds=(1,), synthetic=(SYNTH,)),
            dict(name="x", seeds=(), synthetic=(SYNTH,)),
            dict(name="x", seeds=(1,)),
            dict(name="x", seeds=(1,), synthetic=(SYNTH,), sample=0),
            dict(name="x", seeds=(1,), synthetic=(SYNTH,), trial_timeout_s=-1),
            dict(name="x", seeds=(1,), pipeline=({"scale": "galactic"},)),
            dict(name="x", seeds=(1,), synthetic=(SYNTH,), inject={0: "nope"}),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SweepError):
            SweepSpec(**kwargs)

    def test_round_trip_and_digest(self, tmp_path):
        spec = SweepSpec(
            name="x", seeds=(1, 2), synthetic=(SYNTH,), inject={0: "flaky"}
        )
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()
        other = SweepSpec(name="x", seeds=(1, 3), synthetic=(SYNTH,))
        assert other.digest() != spec.digest()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_spec(path) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SweepError, match="unknown sweep spec fields"):
            SweepSpec.from_dict({"name": "x", "seeds": [1], "bogus": 1})

    def test_build_scenario_overrides(self):
        config = build_scenario(
            5, scale="tiny", overrides={"ground_truth.total_routers": 999}
        )
        assert config.seed == 5
        assert config.ground_truth.total_routers == 999
        with pytest.raises(SweepError, match="unknown config override"):
            build_scenario(5, overrides={"no.such.path": 1})


# -- store --------------------------------------------------------------------


class TestStore:
    def test_register_is_idempotent(self, tmp_path):
        spec = synth_spec("idem")
        store = ResultStore(tmp_path / "s.db")
        cid = store.ensure_campaign(spec)
        trials = spec.expand()
        store.register_trials(cid, trials)
        store.register_trials(cid, trials)
        assert len(list(store.trial_rows(cid))) == len(trials)

    def test_resume_refuses_changed_spec(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        store.ensure_campaign(synth_spec("c"))
        with pytest.raises(SweepError, match="different"):
            store.ensure_campaign(synth_spec("c", seeds=(9,)))

    def test_success_replaces_metrics(self, tmp_path):
        spec = synth_spec("m", seeds=(1,))
        store = ResultStore(tmp_path / "s.db")
        cid = store.ensure_campaign(spec)
        (trial,) = spec.expand()
        store.register_trials(cid, [trial])
        store.record_success(cid, trial.key, metrics={"a": 1.0}, wall_s=0.1)
        store.record_success(cid, trial.key, metrics={"b": 2.0}, wall_s=0.1)
        (row,) = store.trial_rows(cid)
        assert row.metrics == {"b": 2.0}
        assert row.status == "done"

    def test_reset_incomplete(self, tmp_path):
        spec = synth_spec("r", seeds=(1,))
        store = ResultStore(tmp_path / "s.db")
        cid = store.ensure_campaign(spec)
        (trial,) = spec.expand()
        store.register_trials(cid, [trial])
        store.mark_running(cid, trial.key, 0)
        assert store.reset_incomplete(cid) == 1
        assert store.statuses(cid)[trial.key] == "pending"


# -- worker -------------------------------------------------------------------


def payload_for(spec, index=0, attempt=0):
    trial = spec.expand()[index]
    payload = trial.payload(attempt, spec.trial_timeout_s)
    payload["cache_dir"] = spec.cache_dir
    return payload


class TestWorker:
    def test_synthetic_trial_returns_report(self):
        spec = synth_spec("w", seeds=(4,))
        result = execute_trial(payload_for(spec))
        assert result["metrics"]["duration_s"] == pytest.approx(0.01)
        report = result["report"]
        assert validate_report(report) == []
        assert report["seed"] == 4
        assert any(s["name"] == "sweep:trial" for s in report["spans"])

    def test_generator_trial_metrics(self):
        spec = SweepSpec(
            name="w",
            seeds=(3,),
            generators=({"generator": "waxman", "n": 150, "alpha": 0.1,
                         "beta": 0.05},),
            **FAST,
        )
        result = execute_trial(payload_for(spec))
        metrics = result["metrics"]
        assert metrics["n_nodes"] == 150
        assert "decay_slope" in metrics
        assert execute_trial(payload_for(spec))["metrics"] == metrics

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepError, match="unknown trial kind"):
            execute_trial({"kind": "nope", "key": "k", "seed": 1, "params": {}})

    def test_injected_raise(self):
        spec = synth_spec("w", seeds=(1,), inject={0: "raise"})
        with pytest.raises(InjectedFailure):
            execute_trial(payload_for(spec))

    def test_flaky_fails_only_first_attempt(self):
        spec = synth_spec("w", seeds=(1,), inject={0: "flaky"})
        with pytest.raises(InjectedFailure):
            execute_trial(payload_for(spec, attempt=0))
        assert execute_trial(payload_for(spec, attempt=1))["metrics"]

    def test_hang_hits_timeout(self):
        spec = synth_spec(
            "w", seeds=(1,), inject={0: "hang"}, trial_timeout_s=0.2
        )
        with pytest.raises(TrialTimeout):
            execute_trial(payload_for(spec))


# -- engine -------------------------------------------------------------------


class TestEngineInline:
    def test_completes_and_retries_flaky(self, tmp_path):
        spec = synth_spec("e", inject={0: "flaky"})
        store = ResultStore(tmp_path / "e.db")
        summary = run_campaign(spec, store, workers=0)
        assert summary.completed == 3
        assert summary.retried == 1
        assert summary.failed == 0
        assert not summary.interrupted

    def test_permanent_failure_does_not_kill_campaign(self, tmp_path):
        spec = synth_spec("e", inject={1: "raise"}, max_retries=1)
        store = ResultStore(tmp_path / "e.db")
        summary = run_campaign(spec, store, workers=0)
        assert summary.completed == 2
        assert summary.failed == 1
        cid = store.campaign_id("e")
        failed = [r for r in store.trial_rows(cid) if r.status == "failed"]
        assert len(failed) == 1
        assert "InjectedFailure" in failed[0].error
        assert failed[0].attempts == 2

    def test_rerun_of_done_campaign_skips_everything(self, tmp_path):
        spec = synth_spec("e")
        store = ResultStore(tmp_path / "e.db")
        run_campaign(spec, store, workers=0)
        again = run_campaign(spec, store, workers=0)
        assert again.skipped == 3
        assert again.completed == 0

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(SweepError):
            run_campaign(synth_spec("e"), ResultStore(tmp_path / "e.db"),
                         workers=-1)


class TestEnginePool:
    def test_crash_recovery(self, tmp_path):
        spec = synth_spec("crash", inject={0: "crash_once"})
        store = ResultStore(tmp_path / "c.db")
        summary = run_campaign(
            spec, store, workers=1, start_method="fork"
        )
        assert summary.completed == 3
        assert summary.failed == 0
        assert summary.crash_recoveries >= 1

    def test_hang_recorded_failed(self, tmp_path):
        spec = synth_spec(
            "hang", seeds=(1, 2), inject={0: "hang"},
            trial_timeout_s=0.3, max_retries=0,
        )
        store = ResultStore(tmp_path / "h.db")
        summary = run_campaign(spec, store, workers=1, start_method="fork")
        assert summary.completed == 1
        assert summary.failed == 1
        cid = store.campaign_id("hang")
        failed = [r for r in store.trial_rows(cid) if r.status == "failed"]
        assert "TrialTimeout" in failed[0].error

    def test_interrupt_and_resume_exactly_once(self, tmp_path):
        spec = synth_spec("resume", seeds=(1, 2, 3, 4, 5))

        interrupted_store = ResultStore(tmp_path / "a.db")
        first = run_campaign(
            spec, interrupted_store, workers=2, start_method="fork",
            stop_after=2,
        )
        assert first.interrupted
        assert first.completed >= 2
        second = run_campaign(
            spec, interrupted_store, workers=2, start_method="fork"
        )
        assert not second.interrupted
        assert second.skipped == first.completed
        cid = interrupted_store.campaign_id("resume")
        rows = list(interrupted_store.trial_rows(cid))
        assert len(rows) == 5
        assert all(r.status == "done" for r in rows)

        control_store = ResultStore(tmp_path / "b.db")
        run_campaign(spec, control_store, workers=2, start_method="fork")

        def stable(store):
            report = build_sweep_report(store, "resume")
            report.pop("created_unix")
            for cell in report["cells"]:
                cell["metrics"].pop("wall_s", None)
            return report

        assert stable(interrupted_store) == stable(control_store)

    def test_keyboard_interrupt_via_hook(self, tmp_path):
        spec = synth_spec("sigint", seeds=(1, 2, 3, 4))
        store = ResultStore(tmp_path / "k.db")
        seen = []

        def hook(trial, status):
            seen.append(status)
            if len(seen) == 1:
                raise KeyboardInterrupt

        summary = run_campaign(
            spec, store, workers=1, start_method="fork", on_trial=hook
        )
        assert summary.interrupted
        resumed = run_campaign(spec, store, workers=1, start_method="fork")
        assert not resumed.interrupted
        cid = store.campaign_id("sigint")
        assert all(r.status == "done" for r in store.trial_rows(cid))

    def test_spawn_start_method(self, tmp_path):
        spec = synth_spec("spawn", seeds=(1, 2))
        store = ResultStore(tmp_path / "s.db")
        summary = run_campaign(spec, store, workers=2, start_method="spawn")
        assert summary.completed == 2
        assert summary.failed == 0


# -- aggregate ----------------------------------------------------------------


class TestAggregate:
    def test_bootstrap_ci_deterministic_and_ordered(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = bootstrap_ci(values, seed=3)
        assert (lo, hi) == bootstrap_ci(values, seed=3)
        assert lo <= 3.0 <= hi
        assert bootstrap_ci([7.0]) == (7.0, 7.0)
        with pytest.raises(SweepError):
            bootstrap_ci([])
        with pytest.raises(SweepError):
            bootstrap_ci(values, alpha=1.5)

    def test_aggregation_groups_by_cell(self, tmp_path):
        spec = SweepSpec(
            name="agg", seeds=(1, 2, 3),
            synthetic=({"duration_s": 0.01}, {"duration_s": 0.02}),
            **FAST,
        )
        store = ResultStore(tmp_path / "a.db")
        run_campaign(spec, store, workers=0)
        cells = aggregate_campaign(store, "agg")
        assert len(cells) == 2
        for cell in cells:
            assert cell.n_done == 3
            assert cell.metrics["duration_s"].n == 3

    def test_generator_scoring_prefers_closer_config(self, tmp_path):
        spec = SweepSpec(
            name="score", seeds=(1, 2),
            pipeline=({"scale": "tiny"},),
            generators=(
                {"generator": "geogen", "n": 400, "n_ases": 30},
                {"generator": "er", "n": 400, "p": 0.004},
            ),
            **FAST,
        )
        store = ResultStore(tmp_path / "g.db")
        summary = run_campaign(spec, store, workers=0)
        assert summary.failed == 0
        scores = score_generators(aggregate_campaign(store, "score"))
        assert [entry["rank"] for entry in scores] == [1, 2]
        by_name = {
            entry["cell"]["generator"]: entry["score"] for entry in scores
        }
        # GeoGen places nodes by population and wires distance-sensitive
        # links; ER does neither, so GeoGen must score closer to the
        # empirical pipeline cells.
        assert by_name["geogen"] < by_name["er"]

    def test_report_round_trip_and_diff(self, tmp_path):
        spec = synth_spec("rep", seeds=(1, 2, 3))
        store = ResultStore(tmp_path / "r.db")
        run_campaign(spec, store, workers=0)
        payload = build_sweep_report(store, "rep")
        validate_sweep_report(payload)
        assert "campaign rep" in render_sweep_report(payload)
        path = write_sweep_report(payload, tmp_path / "rep.json")
        clean = diff_sweep_reports(payload, json.loads(path.read_text()))
        assert clean.clean

        shifted = json.loads(json.dumps(payload))
        cell = shifted["cells"][0]
        metric = cell["metrics"]["value"]
        metric["mean"] += 100 * max(metric["hi"] - metric["lo"], 1e-6)
        outcome = diff_sweep_reports(payload, shifted)
        assert not outcome.clean
        assert any("shifted" in line for line in outcome.regressions)

        missing = json.loads(json.dumps(payload))
        missing["cells"] = []
        drifted = diff_sweep_reports(payload, missing)
        assert any("disappeared" in line for line in drifted.drifts)
        with pytest.raises(SweepError):
            diff_sweep_reports(payload, payload, threshold=0)

    def test_validate_rejects_foreign_payloads(self):
        with pytest.raises(SweepError):
            validate_sweep_report({"schema": "repro-run-report"})
        with pytest.raises(SweepError):
            validate_sweep_report([])


# -- seed propagation (generators -> comparison) ------------------------------


class TestSeedPropagation:
    def test_generated_graph_records_seed(self):
        graph = waxman_graph(80, 0.1, 0.1, 7)
        assert graph.seed == 7

    def test_comparison_and_dataset_carry_seed(self):
        graph = waxman_graph(80, 0.1, 0.1, 7)
        dataset = dataset_from_graph(graph)
        assert dataset.label.endswith("#7")
        from repro.geo.regions import US

        comparison = compare_generator(graph, US, 35.0)
        assert comparison.seed == 7

    def test_explicit_generator_keeps_seed_none(self):
        import numpy as np

        graph = waxman_graph(80, 0.1, 0.1, np.random.default_rng(7))
        assert graph.seed is None
        assert "#" not in dataset_from_graph(graph).label


# -- cli ----------------------------------------------------------------------


class TestSweepCli:
    def test_run_status_report_diff_flow(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            synth_spec("cli", seeds=(1, 2), inject={0: "flaky"}).to_dict()
        ))
        db = tmp_path / "sweep.db"
        code = cli_main([
            "sweep", "run", str(spec_path), "--db", str(db), "--workers", "0",
        ])
        assert code == 0
        code = cli_main(["sweep", "status", "--db", str(db), "cli"])
        assert code == 0
        assert "2/2 done" in capsys.readouterr().out
        out = tmp_path / "rep.json"
        code = cli_main([
            "sweep", "report", "cli", "--db", str(db), "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert cli_main(["report", "diff", str(out), str(out)]) == 0

    def test_interrupted_run_exits_nonzero_then_resume(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            synth_spec("cli2", seeds=(1, 2, 3)).to_dict()
        ))
        db = tmp_path / "sweep.db"
        code = cli_main([
            "sweep", "run", str(spec_path), "--db", str(db),
            "--workers", "0", "--stop-after", "1",
        ])
        assert code == 1
        code = cli_main([
            "sweep", "resume", "cli2", "--db", str(db), "--workers", "0",
        ])
        assert code == 0

    def test_diff_rejects_mixed_schemas(self, tmp_path):
        sweep_path = tmp_path / "sweep.json"
        spec = synth_spec("mix", seeds=(1,))
        store = ResultStore(tmp_path / "m.db")
        run_campaign(spec, store, workers=0)
        write_sweep_report(build_sweep_report(store, "mix"), sweep_path)
        run_path = tmp_path / "run.json"
        run_path.write_text(json.dumps({"schema": "repro-run-report"}))
        code = cli_main(["report", "diff", str(sweep_path), str(run_path)])
        assert code == 2

    def test_status_without_campaign_lists_all(self, tmp_path, capsys):
        db = tmp_path / "sweep.db"
        store = ResultStore(db)
        run_campaign(synth_spec("lst", seeds=(1,)), store, workers=0)
        assert cli_main(["sweep", "status", "--db", str(db)]) == 0
        assert "lst" in capsys.readouterr().out

    def test_unknown_campaign_is_invalid(self, tmp_path):
        db = tmp_path / "sweep.db"
        ResultStore(db)
        assert cli_main(["sweep", "report", "ghost", "--db", str(db)]) == 2
