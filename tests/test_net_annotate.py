"""Tests for repro.net.annotate (latency/bandwidth labelling)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.net.annotate import (
    BANDWIDTH_CLASSES_MBPS,
    PER_HOP_MS,
    PROPAGATION_MS_PER_MILE,
    annotate_links,
    latency_matrix_sample,
    path_latency_ms,
)
from repro.net.topology import Topology


class TestAnnotateLinks:
    def test_latency_follows_length(self, toy_topology):
        annotations = annotate_links(toy_topology)
        lengths = toy_topology.link_lengths()
        expected = lengths * PROPAGATION_MS_PER_MILE + PER_HOP_MS
        assert np.allclose(annotations.latencies_ms, expected)

    def test_bandwidths_from_known_classes(self, toy_topology):
        annotations = annotate_links(toy_topology)
        assert set(np.unique(annotations.bandwidths_mbps)) <= set(
            BANDWIDTH_CLASSES_MBPS
        )

    def test_long_links_get_backbone_class(self, toy_topology):
        annotations = annotate_links(toy_topology)
        lengths = toy_topology.link_lengths()
        long = lengths > 500.0
        if long.any():
            assert np.all(
                annotations.bandwidths_mbps[long] == BANDWIDTH_CLASSES_MBPS[0]
            )

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            annotate_links(Topology())

    def test_generated_topology_annotates(self, generated_small):
        topology, _, _ = generated_small
        annotations = annotate_links(topology)
        assert annotations.latencies_ms.shape == (topology.n_links,)
        assert np.all(annotations.latencies_ms > 0)
        # Backbone classes exist in a realistic topology.
        assert BANDWIDTH_CLASSES_MBPS[0] in annotations.bandwidths_mbps


class TestPathLatency:
    def test_additive_along_path(self, toy_topology):
        annotations = annotate_links(toy_topology)
        one = path_latency_ms(toy_topology, annotations, [0, 1])
        two = path_latency_ms(toy_topology, annotations, [0, 1, 2])
        assert two > one

    def test_matches_link_sum(self, toy_topology):
        annotations = annotate_links(toy_topology)
        path = [0, 1, 2, 3]
        total = path_latency_ms(toy_topology, annotations, path)
        manual = sum(
            float(
                annotations.latencies_ms[
                    toy_topology.link_between(a, b).link_id
                ]
            )
            for a, b in zip(path, path[1:])
        )
        assert total == pytest.approx(manual)

    def test_non_adjacent_raises(self, toy_topology):
        annotations = annotate_links(toy_topology)
        with pytest.raises(TopologyError):
            path_latency_ms(toy_topology, annotations, [0, 5])


class TestLatencyMatrix:
    def test_matrix_shape_and_diagonal(self, toy_topology):
        annotations = annotate_links(toy_topology)
        matrix = latency_matrix_sample(
            toy_topology, annotations, sources=[0, 3], targets=[0, 3, 5]
        )
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == 0.0
        assert matrix[1, 1] == 0.0

    def test_triangle_inequality_on_chain(self, toy_topology):
        annotations = annotate_links(toy_topology)
        matrix = latency_matrix_sample(
            toy_topology, annotations, sources=[0], targets=[2, 5]
        )
        assert matrix[0, 1] > matrix[0, 0]

    def test_coast_to_coast_latency_plausible(self, toy_topology):
        # SF to DC-area router over ~2,500 miles of fibre: tens of ms.
        annotations = annotate_links(toy_topology)
        matrix = latency_matrix_sample(
            toy_topology, annotations, sources=[0], targets=[5]
        )
        assert 10.0 < matrix[0, 0] < 60.0
