"""Tests for repro.core.graphstats."""

import numpy as np
import pytest

from repro.core.graphstats import (
    clustering_coefficient,
    dataset_statistics,
    degree_ccdf_slope,
    generated_statistics,
    graph_statistics,
    mean_path_length,
)
from repro.errors import AnalysisError


def _chain_edges(n: int) -> np.ndarray:
    return np.column_stack([np.arange(n - 1), np.arange(1, n)]).astype(np.intp)


def _complete_edges(n: int) -> np.ndarray:
    return np.asarray(
        [(i, j) for i in range(n) for j in range(i + 1, n)], dtype=np.intp
    )


class TestGraphStatistics:
    def test_chain(self):
        stats = graph_statistics(10, _chain_edges(10))
        assert stats.n_edges == 9
        assert stats.mean_degree == pytest.approx(1.8)
        assert stats.max_degree == 2
        assert stats.clustering == 0.0
        assert stats.giant_component_fraction == 1.0

    def test_complete_graph_clustering_is_one(self):
        stats = graph_statistics(8, _complete_edges(8))
        assert stats.clustering == pytest.approx(1.0)
        assert stats.mean_path_length == pytest.approx(1.0)

    def test_disconnected_graph(self):
        edges = np.array([[0, 1], [2, 3]], dtype=np.intp)
        stats = graph_statistics(5, edges)
        assert stats.giant_component_fraction == pytest.approx(0.4)

    def test_parallel_edges_collapsed(self):
        edges = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.intp)
        stats = graph_statistics(2, edges)
        assert stats.n_edges == 1

    def test_too_small_raises(self):
        with pytest.raises(AnalysisError):
            graph_statistics(1, np.empty((0, 2), dtype=np.intp))

    def test_path_length_grows_with_chain(self):
        rng = np.random.default_rng(0)
        short = mean_path_length(
            _adj(6, _chain_edges(6)), rng, n_sources=6
        )
        long = mean_path_length(
            _adj(30, _chain_edges(30)), np.random.default_rng(0), n_sources=30
        )
        assert long > short


def _adj(n, edges):
    from repro.core.graphstats import _adjacency

    return _adjacency(n, edges)


class TestDegreeSlope:
    def test_power_law_degrees_shallow_slope(self):
        from repro.generators.barabasi_albert import barabasi_albert_graph

        graph = barabasi_albert_graph(2000, m=2, rng=np.random.default_rng(1))
        slope = degree_ccdf_slope(graph.degrees())
        assert -3.0 < slope < -0.8  # heavy tail

    def test_regular_degrees_rejected(self):
        degrees = np.full(50, 4)
        with pytest.raises(AnalysisError):
            degree_ccdf_slope(degrees)


class TestClustering:
    def test_triangle(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]], dtype=np.intp)
        value = clustering_coefficient(_adj(3, edges), np.random.default_rng(0))
        assert value == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        edges = np.array([[0, i] for i in range(1, 8)], dtype=np.intp)
        value = clustering_coefficient(_adj(8, edges), np.random.default_rng(0))
        assert value == 0.0


class TestAdapters:
    def test_dataset_statistics(self, pipeline_small):
        ds = pipeline_small.dataset("IxMapper", "Skitter")
        stats = dataset_statistics(ds, np.random.default_rng(2))
        assert stats.n_nodes == ds.n_nodes
        assert stats.mean_degree > 1.0
        assert stats.giant_component_fraction > 0.5
        assert stats.mean_path_length > 2.0

    def test_generated_statistics(self):
        from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree

        graph = erdos_renyi_for_mean_degree(
            500, 4.0, np.random.default_rng(3)
        )
        stats = generated_statistics(graph, np.random.default_rng(3))
        assert stats.mean_degree == pytest.approx(4.0, rel=0.3)
        # ER graphs have vanishing clustering at this density.
        assert stats.clustering < 0.08

    def test_ba_heavier_tail_than_er(self):
        from repro.generators.barabasi_albert import barabasi_albert_graph
        from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree

        ba = barabasi_albert_graph(1500, m=2, rng=np.random.default_rng(4))
        er = erdos_renyi_for_mean_degree(1500, 4.0, np.random.default_rng(4))
        ba_stats = generated_statistics(ba)
        er_stats = generated_statistics(er)
        assert ba_stats.max_degree > 2 * er_stats.max_degree
