"""Tests for repro.routing (shortest paths and forwarding semantics)."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import RoutingError
from repro.routing.forwarding import (
    interface_hops,
    observed_trace,
    path_links,
    source_routed_path,
)
from repro.routing.shortest_path import (
    largest_component,
    shortest_path_tree,
    shortest_path_trees,
)


def _chain_graph(n: int) -> sparse.csr_matrix:
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    data = [1.0] * (2 * (n - 1))
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


class TestShortestPathTree:
    def test_chain_path(self):
        tree = shortest_path_tree(_chain_graph(5), 0)
        assert tree.path_to(4) == [0, 1, 2, 3, 4]

    def test_path_to_source_is_singleton(self):
        tree = shortest_path_tree(_chain_graph(5), 2)
        assert tree.path_to(2) == [2]

    def test_distances_monotone_along_chain(self):
        tree = shortest_path_tree(_chain_graph(6), 0)
        assert np.all(np.diff(tree.distances) > 0)

    def test_unreachable_raises(self):
        graph = sparse.csr_matrix((4, 4))
        tree = shortest_path_tree(graph, 0)
        assert not tree.reachable(3)
        with pytest.raises(RoutingError):
            tree.path_to(3)

    def test_out_of_range_source_raises(self):
        with pytest.raises(RoutingError):
            shortest_path_tree(_chain_graph(3), 7)

    def test_out_of_range_target_raises(self):
        tree = shortest_path_tree(_chain_graph(3), 0)
        with pytest.raises(RoutingError):
            tree.path_to(9)

    def test_weighted_shortcut_preferred(self):
        # 0-1-2 with weight 1 each, plus direct 0-2 with weight 5: the
        # two-hop route (total 2) wins.
        rows = [0, 1, 1, 2, 0, 2]
        cols = [1, 0, 2, 1, 2, 0]
        data = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0]
        graph = sparse.csr_matrix((data, (rows, cols)), shape=(3, 3))
        tree = shortest_path_tree(graph, 0)
        assert tree.path_to(2) == [0, 1, 2]

    def test_batch_matches_single(self):
        graph = _chain_graph(7)
        batch = shortest_path_trees(graph, [0, 3])
        single = shortest_path_tree(graph, 3)
        assert batch[1].path_to(6) == single.path_to(6)

    def test_empty_batch(self):
        assert shortest_path_trees(_chain_graph(3), []) == []


class TestLargestComponent:
    def test_connected_graph_returns_all(self):
        comp = largest_component(_chain_graph(5))
        assert comp.tolist() == [0, 1, 2, 3, 4]

    def test_disconnected_graph_returns_biggest(self):
        # Components {0,1,2} and {3,4}.
        rows = [0, 1, 1, 2, 3, 4]
        cols = [1, 0, 2, 1, 4, 3]
        graph = sparse.csr_matrix(
            ([1.0] * 6, (rows, cols)), shape=(5, 5)
        )
        comp = largest_component(graph)
        assert comp.tolist() == [0, 1, 2]


class TestInterfaceHops:
    def test_hops_report_inbound_interfaces(self, toy_topology):
        hops = interface_hops(toy_topology, [0, 1, 2])
        # Each reported address must live on the corresponding router.
        assert toy_topology.interfaces[hops[0]].router_id == 1
        assert toy_topology.interfaces[hops[1]].router_id == 2

    def test_source_not_reported(self, toy_topology):
        hops = interface_hops(toy_topology, [0, 1])
        assert len(hops) == 1

    def test_non_adjacent_raises(self, toy_topology):
        with pytest.raises(RoutingError):
            interface_hops(toy_topology, [0, 5])


class TestObservedTrace:
    def test_full_response(self, toy_topology):
        rng = np.random.default_rng(0)
        trace = observed_trace(toy_topology, [0, 1, 2, 3], rng, 1.0, 30)
        assert None not in trace
        assert len(trace) == 3

    def test_max_hops_truncates(self, toy_topology):
        rng = np.random.default_rng(0)
        trace = observed_trace(toy_topology, [0, 1, 2, 3, 4, 5], rng, 1.0, 2)
        assert len(trace) == 2

    def test_zero_ish_response_rate_gives_stars(self, toy_topology):
        rng = np.random.default_rng(0)
        trace = observed_trace(toy_topology, [0, 1, 2, 3], rng, 1e-12, 30)
        assert trace == [None, None, None]


class TestSourceRoutedPath:
    def test_concatenates_legs(self, toy_topology):
        graph = toy_topology.routing_graph()
        source_tree = shortest_path_tree(graph, 0)
        via_tree = shortest_path_tree(graph, 3)
        path = source_routed_path(via_tree, source_tree, 3, 5)
        assert path[0] == 0
        assert 3 in path
        assert path[-1] == 5

    def test_loop_trimmed(self, toy_topology):
        # source->via and via->target legs overlap on a chain topology;
        # the combined path must not revisit any router.
        graph = toy_topology.routing_graph()
        source_tree = shortest_path_tree(graph, 0)
        via_tree = shortest_path_tree(graph, 4)
        path = source_routed_path(via_tree, source_tree, 4, 1)
        assert len(path) == len(set(path))
        assert path[0] == 0 and path[-1] == 1

    def test_wrong_via_tree_raises(self, toy_topology):
        graph = toy_topology.routing_graph()
        source_tree = shortest_path_tree(graph, 0)
        via_tree = shortest_path_tree(graph, 3)
        with pytest.raises(RoutingError):
            source_routed_path(via_tree, source_tree, 2, 5)

    def test_consecutive_hops_are_adjacent(self, toy_topology):
        graph = toy_topology.routing_graph()
        source_tree = shortest_path_tree(graph, 0)
        via_tree = shortest_path_tree(graph, 5)
        path = source_routed_path(via_tree, source_tree, 5, 2)
        for a, b in zip(path, path[1:]):
            assert toy_topology.has_link(a, b)


class TestPathLinks:
    def test_normalised_pairs(self):
        assert path_links([3, 1, 2]) == [(1, 3), (1, 2)]

    def test_empty_and_singleton(self):
        assert path_links([]) == []
        assert path_links([5]) == []
