"""Tests for repro.generators (baselines and GeoGen)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.generators.barabasi_albert import barabasi_albert_graph
from repro.generators.base import GeneratedGraph, dedupe_edges, uniform_points_in_box
from repro.generators.erdos_renyi import (
    erdos_renyi_for_mean_degree,
    erdos_renyi_graph,
)
from repro.generators.geogen import GeoGenConfig, geogen_graph
from repro.generators.hierarchical import transit_stub_graph
from repro.generators.waxman import waxman_for_mean_degree, waxman_graph


class TestBase:
    def test_uniform_points_in_box(self, rng):
        lats, lons = uniform_points_in_box(500, rng)
        assert np.all((25.0 <= lats) & (lats <= 50.0))
        assert np.all((-125.0 <= lons) & (lons <= -65.0))

    def test_uniform_points_rejects_bad_input(self, rng):
        with pytest.raises(ConfigError):
            uniform_points_in_box(0, rng)
        with pytest.raises(ConfigError):
            uniform_points_in_box(10, rng, south=50.0, north=25.0)

    def test_dedupe_edges(self):
        edges = dedupe_edges([(1, 2), (2, 1), (3, 3), (0, 4)])
        assert edges.tolist() == [[0, 4], [1, 2]]

    def test_generated_graph_validation(self, rng):
        with pytest.raises(ConfigError):
            GeneratedGraph(
                name="bad",
                lats=np.zeros(3),
                lons=np.zeros(3),
                edges=np.array([[0, 9]], dtype=np.intp),
                asns=np.full(3, -1, dtype=np.int64),
            )

    def test_degrees_and_mean_degree(self, rng):
        graph = GeneratedGraph(
            name="tri",
            lats=np.zeros(3),
            lons=np.array([0.0, 1.0, 2.0]),
            edges=np.array([[0, 1], [1, 2]], dtype=np.intp),
            asns=np.full(3, -1, dtype=np.int64),
        )
        assert graph.degrees().tolist() == [1, 2, 1]
        assert graph.mean_degree() == pytest.approx(4.0 / 3.0)


class TestWaxman:
    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigError):
            waxman_graph(10, alpha=0.0, beta=0.5, rng=rng)
        with pytest.raises(ConfigError):
            waxman_graph(10, alpha=0.5, beta=1.5, rng=rng)
        with pytest.raises(ConfigError):
            waxman_graph(30_000, alpha=0.5, beta=0.5, rng=rng)

    def test_beta_controls_density(self, rng):
        sparse = waxman_graph(300, alpha=0.9, beta=0.05, rng=np.random.default_rng(1))
        dense = waxman_graph(300, alpha=0.9, beta=0.8, rng=np.random.default_rng(1))
        assert dense.n_edges > sparse.n_edges

    def test_short_links_dominate_at_low_alpha(self):
        # Lower alpha -> stronger distance sensitivity -> shorter edges.
        near = waxman_graph(400, alpha=0.05, beta=1.0,
                            rng=np.random.default_rng(2))
        far = waxman_graph(400, alpha=1.0, beta=0.1,
                           rng=np.random.default_rng(2))
        assert near.edge_lengths_miles().mean() < far.edge_lengths_miles().mean()

    def test_mean_degree_calibration(self):
        graph = waxman_for_mean_degree(
            500, alpha=0.3, mean_degree=4.0, rng=np.random.default_rng(3)
        )
        assert graph.mean_degree() == pytest.approx(4.0, rel=0.4)

    def test_unreachable_degree_raises(self):
        with pytest.raises(ConfigError):
            waxman_for_mean_degree(
                20, alpha=0.01, mean_degree=19.5, rng=np.random.default_rng(0)
            )


class TestErdosRenyi:
    def test_mean_degree_calibration(self):
        graph = erdos_renyi_for_mean_degree(
            600, mean_degree=5.0, rng=np.random.default_rng(4)
        )
        assert graph.mean_degree() == pytest.approx(5.0, rel=0.25)

    def test_p_zero_no_edges(self, rng):
        assert erdos_renyi_graph(50, 0.0, rng).n_edges == 0

    def test_p_one_complete_graph(self, rng):
        graph = erdos_renyi_graph(20, 1.0, rng)
        assert graph.n_edges == 20 * 19 // 2

    def test_p_out_of_range_raises(self, rng):
        with pytest.raises(ConfigError):
            erdos_renyi_graph(10, 1.5, rng)

    def test_edge_lengths_distance_blind(self):
        # ER edge length distribution matches the pair distance
        # distribution: mean edge length ~ mean pair distance.
        rng = np.random.default_rng(5)
        graph = erdos_renyi_graph(400, 0.05, rng)
        from repro.geo.distance import pairwise_distance_matrix

        m = pairwise_distance_matrix(graph.lats, graph.lons)
        pair_mean = m[np.triu_indices(400, 1)].mean()
        assert graph.edge_lengths_miles().mean() == pytest.approx(
            pair_mean, rel=0.1
        )


class TestBarabasiAlbert:
    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigError):
            barabasi_albert_graph(5, m=0, rng=rng)
        with pytest.raises(ConfigError):
            barabasi_albert_graph(3, m=3, rng=rng)

    def test_edge_count(self):
        graph = barabasi_albert_graph(200, m=2, rng=np.random.default_rng(6))
        # Seed clique of 3 (3 edges) + 2 per new node.
        assert graph.n_edges == pytest.approx(3 + 2 * 197, abs=5)

    def test_power_law_ish_degrees(self):
        graph = barabasi_albert_graph(3000, m=2, rng=np.random.default_rng(7))
        degrees = graph.degrees()
        assert degrees.max() > 20 * np.median(degrees)

    def test_connected(self):
        graph = barabasi_albert_graph(300, m=1, rng=np.random.default_rng(8))
        from scipy import sparse
        from scipy.sparse.csgraph import connected_components

        m = sparse.csr_matrix(
            (np.ones(graph.n_edges), (graph.edges[:, 0], graph.edges[:, 1])),
            shape=(graph.n_nodes, graph.n_nodes),
        )
        n_comp, _ = connected_components(m, directed=False)
        assert n_comp == 1


class TestTransitStub:
    def test_structure_counts(self):
        graph = transit_stub_graph(
            3, 4, 2, 3, rng=np.random.default_rng(9)
        )
        assert graph.n_nodes == 3 * (4 + 2 * 3)

    def test_connected(self):
        graph = transit_stub_graph(2, 3, 2, 2, rng=np.random.default_rng(10))
        from scipy import sparse
        from scipy.sparse.csgraph import connected_components

        m = sparse.csr_matrix(
            (np.ones(graph.n_edges), (graph.edges[:, 0], graph.edges[:, 1])),
            shape=(graph.n_nodes, graph.n_nodes),
        )
        n_comp, _ = connected_components(m, directed=False)
        assert n_comp == 1

    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigError):
            transit_stub_graph(0, 3, 2, 2, rng=np.random.default_rng(0))


class TestGeoGen:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GeoGenConfig(n_nodes=5)
        with pytest.raises(ConfigError):
            GeoGenConfig(mean_degree=1.0)
        with pytest.raises(ConfigError):
            GeoGenConfig(long_range_fraction=2.0)

    def test_annotated_output(self, world_small):
        config = GeoGenConfig(n_nodes=400, n_ases=20)
        annotated = geogen_graph(world_small, config, np.random.default_rng(11))
        graph = annotated.graph
        assert graph.n_nodes == 400
        assert annotated.latencies_ms.shape == (graph.n_edges,)
        assert np.all(annotated.latencies_ms >= 0)

    def test_latency_proportional_to_length(self, world_small):
        config = GeoGenConfig(n_nodes=300, n_ases=15)
        annotated = geogen_graph(world_small, config, np.random.default_rng(12))
        lengths = annotated.graph.edge_lengths_miles()
        nonzero = lengths > 1.0
        ratio = annotated.latencies_ms[nonzero] / lengths[nonzero]
        assert np.allclose(ratio, ratio[0])

    def test_as_assignment_zipf(self, world_small):
        config = GeoGenConfig(n_nodes=800, n_ases=40)
        annotated = geogen_graph(world_small, config, np.random.default_rng(13))
        _, counts = np.unique(annotated.graph.asns, return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_connected(self, world_small):
        config = GeoGenConfig(n_nodes=300, n_ases=15)
        annotated = geogen_graph(world_small, config, np.random.default_rng(14))
        graph = annotated.graph
        from scipy import sparse
        from scipy.sparse.csgraph import connected_components

        m = sparse.csr_matrix(
            (np.ones(graph.n_edges), (graph.edges[:, 0], graph.edges[:, 1])),
            shape=(graph.n_nodes, graph.n_nodes),
        )
        n_comp, _ = connected_components(m, directed=False)
        assert n_comp == 1

    def test_mean_degree_near_target(self, world_small):
        config = GeoGenConfig(n_nodes=600, n_ases=30, mean_degree=3.0)
        annotated = geogen_graph(world_small, config, np.random.default_rng(15))
        assert annotated.graph.mean_degree() == pytest.approx(3.0, rel=0.25)

    def test_population_weighted_placement(self, world_small):
        # Nodes concentrate where population does: the top city hosts
        # disproportionately many nodes.
        config = GeoGenConfig(n_nodes=1000, n_ases=30, alpha=1.5)
        annotated = geogen_graph(world_small, config, np.random.default_rng(16))
        biggest = max(world_small.cities, key=lambda c: c.population)
        graph = annotated.graph
        near = (
            (np.abs(graph.lats - biggest.location.lat) < 0.5)
            & (np.abs(graph.lons - biggest.location.lon) < 0.5)
        ).sum()
        assert near > 0.02 * graph.n_nodes
