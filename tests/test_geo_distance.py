"""Tests for repro.geo.distance (great-circle geometry)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.coords import EARTH_RADIUS_MILES, GeoPoint
from repro.geo.distance import (
    great_circle_miles,
    haversine_miles,
    link_lengths_miles,
    pairwise_distance_matrix,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


class TestKnownDistances:
    def test_zero_distance(self):
        assert haversine_miles(40.0, -74.0, 40.0, -74.0) == pytest.approx(0.0)

    def test_new_york_to_los_angeles(self):
        # Great-circle NYC-LA is about 2,445 statute miles.
        d = great_circle_miles(GeoPoint(40.71, -74.01), GeoPoint(34.05, -118.24))
        assert d == pytest.approx(2445, rel=0.02)

    def test_london_to_paris(self):
        d = great_circle_miles(GeoPoint(51.51, -0.13), GeoPoint(48.86, 2.35))
        assert d == pytest.approx(213, rel=0.03)

    def test_equator_degree_of_longitude(self):
        # One degree of longitude at the equator ~ 69.1 miles.
        d = haversine_miles(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(69.1, rel=0.01)

    def test_pole_to_pole_is_half_circumference(self):
        d = haversine_miles(90.0, 0.0, -90.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_MILES, rel=1e-6)

    def test_antipodal_points(self):
        d = haversine_miles(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_MILES, rel=1e-6)


class TestBroadcasting:
    def test_scalar_against_array(self):
        lats = np.array([0.0, 10.0, 20.0])
        lons = np.zeros(3)
        d = haversine_miles(0.0, 0.0, lats, lons)
        assert d.shape == (3,)
        assert d[0] == pytest.approx(0.0)
        assert d[1] < d[2]

    def test_array_against_array(self):
        a = np.array([0.0, 45.0])
        d = haversine_miles(a, np.zeros(2), a, np.zeros(2))
        assert np.allclose(d, 0.0)


class TestProperties:
    @given(latitudes, longitudes, latitudes, longitudes)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d1 = haversine_miles(lat1, lon1, lat2, lon2)
        d2 = haversine_miles(lat2, lon2, lat1, lon1)
        assert d1 == pytest.approx(d2, abs=1e-9)

    @given(latitudes, longitudes, latitudes, longitudes)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = haversine_miles(lat1, lon1, lat2, lon2)
        assert 0.0 <= d <= np.pi * EARTH_RADIUS_MILES + 1e-6

    @given(latitudes, longitudes)
    def test_identity(self, lat, lon):
        assert haversine_miles(lat, lon, lat, lon) == pytest.approx(0.0, abs=1e-6)

    @given(
        latitudes, longitudes, latitudes, longitudes, latitudes, longitudes
    )
    def test_triangle_inequality(self, la, lo, lb, lob, lc, loc):
        ab = haversine_miles(la, lo, lb, lob)
        bc = haversine_miles(lb, lob, lc, loc)
        ac = haversine_miles(la, lo, lc, loc)
        assert ac <= ab + bc + 1e-6


class TestPairwiseMatrix:
    def test_matrix_shape_and_diagonal(self):
        lats = np.array([0.0, 10.0, 20.0])
        lons = np.array([0.0, 10.0, 20.0])
        m = pairwise_distance_matrix(lats, lons)
        assert m.shape == (3, 3)
        assert np.allclose(np.diag(m), 0.0)

    def test_matrix_symmetry(self):
        rng = np.random.default_rng(0)
        lats = rng.uniform(-60, 60, 8)
        lons = rng.uniform(-170, 170, 8)
        m = pairwise_distance_matrix(lats, lons)
        assert np.allclose(m, m.T)

    def test_rejects_mismatched_input(self):
        with pytest.raises(GeoError):
            pairwise_distance_matrix(np.zeros(3), np.zeros(4))


class TestLinkLengths:
    def test_lengths_match_pointwise_distance(self):
        lats = np.array([0.0, 0.0, 10.0])
        lons = np.array([0.0, 1.0, 1.0])
        a = np.array([0, 1])
        b = np.array([1, 2])
        lengths = link_lengths_miles(lats, lons, a, b)
        assert lengths[0] == pytest.approx(haversine_miles(0, 0, 0, 1))
        assert lengths[1] == pytest.approx(haversine_miles(0, 1, 10, 1))

    def test_empty_links(self):
        lengths = link_lengths_miles(
            np.array([0.0]), np.array([0.0]), np.array([], dtype=int),
            np.array([], dtype=int),
        )
        assert lengths.shape == (0,)

    def test_out_of_range_index_raises(self):
        with pytest.raises(GeoError):
            link_lengths_miles(
                np.array([0.0]), np.array([0.0]), np.array([0]), np.array([1])
            )
