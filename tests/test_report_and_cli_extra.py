"""Extra coverage: report rendering corners and the CLI 'all' path."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.experiments import GeneratorComparison, compare_generator
from repro.core.report import render_generator_comparison
from repro.core.distance import preference_function
from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree
from repro.geo.regions import US


class TestGeneratorComparisonRendering:
    def test_renders_rows(self):
        graph = erdos_renyi_for_mean_degree(
            400, 4.0, np.random.default_rng(0),
            south=26.0, north=49.0, west=-124.0, east=-66.0,
        )
        row = compare_generator(graph, region=US, bin_miles=35.0)
        text = render_generator_comparison([row])
        assert "erdos-renyi" in text
        assert "decay slope" in text

    def test_renders_nan_slope(self):
        ds_pref = preference_function(
            _tiny_dataset(), US, bin_miles=35.0, method="exact"
        )
        row = GeneratorComparison(
            name="degenerate",
            preference=ds_pref,
            decay_slope=float("nan"),
            mean_degree=0.0,
        )
        text = render_generator_comparison([row])
        assert "n/a" in text


def _tiny_dataset():
    from repro.datasets.mapped import MappedDataset

    rng = np.random.default_rng(1)
    n = 20
    return MappedDataset(
        label="tiny",
        kind="generated",
        addresses=np.arange(n, dtype=np.int64),
        lats=rng.uniform(30, 45, n),
        lons=rng.uniform(-120, -70, n),
        asns=np.ones(n, dtype=np.int64),
        links=np.empty((0, 2), dtype=np.intp),
    )


class TestCliAll:
    @pytest.mark.slow
    def test_all_experiments_print(self, capsys):
        code = main(["--scale", "small", "--experiments", "all"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in (
            "TABLE I",
            "TABLE III",
            "TABLE IV",
            "TABLE V",
            "TABLE VI",
            "FIGURE 2",
            "FIGURE 4",
            "FIGURE 5",
            "FIGURE 6",
            "AUTONOMOUS SYSTEMS",
            "FRACTAL",
        ):
            assert marker in out, marker
