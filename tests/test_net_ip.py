"""Tests for repro.net.ip (addresses and prefixes)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.ip import (
    ADDRESS_SPACE,
    Prefix,
    check_address,
    format_address,
    is_private,
    parse_address,
    prefix_mask,
)

addresses = st.integers(min_value=0, max_value=ADDRESS_SPACE - 1)
lengths = st.integers(min_value=0, max_value=32)


class TestAddressBasics:
    def test_check_address_passes_valid(self):
        assert check_address(0) == 0
        assert check_address(ADDRESS_SPACE - 1) == ADDRESS_SPACE - 1

    def test_check_address_rejects_negative(self):
        with pytest.raises(AddressError):
            check_address(-1)

    def test_check_address_rejects_overflow(self):
        with pytest.raises(AddressError):
            check_address(ADDRESS_SPACE)

    def test_check_address_rejects_bool(self):
        with pytest.raises(AddressError):
            check_address(True)

    def test_format_known(self):
        assert format_address(0) == "0.0.0.0"
        assert format_address(0xC0A80101) == "192.168.1.1"
        assert format_address(ADDRESS_SPACE - 1) == "255.255.255.255"

    def test_parse_known(self):
        assert parse_address("10.0.0.1") == 0x0A000001
        assert parse_address("255.255.255.255") == ADDRESS_SPACE - 1

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", "-1.0.0.0"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    @given(addresses)
    def test_format_parse_round_trip(self, address):
        assert parse_address(format_address(address)) == address


class TestPrivate:
    def test_rfc1918_ranges(self):
        assert is_private(parse_address("10.1.2.3"))
        assert is_private(parse_address("172.16.0.1"))
        assert is_private(parse_address("172.31.255.255"))
        assert is_private(parse_address("192.168.100.100"))

    def test_public_addresses(self):
        assert not is_private(parse_address("8.8.8.8"))
        assert not is_private(parse_address("172.32.0.1"))
        assert not is_private(parse_address("192.169.0.1"))
        assert not is_private(parse_address("11.0.0.1"))


class TestPrefixMask:
    def test_known_masks(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(8) == 0xFF000000
        assert prefix_mask(24) == 0xFFFFFF00
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_out_of_range_raises(self):
        with pytest.raises(AddressError):
            prefix_mask(33)
        with pytest.raises(AddressError):
            prefix_mask(-1)


class TestPrefix:
    def test_parse_and_str_round_trip(self):
        p = Prefix.parse("192.168.0.0/16")
        assert str(p) == "192.168.0.0/16"
        assert p.length == 16

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(parse_address("192.168.0.1"), 16)

    def test_parse_rejects_missing_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_size_and_last(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.size == 256
        assert format_address(p.last) == "10.0.0.255"

    def test_contains(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(parse_address("10.200.3.4"))
        assert not p.contains(parse_address("11.0.0.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_subdivide_halves(self):
        p = Prefix.parse("10.0.0.0/8")
        halves = p.subdivide(9)
        assert [str(h) for h in halves] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_subdivide_rejects_shorter(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/8").subdivide(7)

    def test_subdivide_rejects_explosion(self):
        with pytest.raises(AddressError):
            Prefix.parse("0.0.0.0/0").subdivide(32)

    def test_ordering_is_by_base_then_length(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("11.0.0.0/8")
        assert a < b

    @given(addresses, lengths)
    def test_mask_canonicalisation_property(self, address, length):
        base = address & prefix_mask(length)
        p = Prefix(base, length)
        assert p.contains(address)
        # All sub-prefix bases stay inside.
        if length <= 30:
            for child in p.subdivide(min(length + 2, 32))[:4]:
                assert p.contains_prefix(child)
