"""Tests for repro.bgp.trie (longest-prefix match)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.trie import PrefixTrie
from repro.errors import AddressError
from repro.net.ip import ADDRESS_SPACE, Prefix, parse_address, prefix_mask

addresses = st.integers(min_value=0, max_value=ADDRESS_SPACE - 1)
lengths = st.integers(min_value=0, max_value=32)
prefix_entries = st.lists(
    st.tuples(addresses, lengths, st.integers(min_value=1, max_value=99)),
    min_size=0,
    max_size=40,
)


def _reference_longest_match(
    entries: list[tuple[Prefix, int]], address: int
) -> tuple[Prefix, int] | None:
    """Brute-force longest-prefix match for differential testing."""
    best = None
    for prefix, value in entries:
        if prefix.contains(address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best


class TestBasics:
    def test_empty_trie_matches_nothing(self):
        trie = PrefixTrie()
        assert trie.longest_match(parse_address("1.2.3.4")) is None
        assert len(trie) == 0

    def test_single_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "A")
        match = trie.longest_match(parse_address("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "10.0.0.0/8"
        assert value == "A"

    def test_miss_outside_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "A")
        assert trie.longest_match(parse_address("11.0.0.0")) is None

    def test_longest_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.5.0.0/16"), "long")
        _, value = trie.longest_match(parse_address("10.5.1.1"))
        assert value == "long"
        _, value = trie.longest_match(parse_address("10.6.1.1"))
        assert value == "short"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        match = trie.longest_match(parse_address("200.1.2.3"))
        assert match is not None and match[1] == "default"

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "old")
        trie.insert(p, "new")
        assert len(trie) == 1
        assert trie.exact_match(p) == "new"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(parse_address("1.2.3.4"), 32), "host")
        assert trie.longest_match(parse_address("1.2.3.4"))[1] == "host"
        assert trie.longest_match(parse_address("1.2.3.5")) is None


class TestRemove:
    def test_remove_existing(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        trie.remove(p)
        assert len(trie) == 0
        assert trie.longest_match(parse_address("10.0.0.1")) is None

    def test_remove_missing_raises(self):
        trie = PrefixTrie()
        with pytest.raises(AddressError):
            trie.remove(Prefix.parse("10.0.0.0/8"))

    def test_remove_leaves_ancestors(self):
        trie = PrefixTrie()
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        trie.insert(outer, "outer")
        trie.insert(inner, "inner")
        trie.remove(inner)
        assert trie.longest_match(parse_address("10.5.0.1"))[1] == "outer"


class TestItems:
    def test_items_in_address_order(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("20.0.0.0/8"), 2)
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie.insert(Prefix.parse("10.128.0.0/9"), 3)
        prefixes = [str(p) for p, _ in trie.items()]
        assert prefixes == ["10.0.0.0/8", "10.128.0.0/9", "20.0.0.0/8"]

    def test_items_round_trip(self):
        trie = PrefixTrie()
        inserted = {
            Prefix.parse("16.0.0.0/16"): 1,
            Prefix.parse("16.1.0.0/16"): 2,
            Prefix.parse("0.0.0.0/0"): 0,
        }
        for p, v in inserted.items():
            trie.insert(p, v)
        assert dict(trie.items()) == inserted


class TestDifferential:
    @settings(max_examples=120)
    @given(prefix_entries, addresses)
    def test_matches_reference_implementation(self, raw_entries, address):
        trie = PrefixTrie()
        entries: dict[Prefix, int] = {}
        for base, length, value in raw_entries:
            prefix = Prefix(base & prefix_mask(length), length)
            entries[prefix] = value
            trie.insert(prefix, value)
        expected = _reference_longest_match(list(entries.items()), address)
        actual = trie.longest_match(address)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual[0] == expected[0]
            assert actual[1] == expected[1]
