"""Tests for repro.measure.inventory and repro.measure.artifacts."""

import pytest

from repro.errors import MeasurementError
from repro.measure.artifacts import (
    clean_inventory,
    discard_destinations,
    discard_private,
    drop_nodes,
)
from repro.measure.inventory import RawInventory, normalize_pair
from repro.net.ip import parse_address


def _inventory(kind: str = "skitter") -> RawInventory:
    inv = RawInventory(kind=kind)
    for node in (10, 20, 30, 40):
        inv.add_node(node)
    inv.add_link(10, 20)
    inv.add_link(20, 30)
    inv.add_link(30, 40)
    return inv


class TestNormalizePair:
    def test_orders_ascending(self):
        assert normalize_pair(5, 2) == (2, 5)
        assert normalize_pair(2, 5) == (2, 5)

    def test_self_pair_raises(self):
        with pytest.raises(MeasurementError):
            normalize_pair(3, 3)


class TestRawInventory:
    def test_add_node_idempotent(self):
        inv = RawInventory(kind="skitter")
        inv.add_node(5)
        inv.add_node(5)
        assert inv.n_nodes == 1
        assert inv.interfaces_of(5) == [5]

    def test_add_link_requires_known_nodes(self):
        inv = RawInventory(kind="skitter")
        inv.add_node(1)
        with pytest.raises(MeasurementError):
            inv.add_link(1, 2)

    def test_self_link_rejected(self):
        inv = RawInventory(kind="skitter")
        inv.add_node(1)
        with pytest.raises(MeasurementError):
            inv.add_link(1, 1)

    def test_links_deduplicated(self):
        inv = _inventory()
        inv.add_link(20, 10)
        assert inv.n_links == 3

    def test_interfaces_of_unknown_raises(self):
        with pytest.raises(MeasurementError):
            _inventory().interfaces_of(999)

    def test_validate_passes_consistent(self):
        _inventory().validate()

    def test_validate_catches_bad_alias(self):
        inv = _inventory()
        inv.aliases[10] = [99]  # node missing from its own alias set
        with pytest.raises(MeasurementError):
            inv.validate()

    def test_validate_catches_unnormalised_link(self):
        inv = _inventory()
        inv.links.add((40, 30))
        with pytest.raises(MeasurementError):
            inv.validate()


class TestDropNodes:
    def test_drop_removes_node_and_links(self):
        cleaned = drop_nodes(_inventory(), {20})
        assert cleaned.n_nodes == 3
        assert cleaned.n_links == 1  # only 30-40 survives
        cleaned.validate()

    def test_drop_nothing_is_identity(self):
        inv = _inventory()
        cleaned = drop_nodes(inv, set())
        assert cleaned.nodes == inv.nodes
        assert cleaned.links == inv.links

    def test_aliases_preserved(self):
        inv = _inventory("mercator")
        inv.aliases[10] = [10, 99]
        cleaned = drop_nodes(inv, {40})
        assert cleaned.aliases[10] == [10, 99]


class TestDiscards:
    def test_destination_discard(self):
        inv = _inventory()
        inv.destinations = {20, 999}
        cleaned, dropped = discard_destinations(inv)
        assert dropped == 1
        assert 20 not in cleaned.nodes

    def test_private_discard(self):
        inv = RawInventory(kind="skitter")
        private = parse_address("10.0.0.1")
        public = parse_address("16.0.0.1")
        inv.add_node(private)
        inv.add_node(public)
        inv.add_link(private, public)
        cleaned, dropped = discard_private(inv)
        assert dropped == 1
        assert cleaned.nodes == {public}
        assert cleaned.n_links == 0

    def test_clean_inventory_skitter_applies_both(self):
        inv = _inventory()
        inv.destinations = {10}
        cleaned, report = clean_inventory(inv)
        assert report.dropped_destination_nodes == 1
        assert report.dropped_private_nodes == 0
        assert report.dropped_links == 1
        assert cleaned.n_nodes == 3

    def test_clean_inventory_mercator_ignores_destinations(self):
        inv = _inventory("mercator")
        inv.destinations = {10}
        cleaned, report = clean_inventory(inv)
        assert report.dropped_destination_nodes == 0
        assert 10 in cleaned.nodes
