"""Tests for repro.geo.fractal (box-counting dimension)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.geo.fractal import box_counting_dimension


def _cantor_dust(level: int) -> np.ndarray:
    """1-D middle-thirds Cantor set sample points (D = log2/log3 ~ 0.63)."""
    points = np.array([0.0, 1.0])
    for _ in range(level):
        points = np.concatenate([points / 3.0, points / 3.0 + 2.0 / 3.0])
    return np.unique(points)


class TestKnownDimensions:
    def test_uniform_plane_is_near_two(self):
        rng = np.random.default_rng(42)
        x = rng.uniform(0, 1000, 20_000)
        y = rng.uniform(0, 1000, 20_000)
        result = box_counting_dimension(x, y)
        assert 1.7 <= result.dimension <= 2.1

    def test_line_is_near_one(self):
        t = np.linspace(0, 1000, 8_000)
        result = box_counting_dimension(t, t * 0.5)
        assert 0.85 <= result.dimension <= 1.15

    def test_cantor_dust_is_fractional(self):
        c = _cantor_dust(9)
        result = box_counting_dimension(c * 1000, np.zeros_like(c))
        assert 0.45 <= result.dimension <= 0.8

    def test_clustered_points_lie_between_zero_and_two(self):
        rng = np.random.default_rng(7)
        centers = rng.uniform(0, 1000, size=(40, 2))
        cluster = centers[rng.integers(0, 40, 5000)] + rng.normal(0, 5, (5000, 2))
        result = box_counting_dimension(cluster[:, 0], cluster[:, 1])
        assert 0.2 < result.dimension < 2.0


class TestInterface:
    def test_too_few_points_raise(self):
        with pytest.raises(AnalysisError):
            box_counting_dimension(np.arange(5.0), np.arange(5.0))

    def test_zero_extent_raises(self):
        x = np.full(20, 3.0)
        with pytest.raises(AnalysisError):
            box_counting_dimension(x, x)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(AnalysisError):
            box_counting_dimension(np.zeros(20), np.zeros(19))

    def test_result_arrays_are_parallel(self):
        rng = np.random.default_rng(0)
        result = box_counting_dimension(
            rng.uniform(0, 100, 500), rng.uniform(0, 100, 500)
        )
        assert result.box_sizes.shape == result.counts.shape
        assert result.box_sizes.shape[0] >= 3

    def test_counts_monotone_in_box_size(self):
        rng = np.random.default_rng(1)
        result = box_counting_dimension(
            rng.uniform(0, 100, 2000), rng.uniform(0, 100, 2000)
        )
        # Smaller boxes can only increase the occupied count.
        assert np.all(np.diff(result.counts) >= 0)

    def test_translation_invariance(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 100, 3000)
        y = rng.uniform(0, 100, 3000)
        d1 = box_counting_dimension(x, y).dimension
        d2 = box_counting_dimension(x + 1e5, y - 1e5).dimension
        assert d1 == pytest.approx(d2, abs=1e-9)
