"""Geolocation simulators: IxMapper and EdgeScape stand-ins."""

from repro.geoloc.base import (
    METHOD_DNSLOC,
    METHOD_HOSTNAME,
    METHOD_ISP,
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    Geolocator,
    MappingResult,
    SequentialLocateMixin,
    build_context,
    locate_batch,
)
from repro.geoloc.dnsloc import build_loc_records
from repro.geoloc.edgescape import EdgeScape
from repro.geoloc.ixmapper import IxMapper
from repro.geoloc.netgeo import NetGeo
from repro.geoloc.whois import OrgRecord, WhoisRegistry

__all__ = [
    "METHOD_DNSLOC",
    "METHOD_HOSTNAME",
    "METHOD_ISP",
    "METHOD_UNMAPPED",
    "METHOD_WHOIS",
    "GeoContext",
    "Geolocator",
    "MappingResult",
    "SequentialLocateMixin",
    "build_context",
    "locate_batch",
    "build_loc_records",
    "EdgeScape",
    "IxMapper",
    "NetGeo",
    "OrgRecord",
    "WhoisRegistry",
]
