"""IxMapper-style geolocation.

The simulated tool follows the real tool's documented fallback chain:

1. **Hostname-based mapping** — parse the ISP's city/airport code out of
   the interface's DNS name; accurate to city granularity (Padmanabhan &
   Subramanian).  Fails when the ISP embeds no code or uses a code the
   directory does not know.
2. **DNS LOC records** — exact, but rarely published.
3. **whois records** — the registered organisation's headquarters;
   systematically wrong for geographically dispersed organisations.

A small residual fraction is unmappable (no hostname, no LOC, no usable
whois, or random lookup failure), matching the paper's ~1-1.5%.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeolocationError
from repro.geoloc.base import (
    METHOD_DNSLOC,
    METHOD_HOSTNAME,
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    MappingResult,
)
from repro.net.hostnames import extract_city_code


class IxMapper:
    """Hostname-first geolocator with LOC and whois fallbacks."""

    def __init__(
        self,
        context: GeoContext,
        rng: np.random.Generator,
        failure_rate: float = 0.012,
    ) -> None:
        if not (0.0 <= failure_rate <= 1.0):
            raise GeolocationError("failure_rate must be in [0, 1]")
        self._context = context
        self._rng = rng
        self._failure_rate = failure_rate

    @property
    def name(self) -> str:
        """Tool name as used in dataset labels."""
        return "IxMapper"

    def locate(self, address: int) -> MappingResult:
        """Locate an address via hostname, then LOC, then whois."""
        return self.locate_many((address,))[0]

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Batch-locate addresses with one vectorised failure draw.

        Consumes exactly one uniform variate per address, in order, so
        results are bit-identical to per-address ``locate`` calls.
        """
        n = len(addresses)
        if n == 0:
            return []
        failed = self._rng.random(n) < self._failure_rate
        return [
            MappingResult(location=None, method=METHOD_UNMAPPED)
            if fail
            else self._resolve(address)
            for address, fail in zip(addresses, failed)
        ]

    def _resolve(self, address: int) -> MappingResult:
        """The fallback chain for one address (no randomness)."""
        hostname = self._context.hostnames.get(address)
        if hostname is not None:
            try:
                code = extract_city_code(hostname)
            except GeolocationError:
                code = None
            if code is not None:
                city = self._context.city_locations.get(code)
                if city is not None:
                    return MappingResult(location=city, method=METHOD_HOSTNAME)
        loc = self._context.loc_records.get(address)
        if loc is not None:
            return MappingResult(location=loc, method=METHOD_DNSLOC)
        org = self._context.whois.lookup(address)
        if org is not None:
            return MappingResult(location=org.headquarters, method=METHOD_WHOIS)
        return MappingResult(location=None, method=METHOD_UNMAPPED)
