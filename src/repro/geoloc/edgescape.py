"""EdgeScape-style geolocation.

Akamai's EdgeScape supplements hostname techniques with *internal ISP
geographical information* obtained through its network relationships and
server deployment.  The simulator models that as per-AS coverage: for a
covered AS, the tool knows the true city of every router (returned with
city-snap accuracy); otherwise it falls back to hostname parsing and
finally whois.  Coverage is broad, so the unmapped residual is smaller
than IxMapper's (the paper reports 0.3-0.6% vs 1-1.5%).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeolocationError
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_miles
from repro.geoloc.base import (
    METHOD_HOSTNAME,
    METHOD_ISP,
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    MappingResult,
)
from repro.net.hostnames import extract_city_code
from repro.net.topology import Topology


class EdgeScape:
    """ISP-feed-first geolocator with hostname and whois fallbacks."""

    def __init__(
        self,
        context: GeoContext,
        topology: Topology,
        rng: np.random.Generator,
        isp_coverage: float = 0.85,
        failure_rate: float = 0.004,
    ) -> None:
        if not (0.0 <= isp_coverage <= 1.0):
            raise GeolocationError("isp_coverage must be in [0, 1]")
        if not (0.0 <= failure_rate <= 1.0):
            raise GeolocationError("failure_rate must be in [0, 1]")
        self._context = context
        self._rng = rng
        self._failure_rate = failure_rate
        # Which ASes share location feeds: one draw per AS, fixed for the
        # lifetime of the tool (a contract either exists or does not).
        self._covered_asns = {
            asn for asn in topology.asns if rng.random() < isp_coverage
        }
        # The ISP feed reports each interface's city: the hosting PoP's
        # city when known, else the town nearest the true position (the
        # real service returns city/postal centroids, never exact
        # machine coordinates).
        self._isp_locations: dict[int, GeoPoint] = {}
        city_by_code = context.city_locations
        city_points = list(city_by_code.values())
        city_lats = np.array([p.lat for p in city_points])
        city_lons = np.array([p.lon for p in city_points])
        for address, iface in topology.interfaces.items():
            router = topology.routers[iface.router_id]
            if router.asn not in self._covered_asns:
                continue
            city = city_by_code.get(router.city_code) if router.city_code else None
            if city is None and city_lats.size:
                nearest = int(
                    np.argmin(
                        haversine_miles(
                            router.location.lat,
                            router.location.lon,
                            city_lats,
                            city_lons,
                        )
                    )
                )
                city = city_points[nearest]
            self._isp_locations[address] = (
                city if city is not None else router.location
            )

    @property
    def name(self) -> str:
        """Tool name as used in dataset labels."""
        return "EdgeScape"

    @property
    def covered_asns(self) -> set[int]:
        """ASes with ISP location feeds."""
        return set(self._covered_asns)

    def locate(self, address: int) -> MappingResult:
        """Locate an address via ISP feed, then hostname, then whois."""
        return self.locate_many((address,))[0]

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Batch-locate addresses with one vectorised failure draw.

        Consumes exactly one uniform variate per address, in order, so
        results are bit-identical to per-address ``locate`` calls.
        """
        n = len(addresses)
        if n == 0:
            return []
        failed = self._rng.random(n) < self._failure_rate
        return [
            MappingResult(location=None, method=METHOD_UNMAPPED)
            if fail
            else self._resolve(address)
            for address, fail in zip(addresses, failed)
        ]

    def _resolve(self, address: int) -> MappingResult:
        """The fallback chain for one address (no randomness)."""
        isp = self._isp_locations.get(address)
        if isp is not None:
            return MappingResult(location=isp, method=METHOD_ISP)
        hostname = self._context.hostnames.get(address)
        if hostname is not None:
            try:
                code = extract_city_code(hostname)
            except GeolocationError:
                code = None
            if code is not None:
                city = self._context.city_locations.get(code)
                if city is not None:
                    return MappingResult(location=city, method=METHOD_HOSTNAME)
        org = self._context.whois.lookup(address)
        if org is not None:
            return MappingResult(location=org.headquarters, method=METHOD_WHOIS)
        return MappingResult(location=None, method=METHOD_UNMAPPED)
