"""EdgeScape-style geolocation.

Akamai's EdgeScape supplements hostname techniques with *internal ISP
geographical information* obtained through its network relationships and
server deployment.  The simulator models that as per-AS coverage: for a
covered AS, the tool knows the true city of every router (returned with
city-snap accuracy); otherwise it falls back to hostname parsing and
finally whois.  Coverage is broad, so the unmapped residual is smaller
than IxMapper's (the paper reports 0.3-0.6% vs 1-1.5%).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeolocationError
from repro.geo.coords import GeoPoint
from repro.geo.distance import haversine_miles
from repro.geoloc.base import (
    METHOD_HOSTNAME,
    METHOD_ISP,
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    MappingResult,
)
from repro.net.hostnames import extract_city_code
from repro.net.topology import Topology


class EdgeScape:
    """ISP-feed-first geolocator with hostname and whois fallbacks."""

    def __init__(
        self,
        context: GeoContext,
        topology: Topology,
        rng: np.random.Generator,
        isp_coverage: float = 0.85,
        failure_rate: float = 0.004,
    ) -> None:
        if not (0.0 <= isp_coverage <= 1.0):
            raise GeolocationError("isp_coverage must be in [0, 1]")
        if not (0.0 <= failure_rate <= 1.0):
            raise GeolocationError("failure_rate must be in [0, 1]")
        self._context = context
        self._rng = rng
        self._failure_rate = failure_rate
        # Which ASes share location feeds: one draw per AS, fixed for the
        # lifetime of the tool (a contract either exists or does not).
        asn_list = list(topology.asns)
        coverage_draws = rng.random(len(asn_list))
        self._covered_asns = {
            asn
            for asn, draw in zip(asn_list, coverage_draws.tolist())
            if draw < isp_coverage
        }
        # The ISP feed reports each interface's city: the hosting PoP's
        # city when known, else the town nearest the true position (the
        # real service returns city/postal centroids, never exact
        # machine coordinates).
        self._isp_locations: dict[int, GeoPoint] = {}
        self._build_isp_locations(context, topology)

    def _build_isp_locations(
        self, context: GeoContext, topology: Topology
    ) -> None:
        """Resolve the feed's per-interface city centroids, batched."""
        if not self._covered_asns or topology.n_interfaces == 0:
            return
        city_by_code = context.city_locations
        city_points = list(city_by_code.values())
        city_lats = np.array([p.lat for p in city_points])
        city_lons = np.array([p.lon for p in city_points])
        interface_routers = topology.interface_routers()
        owner_asns = topology.router_asns()[interface_routers]
        covered = np.isin(
            owner_asns,
            np.fromiter(
                self._covered_asns, dtype=np.int64, count=len(self._covered_asns)
            ),
        )
        selected = np.flatnonzero(covered)
        if selected.size == 0:
            return
        # One location per distinct covered router, shared by all of its
        # interfaces; nearest-city searches run in vectorised chunks.
        lats, lons = topology.router_coordinates()
        city_codes = topology.router_city_codes()
        resolved: dict[int, GeoPoint] = {}
        need_nearest: list[int] = []
        for rid in np.unique(interface_routers[selected]).tolist():
            code = city_codes[rid]
            city = city_by_code.get(code) if code else None
            if city is not None:
                resolved[rid] = city
            elif city_lats.size:
                need_nearest.append(rid)
            else:
                resolved[rid] = GeoPoint(lat=float(lats[rid]), lon=float(lons[rid]))
        for start in range(0, len(need_nearest), 1024):
            chunk = np.asarray(need_nearest[start : start + 1024], dtype=np.intp)
            distances = haversine_miles(
                lats[chunk][:, None],
                lons[chunk][:, None],
                city_lats[None, :],
                city_lons[None, :],
            )
            for rid, index in zip(
                chunk.tolist(), np.argmin(distances, axis=1).tolist()
            ):
                resolved[rid] = city_points[index]
        addresses = topology.interface_addresses()
        for position in selected.tolist():
            self._isp_locations[int(addresses[position])] = resolved[
                int(interface_routers[position])
            ]

    @property
    def name(self) -> str:
        """Tool name as used in dataset labels."""
        return "EdgeScape"

    @property
    def covered_asns(self) -> set[int]:
        """ASes with ISP location feeds."""
        return set(self._covered_asns)

    def locate(self, address: int) -> MappingResult:
        """Locate an address via ISP feed, then hostname, then whois."""
        return self.locate_many((address,))[0]

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Batch-locate addresses with one vectorised failure draw.

        Consumes exactly one uniform variate per address, in order, so
        results are bit-identical to per-address ``locate`` calls.
        """
        n = len(addresses)
        if n == 0:
            return []
        failed = self._rng.random(n) < self._failure_rate
        return [
            MappingResult(location=None, method=METHOD_UNMAPPED)
            if fail
            else self._resolve(address)
            for address, fail in zip(addresses, failed)
        ]

    def _resolve(self, address: int) -> MappingResult:
        """The fallback chain for one address (no randomness)."""
        isp = self._isp_locations.get(address)
        if isp is not None:
            return MappingResult(location=isp, method=METHOD_ISP)
        hostname = self._context.hostnames.get(address)
        if hostname is not None:
            try:
                code = extract_city_code(hostname)
            except GeolocationError:
                code = None
            if code is not None:
                city = self._context.city_locations.get(code)
                if city is not None:
                    return MappingResult(location=city, method=METHOD_HOSTNAME)
        org = self._context.whois.lookup(address)
        if org is not None:
            return MappingResult(location=org.headquarters, method=METHOD_WHOIS)
        return MappingResult(location=None, method=METHOD_UNMAPPED)
