"""Simulated whois registry.

Whois-based geolocation resolves an address to the *registered
organisation* and returns the organisation's headquarters — accurate for
small single-site organisations, but systematically wrong for ISPs with
geographically dispersed infrastructure, whose every router then maps to
one HQ city.  That failure mode is important: it produces the piles of
interfaces at a handful of locations visible in the paper's Figure 8(a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.trie import PrefixTrie
from repro.geo.coords import GeoPoint
from repro.net.addressing import AddressPlan
from repro.net.elements import AutonomousSystem


@dataclass(frozen=True, slots=True)
class OrgRecord:
    """A whois organisation record.

    Attributes:
        asn: the organisation's AS number.
        name: organisation name.
        headquarters: registered address location.
    """

    asn: int
    name: str
    headquarters: GeoPoint


class WhoisRegistry:
    """Address -> organisation lookups backed by registry allocations."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self._orgs: dict[int, OrgRecord] = {}

    @classmethod
    def from_plan(
        cls, plan: AddressPlan, asns: dict[int, AutonomousSystem]
    ) -> "WhoisRegistry":
        """Build the registry from the ground truth's address grants."""
        registry = cls()
        for asn, asys in asns.items():
            registry._orgs[asn] = OrgRecord(
                asn=asn, name=asys.name, headquarters=asys.headquarters
            )
        for prefix, asn in plan.prefix_origin_pairs():
            registry._trie.insert(prefix, asn)
        return registry

    def lookup(self, address: int) -> OrgRecord | None:
        """The organisation registered for ``address``, if any."""
        match = self._trie.longest_match(address)
        if match is None:
            return None
        _, asn = match
        return self._orgs.get(int(asn))  # type: ignore[arg-type]

    @property
    def n_orgs(self) -> int:
        """Number of registered organisations."""
        return len(self._orgs)
