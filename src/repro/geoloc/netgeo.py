"""NetGeo-style geolocation: the whois-only baseline.

CAIDA's NetGeo — the ancestor IxMapper extends — built its database
primarily from whois lookups against the regional registries.  As the
paper notes, that is "generally accurate for small organizations but
may fail in cases where geographically dispersed hosts are mapped to an
organization's registered headquarters".  This mapper is useful as a
baseline in geolocation-sensitivity studies: it shows how far the
hostname/ISP techniques moved the state of the art.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeolocationError
from repro.geoloc.base import (
    METHOD_UNMAPPED,
    METHOD_WHOIS,
    GeoContext,
    MappingResult,
)


class NetGeo:
    """Whois-registry-only geolocator (every host maps to its org HQ)."""

    def __init__(
        self,
        context: GeoContext,
        rng: np.random.Generator,
        failure_rate: float = 0.05,
    ) -> None:
        if not (0.0 <= failure_rate <= 1.0):
            raise GeolocationError("failure_rate must be in [0, 1]")
        self._context = context
        self._rng = rng
        self._failure_rate = failure_rate

    @property
    def name(self) -> str:
        """Tool name as used in dataset labels."""
        return "NetGeo"

    def locate(self, address: int) -> MappingResult:
        """Locate an address via whois only."""
        return self.locate_many((address,))[0]

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Batch-locate addresses with one vectorised failure draw.

        Consumes exactly one uniform variate per address, in order, so
        results are bit-identical to per-address ``locate`` calls.
        """
        n = len(addresses)
        if n == 0:
            return []
        failed = self._rng.random(n) < self._failure_rate
        return [
            MappingResult(location=None, method=METHOD_UNMAPPED)
            if fail
            else self._resolve(address)
            for address, fail in zip(addresses, failed)
        ]

    def _resolve(self, address: int) -> MappingResult:
        """The whois lookup for one address (no randomness)."""
        org = self._context.whois.lookup(address)
        if org is None:
            return MappingResult(location=None, method=METHOD_UNMAPPED)
        return MappingResult(location=org.headquarters, method=METHOD_WHOIS)
