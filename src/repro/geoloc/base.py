"""Geolocator interface and the shared lookup context.

A geolocator maps one interface address to geographic coordinates, or
declares it unmappable.  Both simulated tools (IxMapper, EdgeScape) read
from a :class:`GeoContext` — the world knowledge a real mapping service
would have assembled: the city-code directory, observed DNS hostnames,
the whois registry, and published DNS LOC records.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.config import GeolocConfig
from repro.errors import GeolocationError
from repro.obs import current_metrics
from repro.obs import span as obs_span
from repro.geo.coords import GeoPoint
from repro.geoloc.dnsloc import build_loc_records
from repro.geoloc.whois import WhoisRegistry
from repro.net.addressing import AddressPlan
from repro.net.topology import Topology
from repro.population.worldmodel import World

#: Method tags a geolocator can report.
METHOD_HOSTNAME = "hostname"
METHOD_DNSLOC = "dnsloc"
METHOD_WHOIS = "whois"
METHOD_ISP = "isp"
METHOD_UNMAPPED = "unmapped"


@dataclass(frozen=True, slots=True)
class MappingResult:
    """Outcome of locating one address.

    Attributes:
        location: coordinates, or None when unmappable.
        method: which technique produced the answer.
    """

    location: GeoPoint | None
    method: str

    @property
    def mapped(self) -> bool:
        """True when a location was produced."""
        return self.location is not None


@dataclass(frozen=True)
class GeoContext:
    """Everything a mapping service knows about the world.

    Attributes:
        city_locations: city code -> city centre.
        hostnames: interface address -> DNS hostname.
        whois: the simulated registry.
        loc_records: interface address -> exact LOC-record location.
        as_of_address: precomputed true owner ASN per interface (used
            only by EdgeScape's ISP-feed path, which models contractual
            data shared by the ISPs themselves).
    """

    city_locations: dict[str, GeoPoint]
    hostnames: dict[int, str]
    whois: WhoisRegistry
    loc_records: dict[int, GeoPoint]
    as_of_address: dict[int, int]


def build_context(
    world: World,
    topology: Topology,
    plan: AddressPlan,
    config: GeolocConfig,
    rng: np.random.Generator,
) -> GeoContext:
    """Assemble the lookup context from the ground truth."""
    city_locations = {city.code: city.location for city in world.cities}
    whois = WhoisRegistry.from_plan(plan, topology.asns)
    loc_records = build_loc_records(topology, config.ixmapper_dnsloc_rate, rng)
    owner_asns = topology.router_asns()[topology.interface_routers()]
    as_of_address = dict(
        zip(topology.interface_addresses().tolist(), owner_asns.tolist())
    )
    return GeoContext(
        city_locations=city_locations,
        hostnames=dict(topology.hostnames),
        whois=whois,
        loc_records=loc_records,
        as_of_address=as_of_address,
    )


class Geolocator(Protocol):
    """Anything that can place an interface address on the map."""

    @property
    def name(self) -> str:
        """Tool name (used in dataset labels, e.g. Table I rows)."""
        ...

    def locate(self, address: int) -> MappingResult:
        """Locate one interface address."""
        ...

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Locate a batch of addresses, one result per input, in order.

        The mapping stage's hot path: implementations should vectorise
        whatever they can (the built-in tools batch their RNG draws) but
        must consume randomness exactly as an equivalent sequence of
        ``locate`` calls would, so batch size never changes results.
        """
        ...


class SequentialLocateMixin:
    """Default ``locate_many`` for locators without a batched fast path.

    Mixing this in keeps per-address locators (e.g. scripted test stubs)
    conformant with the :class:`Geolocator` protocol.
    """

    def locate_many(self, addresses: Sequence[int]) -> list[MappingResult]:
        """Locate a batch by calling ``locate`` once per address."""
        return [self.locate(address) for address in addresses]


def locate_batch(
    geolocator: Geolocator, addresses: Sequence[int]
) -> list[MappingResult]:
    """Batch-locate through ``locate_many`` when the tool provides it.

    Falls back to per-address ``locate`` calls for minimal locators that
    predate the batch API (duck-typed, so third-party locators keep
    working unchanged).

    Repeated addresses within one batch are resolved **once**: the tool
    sees each distinct address a single time (first-occurrence order)
    and every duplicate input receives that one result.  This keeps the
    query server's micro-batcher from geolocating the same IP twice per
    flush, and makes duplicate inputs deterministic even for tools with
    per-call randomness.  The pipeline's batches never contain
    duplicates, so its RNG consumption (and every golden value) is
    unchanged.

    When observability is active (``repro.obs``), each batch runs in a
    ``geoloc.locate_batch`` span and records batch size, per-source
    resolution counters (``geoloc.method.<method>``), the
    unknown-location residual (``geoloc.unmapped``), and the number of
    duplicate lookups saved (``geoloc.dedup_saved``).
    """
    tool = getattr(geolocator, "name", type(geolocator).__name__)
    unique: list[int] = []
    seen: dict[int, int] = {}
    for address in addresses:
        if address not in seen:
            seen[address] = len(unique)
            unique.append(address)
    n_duplicates = len(addresses) - len(unique)
    with obs_span(
        "geoloc.locate_batch",
        tool=tool,
        batch_size=len(addresses),
        unique=len(unique),
    ):
        locate_many = getattr(geolocator, "locate_many", None)
        if locate_many is not None:
            unique_results = list(locate_many(unique))
        else:
            unique_results = [geolocator.locate(address) for address in unique]
    if len(unique_results) != len(unique):
        raise GeolocationError(
            f"{tool} returned {len(unique_results)} results "
            f"for {len(unique)} addresses"
        )
    results = [unique_results[seen[address]] for address in addresses]
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter("geoloc.batches").add(1)
        metrics.counter("geoloc.addresses").add(len(results))
        metrics.counter("geoloc.dedup_saved").add(n_duplicates)
        metrics.histogram("geoloc.batch_size").observe(len(results))
        by_method = Counter(result.method for result in results)
        for method, count in by_method.items():
            metrics.counter(f"geoloc.method.{method}").add(count)
        metrics.counter("geoloc.unmapped").add(
            by_method.get(METHOD_UNMAPPED, 0)
        )
    return results
