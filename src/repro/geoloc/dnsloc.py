"""Simulated DNS LOC records (RFC 1876).

LOC records give an exact machine location but are optional and rarely
published; geolocators use them as a high-accuracy fallback.  We give a
small random subset of interfaces a LOC record carrying the true router
coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.geo.coords import GeoPoint
from repro.net.topology import Topology


def build_loc_records(
    topology: Topology, rate: float, rng: np.random.Generator
) -> dict[int, GeoPoint]:
    """LOC records for a random ``rate`` fraction of interfaces.

    Returns:
        interface address -> exact router location.
    """
    records: dict[int, GeoPoint] = {}
    if rate <= 0 or topology.n_interfaces == 0:
        return records
    # One uniform draw per interface in insertion order: the same stream
    # the scalar per-interface loop consumed.
    draws = rng.random(topology.n_interfaces)
    selected = np.flatnonzero(draws < rate)
    if selected.size == 0:
        return records
    addresses = topology.interface_addresses()[selected]
    routers = topology.interface_routers()[selected]
    lats, lons = topology.router_coordinates()
    for address, lat, lon in zip(
        addresses.tolist(), lats[routers].tolist(), lons[routers].tolist()
    ):
        records[address] = GeoPoint(lat=lat, lon=lon)
    return records
