"""Simulated DNS LOC records (RFC 1876).

LOC records give an exact machine location but are optional and rarely
published; geolocators use them as a high-accuracy fallback.  We give a
small random subset of interfaces a LOC record carrying the true router
coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.geo.coords import GeoPoint
from repro.net.topology import Topology


def build_loc_records(
    topology: Topology, rate: float, rng: np.random.Generator
) -> dict[int, GeoPoint]:
    """LOC records for a random ``rate`` fraction of interfaces.

    Returns:
        interface address -> exact router location.
    """
    records: dict[int, GeoPoint] = {}
    if rate <= 0:
        return records
    for address, iface in topology.interfaces.items():
        if rng.random() < rate:
            records[address] = topology.routers[iface.router_id].location
    return records
