"""Generation-keyed SQLite time-series store for analytics metrics.

Follows the battle-tested conventions of :mod:`repro.sweep.store`: WAL
journal mode so a reader (the CLI, the coordinator) never blocks the
writer (the ingest observer), a busy timeout instead of hand-rolled
retry loops, and ``INSERT OR IGNORE`` against unique keys so every
write is idempotent — re-analyzing a generation after a crash or an
offline replay over an already-ingested WAL records nothing twice.

Layout:

- ``campaigns`` — one row per named metric stream.
- ``generations`` — one row per analyzed snapshot generation, carrying
  the publish sequence, snapshot hash, and size facts.
- ``metrics`` — the time series proper, keyed ``(campaign, gen, name)``.
- ``alerts`` — drift triggers/recoveries, keyed so a re-run cannot
  duplicate an alert.

Values are ``REAL NOT NULL``: SQLite stores a float NaN as NULL, so
non-finite values are rejected at the API boundary rather than
corrupting the series (the engine never emits them; see
:meth:`~repro.analytics.engine.AnalyticsEngine.metrics`).
"""

from __future__ import annotations

import math
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.errors import AnalyticsError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT NOT NULL UNIQUE,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS generations (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    gen INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    snapshot_hash TEXT NOT NULL,
    n_nodes INTEGER NOT NULL,
    n_links INTEGER NOT NULL,
    created_unix REAL NOT NULL,
    UNIQUE (campaign_id, gen)
);
CREATE TABLE IF NOT EXISTS metrics (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    gen INTEGER NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (campaign_id, gen, name)
);
CREATE TABLE IF NOT EXISTS alerts (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    gen INTEGER NOT NULL,
    metric TEXT NOT NULL,
    kind TEXT NOT NULL,
    value REAL NOT NULL,
    score REAL NOT NULL,
    threshold REAL NOT NULL,
    created_unix REAL NOT NULL,
    UNIQUE (campaign_id, gen, metric, kind)
);
CREATE INDEX IF NOT EXISTS idx_metrics_series
    ON metrics (campaign_id, name, gen);
"""


class MetricStore:
    """Durable per-generation metric series under one SQLite file."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._tx() as conn:
                conn.executescript(_SCHEMA)
        except (OSError, sqlite3.Error) as exc:
            raise AnalyticsError(
                f"cannot open metric store at {self.path}: {exc}"
            ) from exc

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=10000")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One transaction on a fresh connection.

        Connections are opened per call and closed explicitly: sqlite3
        Connection objects participate in reference cycles, and a
        connection collected in a forked child can corrupt the parent's
        WAL.  Open-use-close keeps the store fork-safe.
        """
        conn = self._connect()
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    # -- write path -----------------------------------------------------------

    def ensure_campaign(self, name: str) -> int:
        """The id of the named campaign, creating it if needed."""
        with self._tx() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO campaigns (name, created_unix)"
                " VALUES (?, ?)",
                (name, time.time()),
            )
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        return int(row[0])

    def record_generation(
        self,
        campaign_id: int,
        gen: int,
        metrics: dict[str, float],
        *,
        seq: int = 0,
        snapshot_hash: str = "",
        n_nodes: int = 0,
        n_links: int = 0,
    ) -> bool:
        """Record one generation's metrics; False when already stored.

        The generation row and its metric rows land in one transaction,
        so a crash mid-write leaves either nothing or everything — the
        resume path re-runs the write and the unique keys absorb it.
        """
        bad = [k for k, v in metrics.items() if not math.isfinite(v)]
        if bad:
            raise AnalyticsError(
                f"non-finite metric values for gen {gen}: {sorted(bad)}"
            )
        with self._tx() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO generations"
                " (campaign_id, gen, seq, snapshot_hash, n_nodes, n_links,"
                "  created_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id, gen, seq, snapshot_hash,
                    n_nodes, n_links, time.time(),
                ),
            )
            fresh = cur.rowcount == 1
            conn.executemany(
                "INSERT OR IGNORE INTO metrics"
                " (campaign_id, gen, name, value) VALUES (?, ?, ?, ?)",
                [
                    (campaign_id, gen, name, float(value))
                    for name, value in sorted(metrics.items())
                ],
            )
        return fresh

    def record_alert(
        self,
        campaign_id: int,
        gen: int,
        metric: str,
        kind: str,
        *,
        value: float,
        score: float,
        threshold: float,
    ) -> bool:
        """Record one drift alert; False when already stored."""
        with self._tx() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO alerts"
                " (campaign_id, gen, metric, kind, value, score, threshold,"
                "  created_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id, gen, metric, kind,
                    float(value), float(score), float(threshold), time.time(),
                ),
            )
            return cur.rowcount == 1

    # -- read path ------------------------------------------------------------

    def campaign_id(self, name: str) -> int | None:
        """The id of a campaign, None when it does not exist."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        return None if row is None else int(row[0])

    def campaigns(self) -> list[str]:
        """All campaign names, oldest first."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT name FROM campaigns ORDER BY id"
            ).fetchall()
        return [r[0] for r in rows]

    def latest_gen(self, campaign_id: int) -> int | None:
        """The newest analyzed generation, None when empty."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT MAX(gen) FROM generations WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        return None if row[0] is None else int(row[0])

    def generation(self, campaign_id: int, gen: int) -> dict | None:
        """One generation's facts and metrics, None when absent."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT gen, seq, snapshot_hash, n_nodes, n_links,"
                " created_unix FROM generations"
                " WHERE campaign_id = ? AND gen = ?",
                (campaign_id, gen),
            ).fetchone()
            if row is None:
                return None
            metrics = conn.execute(
                "SELECT name, value FROM metrics"
                " WHERE campaign_id = ? AND gen = ? ORDER BY name",
                (campaign_id, gen),
            ).fetchall()
        return {
            "gen": int(row[0]),
            "seq": int(row[1]),
            "snapshot_hash": row[2],
            "n_nodes": int(row[3]),
            "n_links": int(row[4]),
            "created_unix": float(row[5]),
            "metrics": {name: float(value) for name, value in metrics},
        }

    def latest(self, campaign_id: int) -> dict | None:
        """The newest generation's facts and metrics, None when empty."""
        gen = self.latest_gen(campaign_id)
        if gen is None:
            return None
        return self.generation(campaign_id, gen)

    def generations(self, campaign_id: int) -> list[int]:
        """All analyzed generations, ascending."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT gen FROM generations WHERE campaign_id = ?"
                " ORDER BY gen",
                (campaign_id,),
            ).fetchall()
        return [int(r[0]) for r in rows]

    def history(
        self, campaign_id: int, metric: str, *, limit: int = 50
    ) -> list[tuple[int, float]]:
        """The newest ``limit`` points of one series, ascending by gen."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT gen, value FROM metrics"
                " WHERE campaign_id = ? AND name = ?"
                " ORDER BY gen DESC LIMIT ?",
                (campaign_id, metric, limit),
            ).fetchall()
        return [(int(g), float(v)) for g, v in reversed(rows)]

    def metric_names(self, campaign_id: int) -> list[str]:
        """Every metric name the campaign has recorded, sorted."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT DISTINCT name FROM metrics WHERE campaign_id = ?"
                " ORDER BY name",
                (campaign_id,),
            ).fetchall()
        return [r[0] for r in rows]

    def alerts(self, campaign_id: int, *, limit: int = 50) -> list[dict]:
        """The newest ``limit`` alerts, ascending by (gen, id)."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT gen, metric, kind, value, score, threshold,"
                " created_unix FROM alerts WHERE campaign_id = ?"
                " ORDER BY gen DESC, id DESC LIMIT ?",
                (campaign_id, limit),
            ).fetchall()
        return [
            {
                "gen": int(r[0]),
                "metric": r[1],
                "kind": r[2],
                "value": float(r[3]),
                "score": float(r[4]),
                "threshold": float(r[5]),
                "created_unix": float(r[6]),
            }
            for r in reversed(rows)
        ]
