"""EWMA/CUSUM drift detection over per-generation metric series.

Each monitored metric keeps an exponentially weighted estimate of its
mean and variance plus a two-sided CUSUM of standardized deviations.
The CUSUM accumulates only the excess beyond a slack band, so
generation-to-generation noise decays while a sustained shift — a
remap-heavy delta moving ``intradomain_share``, a geographic
rebalancing moving ``waxman_l.US`` — ramps the statistic past the
threshold within a few generations.

Alerts are edge-triggered: one ``trigger`` event when the score first
crosses the threshold, one ``recover`` event when it falls back below
the recovery fraction.  A metric that stays drifted raises exactly one
alert, which is what the smoke test and the exactly-once store key
rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalyticsError


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for :class:`DriftDetector`.

    Attributes:
        ewma_alpha: weight of the newest sample in the mean/variance
            estimates (0 < alpha <= 1).
        slack: standardized deviations ignored per step (CUSUM ``k``).
        threshold: CUSUM score that raises an alert (``h``).
        recover_fraction: an alerting metric recovers once its score
            falls to ``recover_fraction * threshold``.
        warmup: samples consumed before scoring starts; the first
            generations only establish the baseline.
        z_clip: cap on one sample's standardized deviation, so a single
            wild generation cannot instantly saturate the CUSUM.
        min_std: absolute floor on the standard deviation estimate.
        rel_floor: relative floor, ``rel_floor * |mean|`` — protects
            near-constant series from hair-trigger alerts.
    """

    ewma_alpha: float = 0.3
    slack: float = 0.5
    threshold: float = 6.0
    recover_fraction: float = 0.5
    warmup: int = 4
    z_clip: float = 8.0
    min_std: float = 1e-12
    rel_floor: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise AnalyticsError("ewma_alpha must be in (0, 1]")
        if self.threshold <= 0 or self.z_clip <= 0:
            raise AnalyticsError("threshold and z_clip must be positive")
        if not 0.0 <= self.recover_fraction < 1.0:
            raise AnalyticsError("recover_fraction must be in [0, 1)")
        if self.warmup < 1:
            raise AnalyticsError("warmup must be at least 1")


@dataclass
class _MetricState:
    mean: float = 0.0
    var: float = 0.0
    n: int = 0
    s_pos: float = 0.0
    s_neg: float = 0.0
    alerting: bool = False
    last_score: float = 0.0


@dataclass(frozen=True)
class DriftEvent:
    """One edge of an alert: ``kind`` is ``trigger`` or ``recover``."""

    metric: str
    kind: str
    gen: int
    value: float
    score: float
    threshold: float


class DriftDetector:
    """Per-metric EWMA baseline + two-sided CUSUM change detection."""

    def __init__(
        self,
        config: DriftConfig | None = None,
        *,
        metrics: list[str] | None = None,
        thresholds: dict[str, float] | None = None,
    ) -> None:
        """Args:
        config: shared tuning; defaults to :class:`DriftConfig`.
        metrics: allowlist of metric names to monitor (None = all).
        thresholds: per-metric threshold overrides.
        """
        self.config = config or DriftConfig()
        self._only = None if metrics is None else set(metrics)
        self._thresholds = dict(thresholds or {})
        self._states: dict[str, _MetricState] = {}

    def _threshold(self, metric: str) -> float:
        return self._thresholds.get(metric, self.config.threshold)

    def update(self, metric: str, gen: int, value: float) -> DriftEvent | None:
        """Consume one sample; return an alert edge if one fired."""
        if self._only is not None and metric not in self._only:
            return None
        if not math.isfinite(value):
            return None
        cfg = self.config
        state = self._states.setdefault(metric, _MetricState())
        event: DriftEvent | None = None
        if state.n >= cfg.warmup:
            h = self._threshold(metric)
            std = max(
                cfg.min_std, cfg.rel_floor * abs(state.mean),
                math.sqrt(state.var),
            )
            z = max(-cfg.z_clip, min(cfg.z_clip, (value - state.mean) / std))
            # Cap the CUSUMs at 2h: keeps recovery time bounded after
            # long excursions without changing when alerts trigger.
            state.s_pos = min(2 * h, max(0.0, state.s_pos + z - cfg.slack))
            state.s_neg = min(2 * h, max(0.0, state.s_neg - z - cfg.slack))
            score = max(state.s_pos, state.s_neg)
            state.last_score = score
            if not state.alerting and score > h:
                state.alerting = True
                event = DriftEvent(metric, "trigger", gen, value, score, h)
            elif state.alerting and score <= cfg.recover_fraction * h:
                state.alerting = False
                state.s_pos = 0.0
                state.s_neg = 0.0
                event = DriftEvent(metric, "recover", gen, value, score, h)
        if state.n == 0:
            state.mean = value
            state.var = 0.0
        else:
            diff = value - state.mean
            state.mean += cfg.ewma_alpha * diff
            state.var = (1.0 - cfg.ewma_alpha) * (
                state.var + cfg.ewma_alpha * diff * diff
            )
        state.n += 1
        return event

    def update_all(
        self, gen: int, metrics: dict[str, float]
    ) -> list[DriftEvent]:
        """Consume one generation's metrics (sorted by name, so event
        order is deterministic); return every alert edge that fired."""
        events = []
        for name in sorted(metrics):
            event = self.update(name, gen, metrics[name])
            if event is not None:
                events.append(event)
        return events

    @property
    def alerting(self) -> list[str]:
        """Metrics currently in the alerting state, sorted."""
        return sorted(
            name for name, st in self._states.items() if st.alerting
        )

    def score(self, metric: str) -> float:
        """The metric's latest CUSUM score (0.0 when never scored)."""
        state = self._states.get(metric)
        return 0.0 if state is None else state.last_score
