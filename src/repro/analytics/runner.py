"""Hooking continuous analytics into the ingest path.

An :class:`AnalyticsRunner` is the :class:`~repro.ingest.runner.Ingester`
observer: each applied batch advances the incremental
:class:`~repro.analytics.engine.AnalyticsEngine`, and each published
generation snapshots the engine's metrics into the
:class:`~repro.analytics.store.MetricStore`, feeds the
:class:`~repro.analytics.drift.DriftDetector`, publishes drift events
on the telemetry bus, and refreshes the ``repro_analytics_*`` gauges.

The observer is deliberately fail-open: an analytics bug marks the
engine stale (re-seeded from the live index at the next publish, with
an error counter bumped) rather than failing the ingest write path.

:func:`replay_wal` is the offline twin — ``repro analytics run`` drives
it over a base snapshot plus an ingest WAL to produce the same
generation-keyed series the live observer would have written; the
store's unique keys make the two paths meet idempotently.
"""

from __future__ import annotations

from pathlib import Path

from repro.analytics.drift import DriftConfig, DriftDetector, DriftEvent
from repro.analytics.engine import AnalyticsEngine
from repro.analytics.store import MetricStore
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalyticsError, ReproError
from repro.ingest.deltas import DeltaBatch
from repro.ingest.wal import WriteAheadLog
from repro.obs.bus import publish as bus_publish
from repro.obs.metrics import incr, set_gauge
from repro.serve.index import DEFAULT_CELL_ARCMIN, SnapshotIndex

#: Default campaign name for the live ingest observer.
DEFAULT_CAMPAIGN = "ingest"
#: Default store filename inside an ingest output directory.
DEFAULT_DB_NAME = "analytics.db"


class AnalyticsRunner:
    """Ingester observer that maintains and persists per-gen metrics."""

    def __init__(
        self,
        store: MetricStore | str | Path,
        campaign: str = DEFAULT_CAMPAIGN,
        *,
        drift_config: DriftConfig | None = None,
        drift_metrics: list[str] | None = None,
        drift_thresholds: dict[str, float] | None = None,
    ) -> None:
        self.store = (
            store if isinstance(store, MetricStore) else MetricStore(store)
        )
        self.campaign = campaign
        self.campaign_id = self.store.ensure_campaign(campaign)
        self.detector = DriftDetector(
            drift_config,
            metrics=drift_metrics,
            thresholds=drift_thresholds,
        )
        self.engine: AnalyticsEngine | None = None
        self.alerts_total = sum(
            1
            for alert in self.store.alerts(self.campaign_id, limit=10_000)
            if alert["kind"] == "trigger"
        )
        self._stale = False
        # Warm the detector baseline from the stored series so a
        # restarted process scores against history, not a cold start.
        # Events are dropped: any alert they would raise was already
        # recorded (the store key dedups the re-run).
        for gen in self.store.generations(self.campaign_id):
            record = self.store.generation(self.campaign_id, gen)
            if record is not None:
                self.detector.update_all(gen, record["metrics"])

    # -- observer protocol ----------------------------------------------------

    def attach(self, ingester) -> None:
        """Seed from the ingester's live index and start observing."""
        self.engine = AnalyticsEngine(
            ingester.index.dataset, index=ingester.index
        )
        ingester.observer = self

    def on_apply(self, batch: DeltaBatch, index: SnapshotIndex) -> None:
        """Advance the engine past one applied batch (fail-open)."""
        if self.engine is None:
            return
        try:
            self.engine.apply(batch, index)
        except ReproError:
            self._stale = True
            incr("analytics.apply_errors")
        set_gauge(
            "analytics.engine_gen",
            float(self.engine.gen if not self._stale else -1),
        )

    def on_publish(self, facts: dict, index: SnapshotIndex) -> None:
        """Persist the published generation's metrics and score drift."""
        if self.engine is None or self._stale or self.engine.gen != index.gen:
            # Fail-open recovery: one from-scratch seed, then resume
            # incremental maintenance.
            self.engine = AnalyticsEngine(index.dataset, index=index)
            self._stale = False
            incr("analytics.reseeds")
        gen = int(index.gen)
        metrics = self.engine.metrics()
        fresh = self.store.record_generation(
            self.campaign_id,
            gen,
            metrics,
            seq=int(facts.get("seq", 0)),
            snapshot_hash=str(facts.get("snapshot_hash", "")),
            n_nodes=index.dataset.n_nodes,
            n_links=index.dataset.n_links,
        )
        if fresh:
            # Only a first-time generation feeds the detector —
            # a crash-replayed publish must not double-count.
            for event in self.detector.update_all(gen, metrics):
                self._emit(event)
        self._export_gauges(gen)

    # -- shared plumbing ------------------------------------------------------

    def record_baseline(self, index: SnapshotIndex, *, seq: int = 0) -> bool:
        """Store the engine's current generation outside the publish
        path (the seed generation of a run); False when present."""
        if self.engine is None:
            raise AnalyticsError("record_baseline requires a seeded engine")
        gen = int(index.gen)
        metrics = self.engine.metrics()
        fresh = self.store.record_generation(
            self.campaign_id,
            gen,
            metrics,
            seq=seq,
            snapshot_hash=index.snapshot_hash,
            n_nodes=index.dataset.n_nodes,
            n_links=index.dataset.n_links,
        )
        if fresh:
            for event in self.detector.update_all(gen, metrics):
                self._emit(event)
        self._export_gauges(gen)
        return fresh

    def _emit(self, event: DriftEvent) -> None:
        stored = self.store.record_alert(
            self.campaign_id,
            event.gen,
            event.metric,
            event.kind,
            value=event.value,
            score=event.score,
            threshold=event.threshold,
        )
        if not stored:
            return
        if event.kind == "trigger":
            self.alerts_total += 1
            incr("analytics.alerts_total")
        bus_publish(
            "analytics.drift",
            metric=event.metric,
            edge=event.kind,
            gen=event.gen,
            value=round(event.value, 6),
            score=round(event.score, 3),
        )

    def _export_gauges(self, gen: int) -> None:
        set_gauge("analytics.analyzed_gen", float(gen))
        set_gauge(
            "analytics.alerts_active", float(len(self.detector.alerting))
        )
        set_gauge("analytics.alerts_total", float(self.alerts_total))

    def status_block(self, current_gen: int | None = None) -> dict:
        """JSON-ready analytics facts for status surfaces."""
        analyzed = self.store.latest_gen(self.campaign_id)
        block = {
            "campaign": self.campaign,
            "analyzed_gen": analyzed,
            "alerting": self.detector.alerting,
            "alerts_total": self.alerts_total,
        }
        if current_gen is not None:
            block["lag"] = (
                current_gen if analyzed is None else current_gen - analyzed
            )
        return block


def analytics_lag(
    db_path: Path | str, campaign: str, current_gen: int
) -> dict | None:
    """Read-only lag block against a store that may not exist.

    Returns None when the store file or campaign is absent, so status
    surfaces can omit the section instead of erroring.
    """
    path = Path(db_path)
    if not path.exists():
        return None
    store = MetricStore(path)
    campaign_id = store.campaign_id(campaign)
    if campaign_id is None:
        return None
    analyzed = store.latest_gen(campaign_id)
    return {
        "campaign": campaign,
        "analyzed_gen": analyzed,
        "lag": current_gen if analyzed is None else current_gen - analyzed,
        "alerts": len(store.alerts(campaign_id, limit=10_000)),
    }


def replay_wal(
    base: MappedDataset | str | Path,
    wal_path: str | Path,
    store: MetricStore | str | Path,
    campaign: str = DEFAULT_CAMPAIGN,
    *,
    cell_arcmin: float = DEFAULT_CELL_ARCMIN,
    drift_config: DriftConfig | None = None,
    drift_metrics: list[str] | None = None,
    drift_thresholds: dict[str, float] | None = None,
) -> dict:
    """Offline analytics: base snapshot + WAL -> per-generation series.

    Analyzes *every* generation (one per journaled batch), numbered the
    same way the live ingester numbers them — ``gen = 1 + seq`` over a
    fresh base — so a later online run against the same directory lands
    on the same keys and the store's idempotent writes merge the two.

    Returns a JSON-ready summary of what the replay recorded.
    """
    if isinstance(base, MappedDataset):
        dataset = base
    else:
        from repro.datasets.serialize import load_dataset

        dataset = load_dataset(base)
    runner = AnalyticsRunner(
        store,
        campaign,
        drift_config=drift_config,
        drift_metrics=drift_metrics,
        drift_thresholds=drift_thresholds,
    )
    index = SnapshotIndex(dataset, cell_arcmin)
    runner.engine = AnalyticsEngine(dataset, index=index)
    runner.record_baseline(index)
    recorded = 1
    alerts_before = runner.alerts_total
    wal = WriteAheadLog(wal_path, sync=False)
    try:
        for seq, batch in wal.replay_deltas(0):
            index = index.apply_delta(batch)
            runner.on_apply(batch, index)
            runner.on_publish(
                {"seq": seq, "snapshot_hash": index.snapshot_hash}, index
            )
            recorded += 1
    finally:
        wal.close()
    return {
        "campaign": campaign,
        "final_gen": int(index.gen),
        "generations_analyzed": recorded,
        "generations_stored": len(runner.store.generations(runner.campaign_id)),
        "new_alerts": runner.alerts_total - alerts_before,
        "alerting": runner.detector.alerting,
    }
