"""Continuous analytics: incremental paper metrics over snapshot gens.

The batch experiments in :mod:`repro.core` answer the paper's questions
once; this package answers them *per generation* as streaming ingestion
evolves the snapshot — an incrementally maintained
:class:`AnalyticsEngine`, a generation-keyed :class:`MetricStore`,
EWMA/CUSUM :class:`DriftDetector` alerts, and the
:class:`AnalyticsRunner` observer that wires them into the ingest
publish path.
"""

from repro.analytics.drift import DriftConfig, DriftDetector, DriftEvent
from repro.analytics.engine import AnalyticsEngine, RegionState
from repro.analytics.runner import (
    DEFAULT_CAMPAIGN,
    DEFAULT_DB_NAME,
    AnalyticsRunner,
    analytics_lag,
    replay_wal,
)
from repro.analytics.store import MetricStore

__all__ = [
    "AnalyticsEngine",
    "AnalyticsRunner",
    "DEFAULT_CAMPAIGN",
    "DEFAULT_DB_NAME",
    "DriftConfig",
    "DriftDetector",
    "DriftEvent",
    "MetricStore",
    "RegionState",
    "analytics_lag",
    "replay_wal",
]
