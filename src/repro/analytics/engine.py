"""Incremental maintenance of the paper's headline metrics.

The batch experiments in :mod:`repro.core` recompute each result family
from the full dataset: distance-preference histograms pay an O(n^2)
pair count per region, the density regression re-tallies every node
into its patch grid, and the AS dispersion figures walk every AS.  The
streaming path publishes a new generation every few delta batches, so
an :class:`AnalyticsEngine` maintains the same state *differentially*:

- **pair/link histograms** (Section V): a delta changes only the rows
  it adds or moves, so the engine subtracts each changed row's pair
  contributions against the old region membership and adds them back
  against the new one.  Every subtracted or added distance is computed
  with the *smaller global row first* — exactly the orientation
  :func:`~repro.core.distance.exact_pair_counts` uses — so the integer
  histograms stay bit-identical to a from-scratch count, not merely
  close.
- **grid occupancy / alpha** (Section IV): per-region patch tallies are
  integer bincounts, decremented at a moved row's old cell and
  incremented at its new one; the superlinearity exponent is re-fitted
  from the maintained tally (the fit itself is O(cells), cheap).
- **AS dispersion** (Section VI): :class:`~repro.serve.index.SnapshotIndex`
  already maintains per-AS summaries through a dirty-set update; the
  engine aggregates them (hull-zero fraction, locations per AS, AS
  degree) in O(n_ases).
- **link domains** (Table VI): intradomain/interdomain link tallies are
  adjusted for appended links and for old links incident to remapped
  rows.

The update cost per batch is O(changed_rows * region_size + n_links)
against O(region_size^2) for a recompute, which is what makes
per-generation analytics affordable (see ``benchmarks/bench_analytics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.table import UNMAPPED_ASN
from repro.core.distance import (
    EXACT_PAIR_LIMIT,
    N_BINS,
    PAPER_BIN_MILES,
    exact_pair_counts,
    preference_from_counts,
    waxman_fit,
)
from repro.core.stats import loglog_fit
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError, AnalyticsError
from repro.geo.distance import haversine_miles
from repro.geo.grid import PAPER_PATCH_ARCMIN, PatchGrid
from repro.geo.regions import STUDY_REGIONS, Region
from repro.ingest.deltas import DeltaBatch
from repro.population.worldmodel import PopulationField
from repro.serve.index import DEFAULT_BIN_MILES, SnapshotIndex

#: Regions with fewer mapped nodes than this get no preference metrics
#: (mirrors :func:`repro.core.distance.preference_function`).
MIN_REGION_NODES = 10


@dataclass
class RegionState:
    """Maintained per-region metric state.

    Attributes:
        region: the region box.
        bin_miles: distance-bin width (paper value where defined).
        edges: the ``N_BINS + 1`` histogram edges.
        mask: boolean region membership per dataset row.
        n_nodes: mapped nodes inside the region.
        pair_counts: node pairs per distance bin (int64, exact).
        link_counts: links per distance bin (int64, exact).
        grid: the region's 75' patch grid.
        occupancy: nodes per grid cell (int64, exact).
        population: persons per grid cell (static; None without a field).
        pref_tracked: False when the region exceeded
            :data:`~repro.core.distance.EXACT_PAIR_LIMIT` at seed time,
            in which case pair/link histograms are not maintained.
    """

    region: Region
    bin_miles: float
    edges: np.ndarray
    mask: np.ndarray
    n_nodes: int
    pair_counts: np.ndarray
    link_counts: np.ndarray
    grid: PatchGrid
    occupancy: np.ndarray
    population: np.ndarray | None = None
    pref_tracked: bool = True


@dataclass
class EngineStats:
    """Counters describing the engine's work so far."""

    applied_batches: int = 0
    seeded_unix: float = 0.0
    regions: list[str] = field(default_factory=list)


def _pairs_involving(
    lats: np.ndarray,
    lons: np.ndarray,
    members: np.ndarray,
    touched: np.ndarray,
    bin_miles: float,
) -> np.ndarray:
    """Histogram of pairs {t, m} with t in ``touched``, m in ``members``.

    ``members`` is the sorted region membership (global rows) and
    ``touched`` a sorted subset of it.  Each qualifying pair is counted
    exactly once, and every distance is evaluated with the smaller
    global row as the *first* haversine argument — the same orientation
    (and therefore bitwise the same float) as
    :func:`~repro.core.distance.exact_pair_counts` over the restricted
    region arrays, which is what keeps incremental subtraction and
    addition bit-exact.
    """
    edges = np.arange(N_BINS + 1, dtype=float) * bin_miles
    hist = np.zeros(N_BINS, dtype=np.int64)
    for t in touched.tolist():
        k = int(np.searchsorted(members, t))
        below = members[:k]
        above = members[k + 1 :]
        if below.size:
            d = haversine_miles(lats[below], lons[below], lats[t], lons[t])
            hist += np.histogram(d, bins=edges)[0]
        if above.size:
            d = haversine_miles(lats[t], lons[t], lats[above], lons[above])
            hist += np.histogram(d, bins=edges)[0]
    if touched.size > 1:
        # Touched-touched pairs were counted from both endpoints'
        # perspectives; subtract one (identically oriented) copy.
        hist -= exact_pair_counts(
            lats[touched], lons[touched], bin_miles, N_BINS
        )
    return hist


def _classified_links(
    asns: np.ndarray, a: np.ndarray, b: np.ndarray
) -> tuple[int, int]:
    """``(intradomain, interdomain)`` counts of the links ``(a, b)``."""
    if a.size == 0:
        return 0, 0
    as_a = asns[a]
    as_b = asns[b]
    known = (as_a != UNMAPPED_ASN) & (as_b != UNMAPPED_ASN)
    intra = int(np.count_nonzero(known & (as_a == as_b)))
    inter = int(np.count_nonzero(known & (as_a != as_b)))
    return intra, inter


class AnalyticsEngine:
    """Differentially maintained paper metrics over an evolving snapshot.

    Seeding from a dataset performs the one full from-scratch
    computation; each :meth:`apply` then advances the state by one
    delta batch in time proportional to the rows the batch touched.
    The maintained integer state (pair/link histograms, grid
    occupancy, domain tallies) is bit-identical to re-seeding from the
    final dataset — the differential tests in
    ``tests/test_analytics.py`` assert exactly that.
    """

    def __init__(
        self,
        dataset: MappedDataset,
        *,
        regions: tuple[Region, ...] = STUDY_REGIONS,
        population: PopulationField | None = None,
        patch_arcmin: float = PAPER_PATCH_ARCMIN,
        index: SnapshotIndex | None = None,
    ) -> None:
        if index is not None and index.partition is not None:
            raise AnalyticsError(
                "analytics requires a full (non-partition) index"
            )
        self._dataset = dataset
        self._index = index
        self.gen = 1 if index is None else int(index.gen)
        self.stats = EngineStats(regions=[r.name for r in regions])
        self.regions: dict[str, RegionState] = {}
        for region in regions:
            self.regions[region.name] = self._seed_region(
                dataset, region, population, patch_arcmin
            )
        intra, inter = _classified_links(
            dataset.asns,
            dataset.links[:, 0] if dataset.n_links else np.empty(0, np.intp),
            dataset.links[:, 1] if dataset.n_links else np.empty(0, np.intp),
        )
        self.intradomain_links = intra
        self.interdomain_links = inter

    @staticmethod
    def _seed_region(
        dataset: MappedDataset,
        region: Region,
        population: PopulationField | None,
        patch_arcmin: float,
    ) -> RegionState:
        """From-scratch region state (the one O(n^2) step per region)."""
        bin_miles = PAPER_BIN_MILES.get(region.name, DEFAULT_BIN_MILES)
        edges = np.arange(N_BINS + 1, dtype=float) * bin_miles
        mask = region.contains_mask(dataset.lats, dataset.lons)
        n_nodes = int(np.count_nonzero(mask))
        grid = PatchGrid(region=region, cell_arcmin=patch_arcmin)
        idx = grid.cell_index(dataset.lats, dataset.lons)
        idx = idx[idx >= 0]
        occupancy = np.bincount(idx, minlength=grid.n_cells).astype(np.int64)
        pop_cells = None
        if population is not None:
            pop_cells = grid.tally(
                population.lats, population.lons, weights=population.weights
            )
        pref_tracked = n_nodes <= EXACT_PAIR_LIMIT
        pair_counts = np.zeros(N_BINS, dtype=np.int64)
        link_counts = np.zeros(N_BINS, dtype=np.int64)
        if pref_tracked:
            members = np.flatnonzero(mask)
            pair_counts = exact_pair_counts(
                dataset.lats[members], dataset.lons[members], bin_miles, N_BINS
            )
            if dataset.n_links:
                keep = mask[dataset.links[:, 0]] & mask[dataset.links[:, 1]]
                if keep.any():
                    a = dataset.links[keep, 0]
                    b = dataset.links[keep, 1]
                    lengths = haversine_miles(
                        dataset.lats[a], dataset.lons[a],
                        dataset.lats[b], dataset.lons[b],
                    )
                    link_counts = np.histogram(lengths, bins=edges)[0].astype(
                        np.int64
                    )
        return RegionState(
            region=region,
            bin_miles=bin_miles,
            edges=edges,
            mask=mask,
            n_nodes=n_nodes,
            pair_counts=pair_counts,
            link_counts=link_counts,
            grid=grid,
            occupancy=occupancy,
            population=pop_cells,
            pref_tracked=pref_tracked,
        )

    # -- incremental update ---------------------------------------------------

    def apply(self, batch: DeltaBatch, index: SnapshotIndex) -> None:
        """Advance the maintained state past one applied delta batch.

        ``index`` must be the snapshot index *after* the batch was
        applied (the ingester hands exactly that to its observer).

        Raises:
            AnalyticsError: when ``index`` is not one generation ahead
                of the engine's state — the caller should re-seed.
        """
        if index.gen != self.gen + 1:
            raise AnalyticsError(
                f"engine at gen {self.gen} cannot apply a batch producing "
                f"gen {index.gen}; re-seed from the current dataset"
            )
        old = self._dataset
        new = index.dataset
        n_old = old.n_nodes
        added = np.arange(n_old, new.n_nodes, dtype=np.intp)
        moved = index.rows_of(batch.move_addresses)
        remapped = index.rows_of(batch.remap_addresses)
        if (moved.size and moved.min() < 0) or (
            remapped.size and remapped.min() < 0
        ):
            raise AnalyticsError("delta references rows the index lacks")
        moved_old = moved[moved < n_old]
        changed = np.unique(np.concatenate([added, moved])).astype(np.intp)
        new_link_rows = np.arange(old.n_links, new.n_links, dtype=np.intp)

        for state in self.regions.values():
            self._apply_region(
                state, old, new, added, moved, moved_old, changed,
                new_link_rows,
            )

        # Table VI tallies: new links classify with the patched ASNs;
        # old links incident to a remapped row reclassify.
        if remapped.size and old.n_links:
            links = old.links
            incident = np.flatnonzero(
                np.isin(links[:, 0], remapped)
                | np.isin(links[:, 1], remapped)
            )
            if incident.size:
                a = links[incident, 0]
                b = links[incident, 1]
                intra, inter = _classified_links(old.asns, a, b)
                self.intradomain_links -= intra
                self.interdomain_links -= inter
                intra, inter = _classified_links(new.asns, a, b)
                self.intradomain_links += intra
                self.interdomain_links += inter
        if new_link_rows.size:
            intra, inter = _classified_links(
                new.asns,
                new.links[new_link_rows, 0],
                new.links[new_link_rows, 1],
            )
            self.intradomain_links += intra
            self.interdomain_links += inter

        self._dataset = new
        self._index = index
        self.gen = int(index.gen)
        self.stats.applied_batches += 1

    def _apply_region(
        self,
        state: RegionState,
        old: MappedDataset,
        new: MappedDataset,
        added: np.ndarray,
        moved: np.ndarray,
        moved_old: np.ndarray,
        changed: np.ndarray,
        new_link_rows: np.ndarray,
    ) -> None:
        region = state.region
        old_mask = state.mask
        new_mask = np.concatenate(
            [old_mask, region.contains_mask(new.lats[added], new.lons[added])]
        ) if added.size else old_mask.copy()
        if moved.size:
            new_mask[moved] = region.contains_mask(
                new.lats[moved], new.lons[moved]
            )

        if state.pref_tracked:
            # Pair histogram: remove changed rows' pairs against the old
            # membership, re-add them against the new one.  Unchanged
            # pairs contribute identically before and after, so integer
            # subtraction/addition reproduces the from-scratch count.
            touched_old = np.sort(moved_old[old_mask[moved_old]])
            if touched_old.size:
                members = np.flatnonzero(old_mask)
                state.pair_counts -= _pairs_involving(
                    old.lats, old.lons, members, touched_old, state.bin_miles
                )
            touched_new = changed[new_mask[changed]]
            if touched_new.size:
                members = np.flatnonzero(new_mask)
                state.pair_counts += _pairs_involving(
                    new.lats, new.lons, members, touched_new, state.bin_miles
                )
            # Link histogram: old links incident to a moved row may have
            # changed length or membership; appended links just add.
            if moved_old.size and old.n_links:
                links = old.links
                incident = np.flatnonzero(
                    np.isin(links[:, 0], moved_old)
                    | np.isin(links[:, 1], moved_old)
                )
                if incident.size:
                    a = links[incident, 0]
                    b = links[incident, 1]
                    was = old_mask[a] & old_mask[b]
                    if was.any():
                        lengths = haversine_miles(
                            old.lats[a[was]], old.lons[a[was]],
                            old.lats[b[was]], old.lons[b[was]],
                        )
                        state.link_counts -= np.histogram(
                            lengths, bins=state.edges
                        )[0]
                    now = new_mask[a] & new_mask[b]
                    if now.any():
                        lengths = haversine_miles(
                            new.lats[a[now]], new.lons[a[now]],
                            new.lats[b[now]], new.lons[b[now]],
                        )
                        state.link_counts += np.histogram(
                            lengths, bins=state.edges
                        )[0]
            if new_link_rows.size:
                a = new.links[new_link_rows, 0]
                b = new.links[new_link_rows, 1]
                both = new_mask[a] & new_mask[b]
                if both.any():
                    lengths = haversine_miles(
                        new.lats[a[both]], new.lons[a[both]],
                        new.lats[b[both]], new.lons[b[both]],
                    )
                    state.link_counts += np.histogram(
                        lengths, bins=state.edges
                    )[0]

        # Grid occupancy: decrement moved rows' old cells, increment
        # every changed row's new cell (integers, so order-free).
        if moved_old.size:
            idx = state.grid.cell_index(
                old.lats[moved_old], old.lons[moved_old]
            )
            idx = idx[idx >= 0]
            if idx.size:
                np.subtract.at(state.occupancy, idx, 1)
        if changed.size:
            idx = state.grid.cell_index(new.lats[changed], new.lons[changed])
            idx = idx[idx >= 0]
            if idx.size:
                np.add.at(state.occupancy, idx, 1)

        state.mask = new_mask
        state.n_nodes = int(np.count_nonzero(new_mask))

    # -- metric snapshot ------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """The current generation's metric values, flat name -> float.

        Region metrics suffix the region name (``waxman_l.US``); fits
        that cannot be made (degenerate windows, empty regions) are
        simply absent rather than NaN, so the store never has to
        represent non-finite values.
        """
        ds = self._dataset
        out: dict[str, float] = {
            "nodes": float(ds.n_nodes),
            "links": float(ds.n_links),
            "intradomain_links": float(self.intradomain_links),
            "interdomain_links": float(self.interdomain_links),
        }
        classified = self.intradomain_links + self.interdomain_links
        if classified:
            out["intradomain_share"] = self.intradomain_links / classified

        summaries = self._as_summaries()
        out["ases"] = float(len(summaries))
        if summaries:
            hulls = np.array(
                [s.hull_area_sq_miles for s in summaries.values()]
            )
            out["hull_zero_fraction"] = float(np.mean(hulls == 0.0))
            out["mean_locations_per_as"] = float(
                np.mean([s.n_locations for s in summaries.values()])
            )
            out["mean_as_degree"] = float(
                np.mean([s.degree for s in summaries.values()])
            )

        for name, state in self.regions.items():
            out[f"region_nodes.{name}"] = float(state.n_nodes)
            out[f"occupied_cells.{name}"] = float(
                np.count_nonzero(state.occupancy)
            )
            if state.population is not None:
                try:
                    fit = loglog_fit(
                        state.population, state.occupancy.astype(float)
                    )
                    out[f"alpha.{name}"] = float(fit.slope)
                except AnalysisError:
                    pass
            if state.pref_tracked and state.n_nodes >= MIN_REGION_NODES:
                pref = preference_from_counts(
                    name,
                    state.bin_miles,
                    state.link_counts,
                    state.pair_counts,
                    state.n_nodes,
                )
                try:
                    out[f"waxman_l.{name}"] = float(waxman_fit(pref).l_miles)
                except AnalysisError:
                    pass
        return out

    def _as_summaries(self) -> dict:
        """Per-AS summaries: the index's dirty-set-maintained table when
        one is attached, a from-scratch build otherwise."""
        if self._index is not None:
            return self._index.as_summaries()
        from repro.serve.index import _as_tables

        return _as_tables(self._dataset)[1]

    @property
    def dataset(self) -> MappedDataset:
        """The dataset the maintained state describes."""
        return self._dataset
