"""Anomaly filtering over raw inventories.

The paper, following Broido and claffy's processing of Skitter data,
discards self-loops and other anomalies, and removes every interface
that appears on a destination list (destinations are mostly end hosts,
and the study concerns routers).  These filters transform a
:class:`~repro.measure.inventory.RawInventory` into a cleaned one,
reporting what was dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.measure.inventory import RawInventory
from repro.net.ip import is_private


@dataclass(frozen=True, slots=True)
class FilterReport:
    """What a cleaning pass removed.

    Attributes:
        dropped_destination_nodes: nodes removed for being on destination
            lists.
        dropped_private_nodes: nodes removed for having private addresses.
        dropped_links: links removed because an endpoint was dropped.
    """

    dropped_destination_nodes: int
    dropped_private_nodes: int
    dropped_links: int


def drop_nodes(inventory: RawInventory, to_drop: set[int]) -> RawInventory:
    """A new inventory without ``to_drop`` nodes and their links."""
    cleaned = RawInventory(kind=inventory.kind)
    cleaned.destinations = set(inventory.destinations)
    for node in inventory.nodes:
        if node not in to_drop:
            cleaned.add_node(node)
            cleaned.aliases[node] = list(inventory.aliases[node])
    for a, b in inventory.links:
        if a not in to_drop and b not in to_drop:
            cleaned.add_link(a, b)
    return cleaned


def discard_destinations(
    inventory: RawInventory,
) -> tuple[RawInventory, int]:
    """Remove nodes probed as destinations (Skitter's end-host discard)."""
    to_drop = inventory.nodes & inventory.destinations
    return drop_nodes(inventory, to_drop), len(to_drop)


def discard_private(inventory: RawInventory) -> tuple[RawInventory, int]:
    """Remove nodes with RFC 1918 addresses (misconfigured routers)."""
    to_drop = {node for node in inventory.nodes if is_private(node)}
    return drop_nodes(inventory, to_drop), len(to_drop)


def clean_inventory(inventory: RawInventory) -> tuple[RawInventory, FilterReport]:
    """Full cleaning pass: destination discard, then private discard.

    Destination discard only applies to interface-granularity inventories
    (Mercator has no destination-list semantics).
    """
    links_before = inventory.n_links
    dropped_dest = 0
    if inventory.kind == "skitter":
        inventory, dropped_dest = discard_destinations(inventory)
    inventory, dropped_private = discard_private(inventory)
    report = FilterReport(
        dropped_destination_nodes=dropped_dest,
        dropped_private_nodes=dropped_private,
        dropped_links=links_before - inventory.n_links,
    )
    inventory.validate()
    return inventory, report
