"""Raw measurement inventories.

Both measurement simulators produce a :class:`RawInventory`: the set of
observed node addresses, the observed adjacencies between them, and the
bookkeeping needed by later pipeline stages (alias membership for
Mercator's router-level view, destination lists for Skitter's discard
step).  Node keys are interface addresses for Skitter and canonical
router addresses for Mercator — the paper's interface/router distinction
made explicit in the type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import MeasurementError


def normalize_pair(a: int, b: int) -> tuple[int, int]:
    """Order a node pair canonically (small address first).

    Raises:
        MeasurementError: on a self-pair.
    """
    if a == b:
        raise MeasurementError(f"self-link on address {a}")
    return (a, b) if a < b else (b, a)


@dataclass
class RawInventory:
    """The output of one measurement campaign.

    Attributes:
        kind: ``"skitter"`` (interface granularity) or ``"mercator"``
            (router granularity after alias resolution).
        nodes: observed node addresses.
        links: normalised address pairs between adjacent observed nodes.
        aliases: node address -> all interface addresses merged into it
            (singleton lists at interface granularity).
        destinations: every address on the campaign's destination lists.
    """

    kind: str
    nodes: set[int] = field(default_factory=set)
    links: set[tuple[int, int]] = field(default_factory=set)
    aliases: dict[int, list[int]] = field(default_factory=dict)
    destinations: set[int] = field(default_factory=set)

    def add_node(self, address: int) -> None:
        """Record an observed node (idempotent)."""
        if address not in self.nodes:
            self.nodes.add(address)
            self.aliases.setdefault(address, [address])

    def add_link(self, a: int, b: int) -> None:
        """Record an observed adjacency between two already-seen nodes.

        Raises:
            MeasurementError: on self-links or unknown endpoints.
        """
        pair = normalize_pair(a, b)
        for addr in pair:
            if addr not in self.nodes:
                raise MeasurementError(
                    f"link endpoint {addr} was never recorded as a node"
                )
        self.links.add(pair)

    def add_nodes(self, addresses: Iterable[int]) -> None:
        """Record many observed nodes at once (idempotent)."""
        fresh = set(addresses) - self.nodes
        self.nodes |= fresh
        for address in fresh:
            self.aliases.setdefault(address, [address])

    def add_link_pairs(self, a: np.ndarray, b: np.ndarray) -> None:
        """Record many observed adjacencies between already-seen nodes.

        Raises:
            MeasurementError: on self-links or unknown endpoints.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.size == 0:
            return
        selfish = a == b
        if np.any(selfish):
            raise MeasurementError(
                f"self-link on address {int(a[selfish][0])}"
            )
        low = np.minimum(a, b)
        high = np.maximum(a, b)
        missing = (set(low.tolist()) | set(high.tolist())) - self.nodes
        if missing:
            raise MeasurementError(
                f"link endpoint {min(missing)} was never recorded as a node"
            )
        self.links.update(zip(low.tolist(), high.tolist()))

    @property
    def n_nodes(self) -> int:
        """Observed node count."""
        return len(self.nodes)

    @property
    def n_links(self) -> int:
        """Observed link count."""
        return len(self.links)

    def interfaces_of(self, node: int) -> list[int]:
        """All interface addresses merged into a node.

        Raises:
            MeasurementError: for an unknown node.
        """
        if node not in self.aliases:
            raise MeasurementError(f"unknown node {node}")
        return list(self.aliases[node])

    def validate(self) -> None:
        """Consistency check over nodes/links/aliases.

        Raises:
            MeasurementError: on the first violation found.
        """
        for a, b in self.links:
            if a >= b:
                raise MeasurementError(f"link pair ({a}, {b}) not normalised")
            if a not in self.nodes or b not in self.nodes:
                raise MeasurementError(f"link ({a}, {b}) has unknown endpoint")
        for node in self.nodes:
            members = self.aliases.get(node)
            if not members:
                raise MeasurementError(f"node {node} has no alias entry")
            if node not in members:
                raise MeasurementError(
                    f"node {node} missing from its own alias set"
                )
