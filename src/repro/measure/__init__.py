"""Measurement simulators: Skitter and Mercator campaigns over ground truth."""

from repro.measure.alias import merge_members, resolve_aliases
from repro.measure.artifacts import (
    FilterReport,
    clean_inventory,
    discard_destinations,
    discard_private,
    drop_nodes,
)
from repro.measure.inventory import RawInventory, normalize_pair
from repro.measure.mercator import run_mercator
from repro.measure.skitter import (
    SkitterCampaign,
    choose_monitors,
    plan_campaign,
    run_skitter,
)

__all__ = [
    "merge_members",
    "resolve_aliases",
    "FilterReport",
    "clean_inventory",
    "discard_destinations",
    "discard_private",
    "drop_nodes",
    "RawInventory",
    "normalize_pair",
    "run_mercator",
    "SkitterCampaign",
    "choose_monitors",
    "plan_campaign",
    "run_skitter",
]
