"""Mercator-style measurement: single source, source routing, aliases.

The Scan project's Mercator mapped the Internet from *one* host, using
hop-limited probes to a heuristically grown target list plus loose
source routing through previously discovered routers to expose lateral
links its own shortest-path tree would miss.  Interfaces are then
collapsed to routers by UDP alias probing.  This simulator reproduces
all three mechanisms; its output inventory is at *router* granularity
(canonical addresses), matching the paper's Mercator dataset.
"""

from __future__ import annotations

import numpy as np

from repro.config import MercatorConfig
from repro.errors import MeasurementError
from repro.measure.alias import merge_members, resolve_aliases
from repro.measure.inventory import RawInventory
from repro.net.topology import Topology
from repro.routing.forwarding import source_routed_path
from repro.routing.shortest_path import (
    PredecessorTree,
    ancestor_closure,
    ancestors_at_depth,
    largest_component,
    shortest_path_tree,
    shortest_path_trees,
    tree_depths,
)

#: Number of distinct via-routers used for loose-source-routed probes.
_N_VIA_ROUTERS = 48


def run_mercator(
    topology: Topology,
    config: MercatorConfig,
    rng: np.random.Generator,
    source: int | None = None,
) -> RawInventory:
    """Execute a Mercator campaign; returns a router-level inventory.

    Raises:
        MeasurementError: if the topology is too small to probe.
    """
    component = largest_component(topology.routing_graph())
    if component.size < 3:
        raise MeasurementError("topology too small for a Mercator campaign")
    if source is None:
        source = int(component[int(rng.integers(component.size))])
    graph = topology.routing_graph()
    source_tree = shortest_path_tree(graph, source)
    responds = rng.random(topology.n_routers) < config.response_rate
    responds[source] = True

    # Stage 1: direct probes to the heuristic target list.
    interface_links: set[tuple[int, int]] = set()
    observed_interfaces: set[int] = set()
    n_targets = min(config.n_targets, component.size)
    targets = rng.choice(component, size=n_targets, replace=False)
    _record_tree_probes(
        topology,
        source_tree,
        np.asarray(targets, dtype=np.intp),
        responds,
        config.max_hops,
        observed_interfaces,
        interface_links,
    )

    # Stage 2: loose source routing through a pool of discovered routers.
    if config.n_source_routed > 0:
        discovered = _routers_of_interfaces(topology, observed_interfaces)
        if discovered.size:
            n_via = min(_N_VIA_ROUTERS, discovered.size)
            via_ids = [
                int(discovered[i])
                for i in rng.choice(discovered.size, size=n_via, replace=False)
            ]
            via_trees = {
                t.source: t for t in shortest_path_trees(graph, via_ids)
            }
            for _ in range(config.n_source_routed):
                via = via_ids[int(rng.integers(len(via_ids)))]
                target = int(component[int(rng.integers(component.size))])
                if target == via or target == source:
                    continue
                via_tree = via_trees[via]
                if not via_tree.reachable(target):
                    continue
                path = source_routed_path(via_tree, source_tree, via, target)
                path = path[: config.max_hops + 1]
                _record_interface_path(
                    topology, path, responds, observed_interfaces, interface_links
                )

    # Stage 3: alias resolution to canonical router addresses.
    mapping = resolve_aliases(
        topology, observed_interfaces, rng, config.alias_resolution_rate
    )
    inventory = RawInventory(kind="mercator")
    for canonical, members in merge_members(mapping).items():
        inventory.add_node(canonical)
        inventory.aliases[canonical] = members
    for a, b in interface_links:
        ca, cb = mapping[a], mapping[b]
        if ca == cb:
            continue  # both interfaces merged onto one router: not a link
        inventory.add_link(ca, cb)
    inventory.validate()
    return inventory


def _routers_of_interfaces(
    topology: Topology, addresses: set[int]
) -> np.ndarray:
    """Distinct owning router ids for a set of interface addresses, sorted."""
    if not addresses:
        return np.empty(0, dtype=np.intp)
    addrs = np.fromiter(addresses, dtype=np.int64, count=len(addresses))
    positions = topology.interface_positions(addrs)
    return np.unique(topology.interface_routers()[positions]).astype(np.intp)


def _record_tree_probes(
    topology: Topology,
    tree: PredecessorTree,
    targets: np.ndarray,
    responds: np.ndarray,
    max_hops: int,
    observed_interfaces: set[int],
    interface_links: set[tuple[int, int]],
) -> None:
    """Union of the direct-probe observations along one source tree.

    Equivalent to running :func:`_record_interface_path` over every
    target's (hop-limited) tree path: the observed routers are the
    ancestor closure of the probe endpoints — the target itself when it
    is within ``max_hops``, its depth-``max_hops`` ancestor otherwise —
    and every responding one reports its inbound interface.  Links join
    consecutively responding hops only.
    """
    depths = tree_depths(tree)
    live = targets[depths[targets] > 0]  # drop the source + unreachable
    if live.size == 0:
        return
    pred = tree.predecessors
    reached_mask = depths[live] <= max_hops
    starts = [live[reached_mask]]
    truncated = live[~reached_mask]
    if truncated.size:
        starts.append(ancestors_at_depth(tree, depths, truncated, max_hops))
    observed = np.flatnonzero(ancestor_closure(tree, np.concatenate(starts)))
    if observed.size == 0:
        return
    inbound = np.full(topology.n_routers, -1, dtype=np.int64)
    inbound[observed] = topology.link_interfaces_toward(
        pred[observed].astype(np.intp), observed
    )
    responding = observed[responds[observed]]
    observed_interfaces.update(inbound[responding].tolist())
    deep = responding[depths[responding] >= 2]
    parents = pred[deep].astype(np.intp)
    keep = responds[parents]
    pair_a = inbound[parents[keep]]
    pair_b = inbound[deep[keep]]
    low = np.minimum(pair_a, pair_b)
    high = np.maximum(pair_a, pair_b)
    interface_links.update(zip(low.tolist(), high.tolist()))


def _record_interface_path(
    topology: Topology,
    path: list[int],
    responds: np.ndarray,
    observed_interfaces: set[int],
    interface_links: set[tuple[int, int]],
) -> None:
    """Record inbound interfaces and adjacent-pair links along a path."""
    previous_address: int | None = None
    previous_router: int | None = None
    for i in range(1, len(path)):
        router = path[i]
        if not responds[router]:
            previous_address = None
            previous_router = None
            continue
        address = topology.link_interface_toward(path[i - 1], router)
        observed_interfaces.add(address)
        if previous_address is not None and previous_router == path[i - 1]:
            pair = (
                (previous_address, address)
                if previous_address < address
                else (address, previous_address)
            )
            interface_links.add(pair)
        previous_address = address
        previous_router = router
