"""Skitter-style measurement: a union of traceroute campaigns.

CAIDA's Skitter ran on ~20 monitors worldwide, each sending hop-limited
probes to a large destination list; the dataset is the union of the
observed forward paths, at *interface* granularity.  This simulator
reproduces that process over the ground-truth topology:

* monitors are routers in distinct ASes spread across the world;
* each monitor explores its own shortest-path tree (per-source tree
  bias, as in the real data);
* every intermediate hop reports its inbound interface; the destination
  hop reports the probed address itself;
* non-responding routers (a per-router property) leave gaps, and no
  adjacency is recorded across a gap — the false-link anomalies real
  processing discards never enter the inventory;
* the probed destination addresses are recorded so the pipeline can
  discard them, as the paper does (destinations are mostly end hosts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SkitterConfig
from repro.errors import MeasurementError
from repro.measure.inventory import RawInventory
from repro.net.topology import Topology
from repro.routing.shortest_path import (
    ancestor_closure,
    ancestors_at_depth,
    largest_component,
    shortest_path_trees,
    tree_depths,
)


@dataclass(frozen=True)
class SkitterCampaign:
    """A configured Skitter run: monitors plus per-monitor destinations.

    Attributes:
        monitors: router ids acting as probing sources.
        destination_lists: per-monitor router-id destination arrays.
    """

    monitors: list[int]
    destination_lists: list[np.ndarray]


def choose_monitors(
    topology: Topology, n_monitors: int, rng: np.random.Generator
) -> list[int]:
    """Pick monitor routers: distinct ASes, inside the giant component.

    Raises:
        MeasurementError: if the topology cannot host that many monitors.
    """
    candidates = largest_component(topology.routing_graph()).tolist()
    if len(candidates) < n_monitors:
        raise MeasurementError(
            f"cannot place {n_monitors} monitors in a component of "
            f"{len(candidates)} routers"
        )
    asns = topology.router_asns()
    order = rng.permutation(len(candidates))
    monitors: list[int] = []
    seen_asns: set[int] = set()
    for idx in order:
        rid = candidates[int(idx)]
        asn = int(asns[rid])
        if asn in seen_asns:
            continue
        seen_asns.add(asn)
        monitors.append(rid)
        if len(monitors) == n_monitors:
            return monitors
    # Fewer ASes than monitors: relax the distinct-AS constraint.
    for idx in order:
        rid = candidates[int(idx)]
        if rid not in monitors:
            monitors.append(rid)
            if len(monitors) == n_monitors:
                return monitors
    raise MeasurementError("could not assemble the requested monitor set")


def plan_campaign(
    topology: Topology, config: SkitterConfig, rng: np.random.Generator
) -> SkitterCampaign:
    """Choose monitors and sample per-monitor destination lists.

    Destinations are sampled uniformly over all routers (Skitter's lists
    aim to cover the whole address space), independently per monitor.
    """
    monitors = choose_monitors(topology, config.n_monitors, rng)
    n = topology.n_routers
    count = min(config.destinations_per_monitor, n)
    lists = [
        rng.choice(n, size=count, replace=False) for _ in monitors
    ]
    return SkitterCampaign(monitors=monitors, destination_lists=lists)


def run_skitter(
    topology: Topology,
    config: SkitterConfig,
    rng: np.random.Generator,
    campaign: SkitterCampaign | None = None,
) -> RawInventory:
    """Execute the campaign and return the interface-level inventory."""
    if campaign is None:
        campaign = plan_campaign(topology, config, rng)
    responds = rng.random(topology.n_routers) < config.response_rate
    for monitor in campaign.monitors:
        responds[monitor] = True

    inventory = RawInventory(kind="skitter")
    graph = topology.routing_graph()
    trees = shortest_path_trees(graph, campaign.monitors)
    loopbacks = topology.router_loopbacks()
    for tree, destinations in zip(trees, campaign.destination_lists):
        dests = np.asarray(destinations, dtype=np.intp)
        inventory.destinations.update(loopbacks[dests].tolist())
        _record_tree_probes(
            topology, inventory, tree, dests, responds, config.max_hops, loopbacks
        )
    inventory.validate()
    return inventory


def _record_tree_probes(
    topology: Topology,
    inventory: RawInventory,
    tree,
    dests: np.ndarray,
    responds: np.ndarray,
    max_hops: int,
    loopbacks: np.ndarray,
) -> None:
    """Record the union of one monitor's probe observations.

    Every probe from a monitor follows the monitor's tree, so the union
    of observed hops is the ancestor closure of the probe endpoints: the
    destination's predecessor for reached probes, the depth-``max_hops``
    ancestor for truncated ones.  The monitor itself is never observed;
    each responding interior router contributes its inbound interface; a
    reached destination answers with the probed (loopback) address
    instead.  Links are recorded only between consecutively responding
    hops — no adjacency is inferred across a silent router.
    """
    depths = tree_depths(tree)
    live = dests[depths[dests] > 0]  # drop the monitor itself + unreachable
    if live.size == 0:
        return
    pred = tree.predecessors
    reached = np.unique(live[depths[live] <= max_hops])
    truncated = live[depths[live] > max_hops]
    starts = [pred[reached].astype(np.intp)]
    if truncated.size:
        starts.append(ancestors_at_depth(tree, depths, truncated, max_hops))
    interior = np.flatnonzero(ancestor_closure(tree, np.concatenate(starts)))
    inbound = np.full(topology.n_routers, -1, dtype=np.int64)
    if interior.size:
        inbound[interior] = topology.link_interfaces_toward(
            pred[interior].astype(np.intp), interior
        )
    observed = interior[responds[interior]]
    inventory.add_nodes(inbound[observed].tolist())
    final = reached[responds[reached]]
    inventory.add_nodes(loopbacks[final].tolist())
    # Interior-to-interior adjacencies: both ends responding, and the
    # parent not the monitor (a probe never observes its own source).
    deep = observed[depths[observed] >= 2]
    parents = pred[deep].astype(np.intp)
    keep = responds[parents]
    inventory.add_link_pairs(inbound[parents[keep]], inbound[deep[keep]])
    # Last-hop adjacencies onto reached destinations.
    deep_final = final[depths[final] >= 2]
    parents = pred[deep_final].astype(np.intp)
    keep = responds[parents]
    inventory.add_link_pairs(inbound[parents[keep]], loopbacks[deep_final[keep]])
