"""Skitter-style measurement: a union of traceroute campaigns.

CAIDA's Skitter ran on ~20 monitors worldwide, each sending hop-limited
probes to a large destination list; the dataset is the union of the
observed forward paths, at *interface* granularity.  This simulator
reproduces that process over the ground-truth topology:

* monitors are routers in distinct ASes spread across the world;
* each monitor explores its own shortest-path tree (per-source tree
  bias, as in the real data);
* every intermediate hop reports its inbound interface; the destination
  hop reports the probed address itself;
* non-responding routers (a per-router property) leave gaps, and no
  adjacency is recorded across a gap — the false-link anomalies real
  processing discards never enter the inventory;
* the probed destination addresses are recorded so the pipeline can
  discard them, as the paper does (destinations are mostly end hosts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SkitterConfig
from repro.errors import MeasurementError
from repro.measure.inventory import RawInventory
from repro.net.topology import Topology
from repro.routing.shortest_path import largest_component, shortest_path_trees


@dataclass(frozen=True)
class SkitterCampaign:
    """A configured Skitter run: monitors plus per-monitor destinations.

    Attributes:
        monitors: router ids acting as probing sources.
        destination_lists: per-monitor router-id destination arrays.
    """

    monitors: list[int]
    destination_lists: list[np.ndarray]


def choose_monitors(
    topology: Topology, n_monitors: int, rng: np.random.Generator
) -> list[int]:
    """Pick monitor routers: distinct ASes, inside the giant component.

    Raises:
        MeasurementError: if the topology cannot host that many monitors.
    """
    component = set(largest_component(topology.routing_graph()).tolist())
    candidates = [r.router_id for r in topology.routers if r.router_id in component]
    if len(candidates) < n_monitors:
        raise MeasurementError(
            f"cannot place {n_monitors} monitors in a component of "
            f"{len(candidates)} routers"
        )
    order = rng.permutation(len(candidates))
    monitors: list[int] = []
    seen_asns: set[int] = set()
    for idx in order:
        router = topology.routers[candidates[int(idx)]]
        if router.asn in seen_asns:
            continue
        seen_asns.add(router.asn)
        monitors.append(router.router_id)
        if len(monitors) == n_monitors:
            return monitors
    # Fewer ASes than monitors: relax the distinct-AS constraint.
    for idx in order:
        rid = candidates[int(idx)]
        if rid not in monitors:
            monitors.append(rid)
            if len(monitors) == n_monitors:
                return monitors
    raise MeasurementError("could not assemble the requested monitor set")


def plan_campaign(
    topology: Topology, config: SkitterConfig, rng: np.random.Generator
) -> SkitterCampaign:
    """Choose monitors and sample per-monitor destination lists.

    Destinations are sampled uniformly over all routers (Skitter's lists
    aim to cover the whole address space), independently per monitor.
    """
    monitors = choose_monitors(topology, config.n_monitors, rng)
    n = topology.n_routers
    count = min(config.destinations_per_monitor, n)
    lists = [
        rng.choice(n, size=count, replace=False) for _ in monitors
    ]
    return SkitterCampaign(monitors=monitors, destination_lists=lists)


def run_skitter(
    topology: Topology,
    config: SkitterConfig,
    rng: np.random.Generator,
    campaign: SkitterCampaign | None = None,
) -> RawInventory:
    """Execute the campaign and return the interface-level inventory."""
    if campaign is None:
        campaign = plan_campaign(topology, config, rng)
    responds = rng.random(topology.n_routers) < config.response_rate
    for monitor in campaign.monitors:
        responds[monitor] = True

    inventory = RawInventory(kind="skitter")
    graph = topology.routing_graph()
    trees = shortest_path_trees(graph, campaign.monitors)
    for tree, destinations in zip(trees, campaign.destination_lists):
        for dest in destinations:
            dest = int(dest)
            inventory.destinations.add(topology.routers[dest].loopback)
            if dest == tree.source or not tree.reachable(dest):
                continue
            path = tree.path_to(dest)[: config.max_hops + 1]
            _record_path(topology, inventory, path, responds,
                         reached_destination=(path[-1] == dest))
    inventory.validate()
    return inventory


def _record_path(
    topology: Topology,
    inventory: RawInventory,
    path: list[int],
    responds: np.ndarray,
    reached_destination: bool,
) -> None:
    """Record one probe's observations into the inventory.

    ``path[0]`` is the monitor (never observed).  Each responding later
    router contributes its inbound interface; the final router, when it
    is the probed destination, answers with the probed (loopback)
    address instead.  Links are recorded only between consecutively
    responding hops.
    """
    previous_observed: int | None = None  # address of the previous hop
    previous_router: int | None = None
    for i in range(1, len(path)):
        router = path[i]
        if not responds[router]:
            previous_observed = None
            previous_router = None
            continue
        is_final_destination = reached_destination and i == len(path) - 1
        if is_final_destination:
            address = topology.routers[router].loopback
        else:
            address = topology.link_interface_toward(path[i - 1], router)
        inventory.add_node(address)
        if previous_observed is not None and previous_router == path[i - 1]:
            inventory.add_link(previous_observed, address)
        previous_observed = address
        previous_router = router
