"""Alias resolution: collapsing interfaces onto canonical router addresses.

Mercator sends a UDP probe to an unknown port on every discovered
interface; a router that answers does so with ICMP Port Unreachable
messages carrying a single source address, revealing which interfaces
share a router.  The technique fails for routers that do not respond
correctly (firewalling, intrusion-detection suppression) — those
routers' interfaces remain distinct, inflating the router count, which
is exactly the known inaccuracy of interface-level maps the paper
discusses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError
from repro.net.topology import Topology


def resolve_aliases(
    topology: Topology,
    interface_addresses: set[int],
    rng: np.random.Generator,
    success_rate: float,
) -> dict[int, int]:
    """Map each observed interface address to its canonical node address.

    For routers answering the alias probe (an independent draw per
    router), every one of their observed interfaces maps to the router's
    loopback; for silent routers, each interface maps to itself.

    Returns:
        interface address -> canonical node address.

    Raises:
        MeasurementError: if an address is unknown to the topology or the
            success rate is out of range.
    """
    if not (0.0 < success_rate <= 1.0):
        raise MeasurementError("success_rate must be in (0, 1]")
    answers = rng.random(topology.n_routers) < success_rate
    mapping: dict[int, int] = {}
    for address in interface_addresses:
        iface = topology.interfaces.get(address)
        if iface is None:
            raise MeasurementError(f"unknown interface address {address}")
        router = topology.routers[iface.router_id]
        if answers[iface.router_id]:
            mapping[address] = router.loopback
        else:
            mapping[address] = address
    return mapping


def merge_members(mapping: dict[int, int]) -> dict[int, list[int]]:
    """Invert an alias mapping: canonical address -> member interfaces."""
    members: dict[int, list[int]] = {}
    for interface, canonical in mapping.items():
        members.setdefault(canonical, []).append(interface)
    for canonical, interfaces in members.items():
        if canonical not in interfaces:
            interfaces.append(canonical)
        interfaces.sort()
    return members
