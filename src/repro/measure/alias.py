"""Alias resolution: collapsing interfaces onto canonical router addresses.

Mercator sends a UDP probe to an unknown port on every discovered
interface; a router that answers does so with ICMP Port Unreachable
messages carrying a single source address, revealing which interfaces
share a router.  The technique fails for routers that do not respond
correctly (firewalling, intrusion-detection suppression) — those
routers' interfaces remain distinct, inflating the router count, which
is exactly the known inaccuracy of interface-level maps the paper
discusses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError
from repro.net.topology import Topology


def resolve_aliases(
    topology: Topology,
    interface_addresses: set[int],
    rng: np.random.Generator,
    success_rate: float,
) -> dict[int, int]:
    """Map each observed interface address to its canonical node address.

    For routers answering the alias probe (an independent draw per
    router), every one of their observed interfaces maps to the router's
    loopback; for silent routers, each interface maps to itself.

    Returns:
        interface address -> canonical node address.

    Raises:
        MeasurementError: if an address is unknown to the topology or the
            success rate is out of range.
    """
    if not (0.0 < success_rate <= 1.0):
        raise MeasurementError("success_rate must be in (0, 1]")
    answers = rng.random(topology.n_routers) < success_rate
    if not interface_addresses:
        return {}
    addresses = np.sort(
        np.fromiter(
            interface_addresses, dtype=np.int64, count=len(interface_addresses)
        )
    )
    positions = topology.interface_positions(addresses)
    unknown = positions < 0
    if np.any(unknown):
        raise MeasurementError(
            f"unknown interface address {int(addresses[unknown][0])}"
        )
    routers = topology.interface_routers()[positions]
    canonical = np.where(
        answers[routers], topology.router_loopbacks()[routers], addresses
    )
    return dict(zip(addresses.tolist(), canonical.tolist()))


def merge_members(mapping: dict[int, int]) -> dict[int, list[int]]:
    """Invert an alias mapping: canonical address -> member interfaces."""
    members: dict[int, list[int]] = {}
    for interface, canonical in mapping.items():
        members.setdefault(canonical, []).append(interface)
    for canonical, interfaces in members.items():
        if canonical not in interfaces:
            interfaces.append(canonical)
        interfaces.sort()
    return members
