"""Synthetic measurement streams: delta batches against a snapshot.

The paper's inventories are point-in-time unions of continuously
arriving traceroutes; this module simulates the arrival process so the
streaming-ingest path can be driven without a live measurement
infrastructure.  A :class:`DeltaStream` tracks the evolving snapshot
state (addresses, coordinates, origin ASes, adjacency) and emits
:class:`~repro.ingest.deltas.DeltaBatch` es that are always *valid*
against it: adds are fresh addresses placed near existing
infrastructure, links never duplicate an adjacency, moves and remaps
target known addresses.  Batches are a pure function of the seed RNG,
so a replayed stream is byte-for-byte reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.table import UNMAPPED_ASN
from repro.datasets.mapped import MappedDataset
from repro.errors import MeasurementError
from repro.ingest.deltas import DeltaBatch

#: Degrees of coordinate jitter when placing new or moved nodes near an
#: anchor (roughly metro scale — new interfaces appear where
#: infrastructure already is, the paper's central observation).
_JITTER_DEG = 2.0


class DeltaStream:
    """Generates valid delta batches against an evolving snapshot.

    Attributes:
        n_nodes: node count of the tracked state (grows with adds).
        n_links: adjacency count of the tracked state.
    """

    def __init__(
        self,
        dataset: MappedDataset,
        rng: np.random.Generator,
        *,
        unmapped_share: float = 0.05,
        new_as_share: float = 0.1,
    ) -> None:
        if dataset.n_nodes == 0:
            raise MeasurementError("cannot stream deltas for an empty snapshot")
        if not (0.0 <= unmapped_share <= 1.0):
            raise MeasurementError("unmapped_share must be in [0, 1]")
        if not (0.0 <= new_as_share <= 1.0):
            raise MeasurementError("new_as_share must be in [0, 1]")
        self._rng = rng
        self._unmapped_share = unmapped_share
        self._new_as_share = new_as_share
        self._addresses = dataset.addresses.copy()
        self._lats = dataset.lats.copy()
        self._lons = dataset.lons.copy()
        self._asns = dataset.asns.copy()
        self._next_address = int(dataset.addresses.max()) + 1
        mapped = dataset.asns[dataset.asns != UNMAPPED_ASN]
        self._known_asns = (
            np.unique(mapped) if mapped.size else np.array([1], dtype=np.int64)
        )
        self._next_asn = int(self._known_asns.max()) + 1
        self._link_keys: set[tuple[int, int]] = set()
        for i, j in dataset.links.tolist():
            a, b = int(dataset.addresses[i]), int(dataset.addresses[j])
            self._link_keys.add((min(a, b), max(a, b)))

    # -- state ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Nodes in the tracked state."""
        return int(self._addresses.shape[0])

    @property
    def n_links(self) -> int:
        """Adjacencies in the tracked state."""
        return len(self._link_keys)

    # -- generation ----------------------------------------------------------

    def _jittered(self, anchors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coordinates near anchor rows, clipped to the legal ranges."""
        n = anchors.shape[0]
        lats = self._lats[anchors] + self._rng.normal(0.0, _JITTER_DEG, n)
        lons = self._lons[anchors] + self._rng.normal(0.0, _JITTER_DEG, n)
        return np.clip(lats, -90.0, 90.0), np.clip(lons, -180.0, 180.0)

    def _pick_asns(self, n: int) -> np.ndarray:
        """Origin ASes for new nodes: existing, brand new, or unmapped."""
        asns = self._rng.choice(self._known_asns, size=n)
        roll = self._rng.random(n)
        for i in np.flatnonzero(roll < self._new_as_share).tolist():
            asns[i] = self._next_asn
            self._known_asns = np.append(self._known_asns, self._next_asn)
            self._next_asn += 1
        asns[roll >= 1.0 - self._unmapped_share] = UNMAPPED_ASN
        return asns.astype(np.int64)

    def next_batch(
        self,
        n_adds: int = 8,
        n_links: int = 12,
        n_moves: int = 4,
        n_remaps: int = 2,
    ) -> DeltaBatch:
        """One valid delta batch; the tracked state advances past it.

        Raises:
            MeasurementError: on negative counts.
        """
        if min(n_adds, n_links, n_moves, n_remaps) < 0:
            raise MeasurementError("delta counts must be >= 0")
        n_before = self.n_nodes

        add_addresses = np.arange(
            self._next_address, self._next_address + n_adds, dtype=np.int64
        )
        self._next_address += n_adds
        anchors = self._rng.integers(0, n_before, size=n_adds)
        add_lats, add_lons = self._jittered(anchors)
        add_asns = self._pick_asns(n_adds)
        self._addresses = np.concatenate([self._addresses, add_addresses])
        self._lats = np.concatenate([self._lats, add_lats])
        self._lons = np.concatenate([self._lons, add_lons])
        self._asns = np.concatenate([self._asns, add_asns])

        # Links: each new interface was observed on a path, so wire it
        # to an existing node first; remaining links join random pairs.
        # Rejection-sample around duplicates (bounded attempts).
        pairs: list[tuple[int, int]] = []
        for k in range(min(n_adds, n_links)):
            other = int(self._rng.integers(0, n_before))
            pairs.append((int(add_addresses[k]), int(self._addresses[other])))
        attempts = 0
        while len(pairs) < n_links and attempts < 20 * n_links:
            attempts += 1
            i, j = self._rng.integers(0, self.n_nodes, size=2)
            pairs.append((int(self._addresses[i]), int(self._addresses[j])))
        links: list[tuple[int, int]] = []
        for a, b in pairs:
            key = (min(a, b), max(a, b))
            if a == b or key in self._link_keys:
                continue
            self._link_keys.add(key)
            links.append((a, b))
        add_links = (
            np.array(links, dtype=np.int64)
            if links
            else np.empty((0, 2), dtype=np.int64)
        )

        move_rows = self._rng.choice(
            n_before, size=min(n_moves, n_before), replace=False
        )
        move_lats, move_lons = self._jittered(move_rows)
        self._lats[move_rows] = move_lats
        self._lons[move_rows] = move_lons

        remap_rows = self._rng.choice(
            n_before, size=min(n_remaps, n_before), replace=False
        )
        remap_asns = self._pick_asns(remap_rows.shape[0])
        self._asns[remap_rows] = remap_asns

        return DeltaBatch(
            add_addresses=add_addresses,
            add_lats=add_lats,
            add_lons=add_lons,
            add_asns=add_asns,
            add_links=add_links,
            move_addresses=self._addresses[move_rows],
            move_lats=move_lats,
            move_lons=move_lons,
            remap_addresses=self._addresses[remap_rows],
            remap_asns=remap_asns,
        )
