"""The Barabasi-Albert preferential-attachment generator.

BA (1999) grows a graph by attaching each new node to ``m`` existing
nodes with probability proportional to their degree, producing the
power-law degree distributions observed by Faloutsos et al.  Like
Erdos-Renyi it is geometry-blind: the paper groups it with models that
assume "no important underlying geometry", and experiment X2 shows its
distance preference is flat.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import (
    GeneratedGraph,
    dedupe_edges,
    resolve_rng,
    uniform_points_in_box,
)


def barabasi_albert_graph(
    n: int,
    m: int,
    rng: np.random.Generator | int,
    **box: float,
) -> GeneratedGraph:
    """Generate a BA graph of ``n`` nodes with ``m`` links per new node.

    Attachment uses the standard repeated-endpoint trick: targets are
    drawn from the list of all edge endpoints so far, which is exactly
    degree-proportional sampling.

    Raises:
        ConfigError: when m < 1 or n <= m.
    """
    if m < 1:
        raise ConfigError(f"m must be >= 1, got {m}")
    if n <= m:
        raise ConfigError(f"need n > m, got n={n}, m={m}")
    rng, seed = resolve_rng(rng)
    lats, lons = uniform_points_in_box(n, rng, **box)
    # Seed: a small clique of m + 1 nodes.
    edges: list[tuple[int, int]] = [
        (i, j) for i in range(m + 1) for j in range(i + 1, m + 1)
    ]
    endpoints: list[int] = [v for e in edges for v in e]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = endpoints[int(rng.integers(len(endpoints)))]
            targets.add(pick)
        for t in targets:
            edges.append((t, new))
            endpoints.extend((t, new))
    return GeneratedGraph(
        name="barabasi-albert",
        lats=lats,
        lons=lons,
        edges=dedupe_edges(edges),
        asns=np.full(n, -1, dtype=np.int64),
        seed=seed,
    )
