"""A GT-ITM / Tiers-style hierarchical (transit-stub) generator.

Structural models build an explicit hierarchy: transit domains span the
map, stub domains attach locally.  The paper cites these as the other
main pre-power-law family of generators; including one lets experiment
X2 compare a hierarchy-first model's distance preference against the
measured two-regime shape.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import (
    GeneratedGraph,
    dedupe_edges,
    resolve_rng,
    uniform_points_in_box,
)
from repro.geo.distance import haversine_miles


def transit_stub_graph(
    n_transit_domains: int,
    transit_size: int,
    stubs_per_transit: int,
    stub_size: int,
    rng: np.random.Generator | int,
    stub_spread_deg: float = 2.0,
    **box: float,
) -> GeneratedGraph:
    """Generate a two-level transit-stub topology.

    Transit domains are uniformly placed cliques-with-chords; each stub
    domain is a small connected cluster near its transit attachment
    point, linked to one transit router.

    Raises:
        ConfigError: for non-positive structural parameters.
    """
    if min(n_transit_domains, transit_size, stubs_per_transit, stub_size) < 1:
        raise ConfigError("all structural parameters must be >= 1")
    rng, seed = resolve_rng(rng)
    lats: list[float] = []
    lons: list[float] = []
    edges: list[tuple[int, int]] = []
    transit_gateways: list[int] = []

    for _ in range(n_transit_domains):
        center_lat, center_lon = uniform_points_in_box(1, rng, **box)
        base = len(lats)
        for k in range(transit_size):
            lats.append(float(np.clip(center_lat[0] + rng.normal(0, 1.0), -89, 89)))
            lons.append(float(np.clip(center_lon[0] + rng.normal(0, 1.0), -179, 179)))
            if k > 0:
                edges.append((base + k - 1, base + k))
        # A chord to keep the transit domain 2-connected when possible.
        if transit_size >= 3:
            edges.append((base, base + transit_size - 1))
        transit_gateways.append(base)

        for _ in range(stubs_per_transit):
            attach = base + int(rng.integers(transit_size))
            stub_base = len(lats)
            stub_lat = lats[attach] + rng.normal(0, stub_spread_deg)
            stub_lon = lons[attach] + rng.normal(0, stub_spread_deg)
            for k in range(stub_size):
                lats.append(float(np.clip(stub_lat + rng.normal(0, 0.2), -89, 89)))
                lons.append(float(np.clip(stub_lon + rng.normal(0, 0.2), -179, 179)))
                if k > 0:
                    edges.append((stub_base + k - 1, stub_base + k))
            edges.append((attach, stub_base))

    # Inter-transit backbone: nearest-neighbour chain over gateways.
    for i in range(1, len(transit_gateways)):
        gi = transit_gateways[i]
        best = min(
            transit_gateways[:i],
            key=lambda g: float(
                haversine_miles(lats[gi], lons[gi], lats[g], lons[g])
            ),
        )
        edges.append((gi, best))

    n = len(lats)
    return GeneratedGraph(
        name="transit-stub",
        lats=np.asarray(lats),
        lons=np.asarray(lons),
        edges=dedupe_edges(edges),
        asns=np.full(n, -1, dtype=np.int64),
        seed=seed,
    )
