"""Topology generators: classical baselines and the geography-aware GeoGen."""

from repro.generators.barabasi_albert import barabasi_albert_graph
from repro.generators.brite import (
    MODE_HYBRID,
    MODE_PREFERENTIAL,
    MODE_WAXMAN,
    brite_graph,
)
from repro.generators.base import (
    GeneratedGraph,
    dedupe_edges,
    uniform_points_in_box,
)
from repro.generators.erdos_renyi import (
    erdos_renyi_for_mean_degree,
    erdos_renyi_graph,
)
from repro.generators.geogen import (
    LATENCY_MS_PER_MILE,
    AnnotatedGraph,
    GeoGenConfig,
    geogen_graph,
)
from repro.generators.hierarchical import transit_stub_graph
from repro.generators.waxman import waxman_for_mean_degree, waxman_graph

__all__ = [
    "barabasi_albert_graph",
    "MODE_HYBRID",
    "MODE_PREFERENTIAL",
    "MODE_WAXMAN",
    "brite_graph",
    "GeneratedGraph",
    "dedupe_edges",
    "uniform_points_in_box",
    "erdos_renyi_for_mean_degree",
    "erdos_renyi_graph",
    "LATENCY_MS_PER_MILE",
    "AnnotatedGraph",
    "GeoGenConfig",
    "geogen_graph",
    "transit_stub_graph",
    "waxman_for_mean_degree",
    "waxman_graph",
]
