"""GeoGen: the geography-aware topology generator the paper envisions.

The paper's conclusion sketches "the next generation of topology
generators ... producing router-level graphs annotated with attributes
such as link latencies, AS identifiers and geographical locations".
GeoGen is that generator, built directly from the paper's three
findings:

1. **Node placement** follows population superlinearly: nodes per city
   are drawn with weight ``population ** alpha`` (Section IV), using a
   population model rather than the uniform placement of Waxman.
2. **Link formation** is two-regime: a fraction ``1 - q`` of links is
   Waxman-distance-sampled with scale ``L``; a fraction ``q`` is drawn
   distance-independently (Section V's flat tail), after a spanning
   backbone guarantees connectivity.
3. **AS assignment** gives each node an AS such that AS sizes are
   Zipf-distributed and AS location counts correlate with size, small
   ASes dispersing variably and large ones globally (Section VI).

Every edge also receives a latency annotation derived from its
great-circle length (propagation at ~0.6 c in fibre) — the labelling
problem the paper calls "a straightforward matter" once geography is
available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import GeneratedGraph, dedupe_edges, resolve_rng
from repro.geo.distance import haversine_miles
from repro.population.worldmodel import World

#: Milliseconds of propagation delay per mile in fibre (~0.6 c).
LATENCY_MS_PER_MILE = 0.0087


@dataclass(frozen=True, slots=True)
class GeoGenConfig:
    """GeoGen parameters.

    Attributes:
        n_nodes: router count.
        n_ases: AS count.
        alpha: population superlinearity exponent for placement.
        waxman_l_miles: distance-decay scale for link sampling.
        long_range_fraction: fraction of distance-independent links.
        mean_degree: target mean node degree (>= 2 so a backbone fits).
        as_size_exponent: Zipf exponent for AS sizes.
        jitter_deg: placement jitter around city centres.
    """

    n_nodes: int = 2_000
    n_ases: int = 60
    alpha: float = 1.4
    waxman_l_miles: float = 120.0
    long_range_fraction: float = 0.1
    mean_degree: float = 3.0
    as_size_exponent: float = 1.0
    jitter_deg: float = 0.05

    def __post_init__(self) -> None:
        if self.n_nodes < 10 or self.n_ases < 1 or self.n_ases > self.n_nodes:
            raise ConfigError("need 10 <= n_nodes and 1 <= n_ases <= n_nodes")
        if self.alpha <= 0 or self.waxman_l_miles <= 0:
            raise ConfigError("alpha and waxman_l_miles must be positive")
        if not (0.0 <= self.long_range_fraction <= 1.0):
            raise ConfigError("long_range_fraction must be in [0, 1]")
        if self.mean_degree < 2.0:
            raise ConfigError("mean_degree must be >= 2 (backbone uses ~2)")


@dataclass(frozen=True)
class AnnotatedGraph:
    """A :class:`GeneratedGraph` plus per-edge latency annotations.

    Attributes:
        graph: node/edge structure with AS labels.
        latencies_ms: per-edge propagation latency in milliseconds.
    """

    graph: GeneratedGraph
    latencies_ms: np.ndarray

    def __post_init__(self) -> None:
        if self.latencies_ms.shape != (self.graph.n_edges,):
            raise ConfigError("latencies must be parallel to edges")


def _place_nodes(
    world: World, config: GeoGenConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Population-superlinear node placement; returns lats, lons, city ids."""
    pops = np.array([c.population for c in world.cities])
    weights = pops**config.alpha
    weights /= weights.sum()
    cities = rng.choice(len(world.cities), size=config.n_nodes, p=weights)
    lats = np.array([world.cities[int(c)].location.lat for c in cities])
    lons = np.array([world.cities[int(c)].location.lon for c in cities])
    lats = np.clip(lats + rng.normal(0, config.jitter_deg, config.n_nodes), -89.9, 89.9)
    lons = np.clip(lons + rng.normal(0, config.jitter_deg, config.n_nodes), -179.9, 179.9)
    return lats, lons, cities.astype(np.int64)


def _assign_ases(
    cities: np.ndarray, config: GeoGenConfig, rng: np.random.Generator
) -> np.ndarray:
    """Zipf AS sizes with geographically coherent membership."""
    ranks = np.arange(1, config.n_ases + 1, dtype=float)
    shares = 1.0 / ranks**config.as_size_exponent
    shares /= shares.sum()
    targets = np.maximum(np.round(shares * config.n_nodes).astype(int), 1)
    asns = np.full(cities.shape[0], -1, dtype=np.int64)
    # Each AS claims nodes city by city around a home city, so location
    # counts grow with size; the largest few claim everywhere.
    order = rng.permutation(cities.shape[0])
    cursor = 0
    for rank in range(config.n_ases):
        take = int(targets[rank])
        chosen = order[cursor : cursor + take]
        asns[chosen] = 100 + rank
        cursor += take
        if cursor >= order.shape[0]:
            break
    asns[asns < 0] = 100  # leftovers go to the largest AS
    return asns


def geogen_graph(
    world: World, config: GeoGenConfig, rng: np.random.Generator | int
) -> AnnotatedGraph:
    """Generate a geography-aware annotated router-level graph."""
    rng, seed = resolve_rng(rng)
    lats, lons, cities = _place_nodes(world, config, rng)
    asns = _assign_ases(cities, config, rng)
    n = config.n_nodes
    edges: list[tuple[int, int]] = []

    # Backbone: connect each node to its nearest already-placed node,
    # guaranteeing connectivity with strongly distance-biased links.
    for i in range(1, n):
        d = np.asarray(haversine_miles(lats[i], lons[i], lats[:i], lons[:i]))
        edges.append((i, int(np.argmin(d))))

    # Extra links: two-regime sampling to the target degree.
    target_edges = int(config.mean_degree * n / 2.0)
    extra = max(0, target_edges - len(edges))
    existing = {(min(a, b), max(a, b)) for a, b in edges}
    attempts = 0
    while extra > 0 and attempts < 20 * target_edges:
        attempts += 1
        u = int(rng.integers(n))
        if rng.random() < config.long_range_fraction:
            v = int(rng.integers(n))
        else:
            d = np.asarray(haversine_miles(lats[u], lons[u], lats, lons))
            w = np.exp(-d / config.waxman_l_miles)
            w[u] = 0.0
            total = w.sum()
            if total <= 0:
                continue
            v = int(rng.choice(n, p=w / total))
        pair = (min(u, v), max(u, v))
        if u == v or pair in existing:
            continue
        existing.add(pair)
        edges.append(pair)
        extra -= 1

    graph = GeneratedGraph(
        name="geogen", lats=lats, lons=lons, edges=dedupe_edges(edges),
        asns=asns, seed=seed,
    )
    latencies = graph.edge_lengths_miles() * LATENCY_MS_PER_MILE
    return AnnotatedGraph(graph=graph, latencies_ms=latencies)
