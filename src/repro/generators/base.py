"""Common types for synthetic topology generators.

The paper's closing argument is that topology generators should be
geography-aware.  This subpackage implements the classical baselines it
discusses (Erdos-Renyi, Waxman, Barabasi-Albert) and the
geography-driven generator it envisions, all producing the same
:class:`GeneratedGraph` so the distance-preference analysis can compare
them directly against measured data (experiment X2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.geo.distance import link_lengths_miles


@dataclass(frozen=True)
class GeneratedGraph:
    """A generated topology with node coordinates.

    Attributes:
        name: generator name.
        lats, lons: node coordinates in degrees.
        edges: (m, 2) integer array of node-index pairs.
        asns: optional AS label per node (-1 when the generator does not
            assign ASes).
        seed: the RNG seed the graph was generated from, when known
            (``None`` when the caller supplied a live generator object,
            whose state cannot be recovered).  Sweep cells rely on this
            to make generator comparisons reproducible trial-by-trial.
    """

    name: str
    lats: np.ndarray
    lons: np.ndarray
    edges: np.ndarray
    asns: np.ndarray
    seed: int | None = None

    def __post_init__(self) -> None:
        n = self.lats.shape[0]
        if self.lons.shape != (n,) or self.asns.shape != (n,):
            raise ConfigError("generated graph arrays must be parallel")
        if self.edges.size and (self.edges.ndim != 2 or self.edges.shape[1] != 2):
            raise ConfigError("edges must be an (m, 2) array")
        if self.edges.size and (self.edges.min() < 0 or self.edges.max() >= n):
            raise ConfigError("edge index out of range")

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return int(self.lats.shape[0])

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return int(self.edges.shape[0]) if self.edges.size else 0

    def edge_lengths_miles(self) -> np.ndarray:
        """Great-circle edge lengths."""
        if self.n_edges == 0:
            return np.empty(0)
        return link_lengths_miles(
            self.lats, self.lons, self.edges[:, 0], self.edges[:, 1]
        )

    def degrees(self) -> np.ndarray:
        """Node degrees."""
        degs = np.zeros(self.n_nodes, dtype=np.int64)
        if self.n_edges:
            np.add.at(degs, self.edges[:, 0], 1)
            np.add.at(degs, self.edges[:, 1], 1)
        return degs

    def mean_degree(self) -> float:
        """Average node degree."""
        if self.n_nodes == 0:
            return 0.0
        return 2.0 * self.n_edges / self.n_nodes


def resolve_rng(
    rng: np.random.Generator | int,
) -> tuple[np.random.Generator, int | None]:
    """Normalise a seed-or-generator argument to ``(generator, seed)``.

    Every generator accepts either a live :class:`numpy.random.Generator`
    (seed unknown, returned as ``None``) or an integer seed, which is
    both used to build the generator and recorded on the produced
    :class:`GeneratedGraph` for provenance.
    """
    if isinstance(rng, np.random.Generator):
        return rng, None
    seed = int(rng)
    return np.random.default_rng(seed), seed


def uniform_points_in_box(
    n: int,
    rng: np.random.Generator,
    south: float = 25.0,
    north: float = 50.0,
    west: float = -125.0,
    east: float = -65.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random points in a lat/lon box (the Waxman/ER node model).

    Raises:
        ConfigError: for non-positive n or an empty box.
    """
    if n <= 0:
        raise ConfigError("need a positive node count")
    if north <= south or east <= west:
        raise ConfigError("empty box")
    lats = rng.uniform(south, north, size=n)
    lons = rng.uniform(west, east, size=n)
    return lats, lons


def dedupe_edges(edges: list[tuple[int, int]]) -> np.ndarray:
    """Normalise, deduplicate, and array-ify an edge list."""
    seen = {(min(a, b), max(a, b)) for a, b in edges if a != b}
    if not seen:
        return np.empty((0, 2), dtype=np.intp)
    return np.asarray(sorted(seen), dtype=np.intp)
