"""The Waxman topology generator.

Waxman (1988): nodes are placed uniformly at random in the plane, and a
pair at distance ``d`` is connected with probability

    f_W(d) = beta * exp(-d / (alpha * L_max))

where ``L_max`` is the maximum node separation, ``alpha`` in (0, 1]
controls distance sensitivity and ``beta`` in (0, 1] controls density.
The paper finds Waxman's *connection rule* descriptive of real data at
small distances, while its *uniform placement* assumption is badly wrong
— which is exactly what experiment X2 demonstrates by comparing this
generator with the geography-aware one.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import GeneratedGraph, resolve_rng, uniform_points_in_box
from repro.geo.distance import haversine_miles


def waxman_graph(
    n: int,
    alpha: float,
    beta: float,
    rng: np.random.Generator | int,
    south: float = 25.0,
    north: float = 50.0,
    west: float = -125.0,
    east: float = -65.0,
) -> GeneratedGraph:
    """Generate a Waxman random graph over a lat/lon box.

    Args:
        n: node count (pairwise probabilities are evaluated exactly, so
            keep n moderate — a few thousand).
        alpha: distance sensitivity in (0, 1].
        beta: link density in (0, 1].

    Raises:
        ConfigError: for out-of-range parameters.
    """
    if not (0.0 < alpha <= 1.0):
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
    if not (0.0 < beta <= 1.0):
        raise ConfigError(f"beta must be in (0, 1], got {beta}")
    if n > 20_000:
        raise ConfigError("waxman_graph evaluates O(n^2) pairs; n too large")
    rng, seed = resolve_rng(rng)
    lats, lons = uniform_points_in_box(n, rng, south, north, west, east)
    edges: list[tuple[int, int]] = []
    # Maximum separation: box corner to corner.
    l_max = float(haversine_miles(south, west, north, east))
    for i in range(n - 1):
        d = np.asarray(
            haversine_miles(lats[i], lons[i], lats[i + 1 :], lons[i + 1 :])
        )
        p = beta * np.exp(-d / (alpha * l_max))
        hits = np.flatnonzero(rng.random(d.shape[0]) < p)
        edges.extend((i, i + 1 + int(j)) for j in hits)
    edge_array = (
        np.asarray(edges, dtype=np.intp) if edges else np.empty((0, 2), dtype=np.intp)
    )
    return GeneratedGraph(
        name="waxman",
        lats=lats,
        lons=lons,
        edges=edge_array,
        asns=np.full(n, -1, dtype=np.int64),
        seed=seed,
    )


def waxman_for_mean_degree(
    n: int,
    alpha: float,
    mean_degree: float,
    rng: np.random.Generator | int,
    **box: float,
) -> GeneratedGraph:
    """Waxman graph with ``beta`` calibrated for a target mean degree.

    Calibration estimates the expected degree integral by sampling node
    pairs, then solves for beta (clipped to (0, 1]).

    Raises:
        ConfigError: if the target is unreachable even at beta = 1.
    """
    if mean_degree <= 0:
        raise ConfigError("mean_degree must be positive")
    rng, seed = resolve_rng(rng)
    lats, lons = uniform_points_in_box(n, rng, **box)
    south = box.get("south", 25.0)
    north = box.get("north", 50.0)
    west = box.get("west", -125.0)
    east = box.get("east", -65.0)
    l_max = float(haversine_miles(south, west, north, east))
    sample = min(n, 400)
    idx = rng.choice(n, size=sample, replace=False)
    d = np.asarray(
        haversine_miles(
            lats[idx][:, None], lons[idx][:, None], lats[idx][None, :], lons[idx][None, :]
        )
    )
    mean_weight = float(np.exp(-d / (alpha * l_max))[np.triu_indices(sample, 1)].mean())
    wanted = mean_degree / ((n - 1) * mean_weight)
    if wanted > 1.0:
        raise ConfigError(
            f"mean degree {mean_degree} unreachable with alpha={alpha} at n={n}"
        )
    graph = waxman_graph(n, alpha, max(wanted, 1e-9), rng, south, north, west, east)
    return graph if seed is None else dataclasses.replace(graph, seed=seed)
