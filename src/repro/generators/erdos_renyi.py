"""Erdos-Renyi random graphs with geographic node placement.

The G(n, p) model connects every node pair with a fixed probability,
ignoring geometry entirely — the paper's canonical example of a
generator with *no* distance preference (its f(d) is flat by
construction).  Nodes still receive coordinates so the same analyses
can run over the output.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import GeneratedGraph, resolve_rng, uniform_points_in_box


def erdos_renyi_graph(
    n: int,
    p: float,
    rng: np.random.Generator | int,
    **box: float,
) -> GeneratedGraph:
    """Generate G(n, p) over uniformly placed nodes.

    Raises:
        ConfigError: for invalid n or p.
    """
    if not (0.0 <= p <= 1.0):
        raise ConfigError(f"p must be in [0, 1], got {p}")
    if n > 20_000:
        raise ConfigError("erdos_renyi_graph evaluates O(n^2) pairs; n too large")
    rng, seed = resolve_rng(rng)
    lats, lons = uniform_points_in_box(n, rng, **box)
    edges: list[tuple[int, int]] = []
    for i in range(n - 1):
        hits = np.flatnonzero(rng.random(n - i - 1) < p)
        edges.extend((i, i + 1 + int(j)) for j in hits)
    edge_array = (
        np.asarray(edges, dtype=np.intp) if edges else np.empty((0, 2), dtype=np.intp)
    )
    return GeneratedGraph(
        name="erdos-renyi",
        lats=lats,
        lons=lons,
        edges=edge_array,
        asns=np.full(n, -1, dtype=np.int64),
        seed=seed,
    )


def erdos_renyi_for_mean_degree(
    n: int, mean_degree: float, rng: np.random.Generator | int, **box: float
) -> GeneratedGraph:
    """G(n, p) with p chosen for a target mean degree.

    Raises:
        ConfigError: when the target exceeds n - 1.
    """
    if n < 2:
        raise ConfigError("need at least 2 nodes")
    p = mean_degree / (n - 1)
    if p > 1.0:
        raise ConfigError(f"mean degree {mean_degree} exceeds n-1")
    return erdos_renyi_graph(n, p, rng, **box)
