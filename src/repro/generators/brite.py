"""A BRITE-style incremental topology generator.

BRITE (Medina, Lakhina, Matta, Byers — the same group as this paper) is
a "universal" generator whose router-level modes grow a topology node by
node, connecting each arrival to ``m`` existing nodes chosen either by
Waxman distance probability, by degree-preferential attachment, or by
the product of the two.  Including it closes the loop with the paper's
own tool lineage and gives experiment X2 a hybrid point between the
pure-geometric and pure-topological families.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.generators.base import (
    GeneratedGraph,
    dedupe_edges,
    resolve_rng,
    uniform_points_in_box,
)
from repro.geo.distance import haversine_miles

#: Connection modes.
MODE_WAXMAN = "waxman"
MODE_PREFERENTIAL = "preferential"
MODE_HYBRID = "hybrid"
_MODES = (MODE_WAXMAN, MODE_PREFERENTIAL, MODE_HYBRID)


def brite_graph(
    n: int,
    m: int,
    rng: np.random.Generator | int,
    mode: str = MODE_HYBRID,
    waxman_alpha: float = 0.15,
    **box: float,
) -> GeneratedGraph:
    """Grow a BRITE-style topology.

    Args:
        n: final node count.
        m: links added per new node.
        mode: ``"waxman"`` (distance only), ``"preferential"`` (degree
            only), or ``"hybrid"`` (product of both weights).
        waxman_alpha: distance sensitivity for the Waxman weight, as a
            fraction of the box diagonal.

    Raises:
        ConfigError: for invalid structural parameters or mode.
    """
    if mode not in _MODES:
        raise ConfigError(f"unknown BRITE mode {mode!r}; use one of {_MODES}")
    if m < 1 or n <= m + 1:
        raise ConfigError(f"need n > m + 1 >= 2, got n={n}, m={m}")
    rng, seed = resolve_rng(rng)
    lats, lons = uniform_points_in_box(n, rng, **box)
    south = box.get("south", 25.0)
    north = box.get("north", 50.0)
    west = box.get("west", -125.0)
    east = box.get("east", -65.0)
    l_max = float(haversine_miles(south, west, north, east))
    scale = waxman_alpha * l_max

    degrees = np.zeros(n, dtype=float)
    edges: list[tuple[int, int]] = []
    # Seed clique of m + 1 nodes.
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            edges.append((i, j))
            degrees[i] += 1
            degrees[j] += 1

    for new in range(m + 1, n):
        existing = np.arange(new)
        if mode == MODE_PREFERENTIAL:
            weights = degrees[:new].copy()
        else:
            d = np.asarray(
                haversine_miles(lats[new], lons[new], lats[:new], lons[:new])
            )
            waxman = np.exp(-d / scale)
            if mode == MODE_WAXMAN:
                weights = waxman
            else:
                weights = waxman * degrees[:new]
        total = weights.sum()
        if total <= 0:
            weights = np.ones(new)
            total = float(new)
        targets = rng.choice(
            existing, size=min(m, new), replace=False, p=weights / total
        )
        for target in targets:
            edges.append((int(target), new))
            degrees[target] += 1
            degrees[new] += 1

    return GeneratedGraph(
        name=f"brite-{mode}",
        lats=lats,
        lons=lons,
        edges=dedupe_edges(edges),
        asns=np.full(n, -1, dtype=np.int64),
        seed=seed,
    )
