"""Content-addressed on-disk artifact cache for pipeline stages.

Every cache entry is keyed by a SHA-256 over (cache format version,
scenario-config digest, stage name, upstream entry keys), so a key names
*exactly one* artifact value: change any configuration field, the stage,
or anything upstream and the key changes with it.  Entries therefore
never need invalidation — stale keys are simply never asked for again.

Artifacts are serialised by named codecs.  The default codec pickles;
the dataset-producing stages register a JSON codec built on
:mod:`repro.datasets.serialize` (see ``repro/datasets/pipeline.py``) so
the shareable artefacts stay in the library's interchange format.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Callable

from repro.errors import CacheError

#: Bump when the key derivation or on-disk layout changes.
CACHE_FORMAT_VERSION = 2

_DumpFn = Callable[[Any, Path], None]
_LoadFn = Callable[[Path], Any]

_CODECS: dict[str, tuple[str, _DumpFn, _LoadFn]] = {}


def register_codec(
    name: str, suffix: str, dump: _DumpFn, load: _LoadFn
) -> None:
    """Register (or replace) an artifact codec.

    Args:
        name: codec identifier stages declare (``Stage.codec``).
        suffix: file suffix for entries, e.g. ``".json"``.
        dump: writes a value to a path.
        load: reads a value back from a path.
    """
    _CODECS[name] = (suffix, dump, load)


def _pickle_dump(value: Any, path: Path) -> None:
    with path.open("wb") as handle:
        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)


def _pickle_load(path: Path) -> Any:
    with path.open("rb") as handle:
        return pickle.load(handle)


register_codec("pickle", ".pkl", _pickle_dump, _pickle_load)


def _jsonify(value: Any) -> Any:
    """Reduce a config object to JSON-stable primitives for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config: Any) -> str:
    """A stable hex digest of a (dataclass) configuration object."""
    payload = json.dumps(_jsonify(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stage_key(
    config_hash: str, stage_name: str, upstream_keys: tuple[str, ...]
) -> str:
    """Derive one stage's content key from its identity and lineage."""
    material = "|".join(
        (f"v{CACHE_FORMAT_VERSION}", config_hash, stage_name, *upstream_keys)
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of content-addressed stage artifacts.

    Thread-safe: concurrent stores of the same key are resolved by an
    atomic rename, and hit/miss counters are lock-protected.

    Attributes:
        root: the cache directory (created on first use).
        hits: keys served from disk so far.
        misses: keys not found (or unreadable) so far.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot create cache directory {self.root}: {exc}")
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def _codec(self, codec: str) -> tuple[str, _DumpFn, _LoadFn]:
        try:
            return _CODECS[codec]
        except KeyError:
            raise CacheError(
                f"unknown cache codec {codec!r}; have {sorted(_CODECS)}"
            ) from None

    def _path(self, key: str, codec: str) -> Path:
        suffix, _, _ = self._codec(codec)
        return self.root / f"{key}{suffix}"

    def load(self, key: str, codec: str = "pickle") -> tuple[bool, Any]:
        """Look a key up; returns ``(hit, value)``.

        An unreadable or corrupt entry counts as a miss (and is removed
        best-effort) rather than failing the run.
        """
        _, _, load = self._codec(codec)
        path = self._path(key, codec)
        if path.exists():
            try:
                value = load(path)
            except Exception:
                path.unlink(missing_ok=True)
            else:
                with self._lock:
                    self.hits += 1
                return True, value
        with self._lock:
            self.misses += 1
        return False, None

    def store(self, key: str, value: Any, codec: str = "pickle") -> None:
        """Write an artifact under a key (atomic via temp file + rename)."""
        _, dump, _ = self._codec(codec)
        path = self._path(key, codec)
        tmp = path.with_name(
            f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            dump(value, tmp)
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CacheError(f"cannot write cache entry {path}: {exc}")
        except Exception:
            # Unserialisable artifact: skip caching, never fail the run.
            tmp.unlink(missing_ok=True)
