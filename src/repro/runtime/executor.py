"""Topological stage execution, serial or thread-parallel.

``execute`` walks a validated :class:`~repro.runtime.stages.StageGraph`
in dependency order.  With ``jobs == 1`` stages run serially in the
graph's deterministic topological order; with ``jobs > 1`` a thread pool
runs every stage whose inputs are ready, so independent branches (the
Skitter vs. Mercator campaigns, the four mapping passes) overlap.

Because every stage draws from its own spawned RNG stream (see
``StageGraph.seed_streams``), the schedule cannot influence any stage's
output: parallel and serial execution are bit-for-bit identical.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any

import numpy as np

from repro.errors import StageGraphError
from repro.obs import get_logger
from repro.obs import span as obs_span
from repro.runtime.cache import ArtifactCache, config_digest, stage_key
from repro.runtime.stages import Stage, StageContext, StageGraph
from repro.runtime.telemetry import (
    STATUS_CACHE_HIT,
    STATUS_RAN,
    StageEvent,
    StageTimer,
    Telemetry,
    artifact_counters,
    peak_rss_mb,
)


_log = get_logger("runtime.executor")


def stage_keys(graph: StageGraph, config: Any) -> dict[str, str]:
    """Content keys for every stage of a graph under one configuration.

    Keys chain through the DAG: a stage's key commits to its upstream
    stages' keys, so any upstream difference propagates downstream.
    """
    digest = config_digest(config)
    keys: dict[str, str] = {}
    for name in graph.topological_order():
        stage = graph[name]
        upstream = tuple(keys[dep] for dep in stage.inputs)
        keys[name] = stage_key(digest, name, upstream)
    return keys


def _produce(
    stage: Stage,
    config: Any,
    inputs: dict[str, Any],
    rng: np.random.Generator | None,
    cache: ArtifactCache | None,
    key: str | None,
    telemetry: Telemetry | None,
) -> Any:
    """Run one stage (or serve it from the cache) and record telemetry."""
    with obs_span(f"stage:{stage.name}") as stage_span, StageTimer() as timer:
        status = STATUS_RAN
        value: Any = None
        served = False
        if cache is not None and key is not None and stage.cacheable:
            served, value = cache.load(key, stage.codec)
        if served:
            status = STATUS_CACHE_HIT
        else:
            value = stage.fn(StageContext(config=config, inputs=inputs, rng=rng))
            if cache is not None and key is not None and stage.cacheable:
                cache.store(key, value, stage.codec)
        stage_span.set(status=status)
    _log.debug(
        "stage finished",
        extra={"stage": stage.name, "status": status, "wall_s": timer.wall_s},
    )
    if telemetry is not None:
        telemetry.record(
            StageEvent(
                stage=stage.name,
                status=status,
                wall_s=timer.wall_s,
                rss_mb=peak_rss_mb(),
                counters=artifact_counters(value),
                start_s=timer.start_s,
                end_s=timer.end_s,
            )
        )
    return value


def execute(
    graph: StageGraph,
    config: Any,
    *,
    seed: int,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    telemetry: Telemetry | None = None,
) -> dict[str, Any]:
    """Execute a stage graph; returns stage name -> artifact.

    Args:
        graph: the DAG to run (validated here).
        config: scenario configuration handed to every stage and hashed
            into cache keys.
        seed: master seed; per-stage streams are spawned from it.
        jobs: worker threads (1 = serial).
        cache: optional on-disk artifact cache.
        telemetry: optional per-stage event collector.

    Raises:
        StageGraphError: on a malformed graph or ``jobs < 1``.
    """
    if jobs < 1:
        raise StageGraphError(f"jobs must be >= 1, got {jobs}")
    graph.validate()
    order = graph.topological_order()
    streams = graph.seed_streams(seed)
    keys = stage_keys(graph, config) if cache is not None else {}
    results: dict[str, Any] = {}

    if jobs == 1:
        for name in order:
            stage = graph[name]
            inputs = {dep: results[dep] for dep in stage.inputs}
            results[name] = _produce(
                stage, config, inputs, streams[name],
                cache, keys.get(name), telemetry,
            )
        return results

    pending = set(order)
    running: dict[Future[Any], str] = {}
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        def launch_ready() -> None:
            for name in order:
                if name not in pending:
                    continue
                stage = graph[name]
                if all(dep in results for dep in stage.inputs):
                    pending.discard(name)
                    inputs = {dep: results[dep] for dep in stage.inputs}
                    # Copy the submitting context so worker threads see
                    # the active tracer/metrics and nest their stage
                    # spans under the caller's current span.
                    ctx = contextvars.copy_context()
                    future = pool.submit(
                        ctx.run, _produce, stage, config, inputs,
                        streams[name], cache, keys.get(name), telemetry,
                    )
                    running[future] = name

        launch_ready()
        while running:
            done, _ = wait(running, return_when=FIRST_COMPLETED)
            for future in done:
                name = running.pop(future)
                try:
                    results[name] = future.result()
                except Exception:
                    for other in running:
                        other.cancel()
                    raise
            launch_ready()
    return results
