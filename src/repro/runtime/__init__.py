"""Staged pipeline runtime.

The end-to-end reproduction is a DAG of stages (generate, measure,
geolocate, AS-map) with independent branches — exactly the shape of the
multi-monitor measurement unions in the source paper.  This package
makes that structure explicit and executable:

- :mod:`repro.runtime.stages` — typed :class:`Stage` /
  :class:`StageGraph` with declared inputs and validation;
- :mod:`repro.runtime.cache` — content-addressed on-disk artifact cache
  keyed by configuration digest, stage name, and upstream keys;
- :mod:`repro.runtime.executor` — topological execution, serial or with
  a thread pool running independent branches concurrently, bit-for-bit
  identical either way thanks to per-stage RNG streams;
- :mod:`repro.runtime.telemetry` — per-stage wall time, RSS high-water
  mark, and node/link counters as structured events plus a rendered
  profile table.
"""

from repro.runtime.cache import ArtifactCache, config_digest, register_codec
from repro.runtime.executor import execute
from repro.runtime.stages import Stage, StageContext, StageGraph
from repro.runtime.telemetry import StageEvent, Telemetry

__all__ = [
    "ArtifactCache",
    "config_digest",
    "register_codec",
    "execute",
    "Stage",
    "StageContext",
    "StageGraph",
    "StageEvent",
    "Telemetry",
]
