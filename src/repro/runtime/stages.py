"""Typed pipeline stages and the stage DAG.

A :class:`Stage` names one unit of pipeline work, the upstream stages it
consumes, and how its artifact is cached.  A :class:`StageGraph` holds a
set of stages, validates the dependency structure, and derives the
deterministic execution order and per-stage RNG streams.

RNG streams are spawned from one :class:`numpy.random.SeedSequence` per
scenario seed, assigned to stages by registration order.  Each stage
therefore owns an independent stream, so the *schedule* (serial, or any
parallel interleaving of independent branches) cannot change what any
stage computes — parallel and serial runs are bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import StageGraphError

#: Cache codec identifiers a stage may declare (see repro.runtime.cache).
CODEC_PICKLE = "pickle"

StageFn = Callable[["StageContext"], Any]


@dataclass(frozen=True, slots=True)
class StageContext:
    """What a stage function sees when it runs.

    Attributes:
        config: the scenario being executed (opaque to the runtime).
        inputs: upstream stage name -> upstream artifact.
        rng: this stage's private RNG stream (None when the stage
            declared ``uses_rng=False``).
    """

    config: Any
    inputs: Mapping[str, Any]
    rng: np.random.Generator | None

    def input(self, name: str) -> Any:
        """Fetch one upstream artifact by stage name.

        Raises:
            StageGraphError: when the stage did not declare that input.
        """
        if name not in self.inputs:
            raise StageGraphError(
                f"stage input {name!r} was not declared; have {sorted(self.inputs)}"
            )
        return self.inputs[name]


@dataclass(frozen=True, slots=True)
class Stage:
    """One node of the pipeline DAG.

    Attributes:
        name: unique stage name.
        fn: the work; called with a :class:`StageContext`, returns the
            stage's artifact.
        inputs: names of upstream stages whose artifacts this stage reads.
        uses_rng: whether the stage receives a spawned RNG stream.
        cacheable: whether the artifact may be stored in / served from
            the on-disk cache.
        codec: cache codec used to serialise the artifact.
    """

    name: str
    fn: StageFn
    inputs: tuple[str, ...] = ()
    uses_rng: bool = True
    cacheable: bool = True
    codec: str = CODEC_PICKLE


@dataclass
class StageGraph:
    """An ordered collection of stages forming a DAG."""

    _stages: dict[str, Stage] = field(default_factory=dict)

    def add(self, stage: Stage) -> Stage:
        """Register a stage.

        Raises:
            StageGraphError: on a duplicate stage name.
        """
        if stage.name in self._stages:
            raise StageGraphError(f"duplicate stage name {stage.name!r}")
        self._stages[stage.name] = stage
        return stage

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __getitem__(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise StageGraphError(
                f"unknown stage {name!r}; have {sorted(self._stages)}"
            ) from None

    def __len__(self) -> int:
        return len(self._stages)

    @property
    def names(self) -> tuple[str, ...]:
        """Stage names in registration order."""
        return tuple(self._stages)

    def stages(self) -> tuple[Stage, ...]:
        """All stages in registration order."""
        return tuple(self._stages.values())

    def dependents_of(self, name: str) -> tuple[str, ...]:
        """Stages that consume ``name``'s artifact, in registration order."""
        return tuple(
            stage.name for stage in self._stages.values() if name in stage.inputs
        )

    def validate(self) -> None:
        """Check the graph is a well-formed DAG.

        Raises:
            StageGraphError: on an undeclared input or a cycle.
        """
        for stage in self._stages.values():
            for dep in stage.inputs:
                if dep not in self._stages:
                    raise StageGraphError(
                        f"stage {stage.name!r} reads unknown input {dep!r}"
                    )
        self.topological_order()

    def topological_order(self) -> tuple[str, ...]:
        """Deterministic topological order (Kahn's algorithm).

        Among simultaneously-ready stages, registration order breaks the
        tie, so the serial schedule is stable run to run.

        Raises:
            StageGraphError: when the graph contains a cycle.
        """
        remaining_deps = {
            stage.name: {dep for dep in stage.inputs if dep in self._stages}
            for stage in self._stages.values()
        }
        order: list[str] = []
        ready = [name for name, deps in remaining_deps.items() if not deps]
        while ready:
            name = ready.pop(0)
            order.append(name)
            for other in self._stages.values():
                deps = remaining_deps[other.name]
                if name in deps:
                    deps.discard(name)
                    if not deps:
                        ready.append(other.name)
        if len(order) != len(self._stages):
            stuck = sorted(set(self._stages) - set(order))
            raise StageGraphError(f"stage graph has a cycle through {stuck}")
        return tuple(order)

    def seed_streams(self, seed: int) -> dict[str, np.random.Generator | None]:
        """Independent per-stage RNG streams for one scenario seed.

        Every stage consumes one spawned child (whether or not it uses
        randomness) so adding RNG use to a stage never shifts the other
        stages' streams.
        """
        children = np.random.SeedSequence(seed).spawn(len(self._stages))
        return {
            stage.name: (np.random.default_rng(child) if stage.uses_rng else None)
            for stage, child in zip(self._stages.values(), children)
        }
