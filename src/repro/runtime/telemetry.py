"""Per-stage telemetry: wall time, memory high-water mark, counters.

The executor records one :class:`StageEvent` per stage (whether it ran
or was served from the artifact cache).  Events are structured — a sink
callable can stream them elsewhere — and :meth:`Telemetry.render_profile`
formats the collected events as the ``--profile`` summary table.

RSS is read via :func:`resource.getrusage`, i.e. it is the *process*
high-water mark observed when the stage finished, not a per-stage peak;
with concurrent stages the attribution is approximate by nature.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.obs.bus import publish as bus_publish

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Event statuses.
STATUS_RAN = "ran"
STATUS_CACHE_HIT = "cache-hit"


def peak_rss_mb() -> float:
    """The process's resident-set high-water mark in MiB (0.0 if unknown)."""
    if resource is None:
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


def artifact_counters(value: Any) -> dict[str, int]:
    """Best-effort node/link counters for a stage artifact.

    Understands anything exposing ``n_nodes``/``n_links`` (inventories,
    mapped datasets), topology-like objects exposing ``routers`` /
    ``interfaces`` mappings, BGP tables exposing ``entries``, and tuples
    of the above (first member providing each counter wins).
    """
    counters: dict[str, int] = {}
    if isinstance(value, tuple):
        for member in value:
            for key, count in artifact_counters(member).items():
                counters.setdefault(key, count)
        return counters
    n_nodes = getattr(value, "n_nodes", None)
    n_links = getattr(value, "n_links", None)
    if isinstance(n_nodes, int):
        counters["nodes"] = n_nodes
    if isinstance(n_links, int):
        counters["links"] = n_links
    routers = getattr(value, "routers", None)
    interfaces = getattr(value, "interfaces", None)
    if hasattr(routers, "__len__"):
        counters.setdefault("nodes", len(routers))
    if hasattr(interfaces, "__len__"):
        counters.setdefault("interfaces", len(interfaces))
    entries = getattr(value, "entries", None)
    if hasattr(entries, "__len__"):
        counters.setdefault("entries", len(entries))
    return counters


@dataclass(frozen=True, slots=True)
class StageEvent:
    """One stage's execution record.

    Attributes:
        stage: stage name.
        status: ``"ran"`` or ``"cache-hit"``.
        wall_s: wall-clock seconds spent producing (or loading) the
            artifact.
        rss_mb: process RSS high-water mark when the stage finished.
        counters: artifact size counters (nodes, links, ...).
        start_s: monotonic start time (``time.perf_counter()``), shared
            clock across all stages of one run.
        end_s: monotonic end time.
    """

    stage: str
    status: str
    wall_s: float
    rss_mb: float
    counters: Mapping[str, int]
    start_s: float = 0.0
    end_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view of the event."""
        return {
            "stage": self.stage,
            "status": self.status,
            "wall_s": self.wall_s,
            "rss_mb": self.rss_mb,
            "counters": dict(self.counters),
            "start_s": self.start_s,
            "end_s": self.end_s,
        }


class Telemetry:
    """Collects stage events for one pipeline run (thread-safe)."""

    def __init__(self, sink: Callable[[StageEvent], None] | None = None) -> None:
        self._events: list[StageEvent] = []
        self._sink = sink
        self._lock = threading.Lock()

    def record(self, event: StageEvent) -> None:
        """Append one event (and forward it to the sink and live bus).

        When a :class:`~repro.obs.bus.TelemetryBus` is active in the
        calling context, the stage event is also published as a
        ``stage`` event, so live consumers see stage completions as
        they happen instead of after the run.
        """
        with self._lock:
            self._events.append(event)
        if self._sink is not None:
            self._sink(event)
        bus_publish("stage", **event.to_dict())

    @property
    def events(self) -> tuple[StageEvent, ...]:
        """All recorded events, in completion order."""
        with self._lock:
            return tuple(self._events)

    def __iter__(self) -> Iterator[StageEvent]:
        return iter(self.events)

    def event_for(self, stage: str) -> StageEvent | None:
        """The latest event recorded for a stage, if any."""
        for event in reversed(self.events):
            if event.stage == stage:
                return event
        return None

    def total_wall_s(self) -> float:
        """Sum of per-stage wall times (serial-equivalent cost)."""
        return sum(event.wall_s for event in self.events)

    def render_profile(self) -> str:
        """The ``--profile`` summary table.

        Rows are ordered by stage start time (name breaks ties), so the
        table is deterministic under ``--jobs N`` where completion order
        depends on the schedule.
        """
        events = sorted(self.events, key=lambda e: (e.start_s, e.stage))
        if not events:
            return "PIPELINE STAGE PROFILE\n(no stages recorded)"
        name_width = max(len("stage"), max(len(e.stage) for e in events))
        lines = [
            "PIPELINE STAGE PROFILE",
            f"{'stage':<{name_width}}  {'status':<9}  {'wall s':>8}  "
            f"{'rss MB':>8}  counters",
        ]
        for event in events:
            counters = ", ".join(
                f"{key}={value}" for key, value in sorted(event.counters.items())
            )
            lines.append(
                f"{event.stage:<{name_width}}  {event.status:<9}  "
                f"{event.wall_s:>8.3f}  {event.rss_mb:>8.1f}  {counters}"
            )
        peak_mb = max(e.rss_mb for e in events)
        lines.append(
            f"{'total':<{name_width}}  {'':<9}  {self.total_wall_s():>8.3f}  "
            f"{peak_mb:>8.1f}"
        )
        return "\n".join(lines)


@dataclass
class StageTimer:
    """Context manager measuring one stage's wall time.

    Attributes:
        wall_s: elapsed seconds (valid after exit).
        start_s: monotonic entry time (``time.perf_counter()``).
        end_s: monotonic exit time (valid after exit).
    """

    wall_s: float = field(default=0.0)
    start_s: float = field(default=0.0)
    end_s: float = field(default=0.0)

    def __enter__(self) -> "StageTimer":
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end_s = time.perf_counter()
        self.wall_s = self.end_s - self.start_s
