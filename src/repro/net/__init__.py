"""Ground-truth network model: the planted Internet under measurement.

Exports the element types, IP/prefix utilities, the topology container,
and the population-driven ground-truth generator.
"""

from repro.net.addressing import AddressPlan, AsBlock
from repro.net.annotate import (
    BANDWIDTH_CLASSES_MBPS,
    LinkAnnotations,
    annotate_links,
    latency_matrix_sample,
    path_latency_ms,
)
from repro.net.elements import (
    AutonomousSystem,
    Interface,
    Link,
    PointOfPresence,
    Router,
)
from repro.net.generate import (
    GenerationReport,
    GroundTruthGenerator,
    generate_ground_truth,
)
from repro.net.hostnames import extract_city_code, make_hostname
from repro.net.ip import (
    ADDRESS_BITS,
    ADDRESS_SPACE,
    Prefix,
    check_address,
    format_address,
    is_private,
    parse_address,
    prefix_mask,
)
from repro.net.topology import HOP_COST_MILES, Topology

__all__ = [
    "AddressPlan",
    "BANDWIDTH_CLASSES_MBPS",
    "LinkAnnotations",
    "annotate_links",
    "latency_matrix_sample",
    "path_latency_ms",
    "AsBlock",
    "AutonomousSystem",
    "Interface",
    "Link",
    "PointOfPresence",
    "Router",
    "GenerationReport",
    "GroundTruthGenerator",
    "generate_ground_truth",
    "extract_city_code",
    "make_hostname",
    "ADDRESS_BITS",
    "ADDRESS_SPACE",
    "Prefix",
    "check_address",
    "format_address",
    "is_private",
    "parse_address",
    "prefix_mask",
    "HOP_COST_MILES",
    "Topology",
]
