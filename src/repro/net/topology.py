"""The ground-truth topology container.

A :class:`Topology` holds the planted Internet — ASes, routers, links,
interfaces, hostnames — with consistency checks on every mutation and
array/CSR views for the routing and measurement stages.  It deliberately
knows nothing about how it was generated or how it will be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.geo.distance import great_circle_miles
from repro.net.elements import AutonomousSystem, Interface, Link, Router

#: Extra routing cost per hop, in mile-equivalents; makes shortest paths
#: prefer fewer hops among near-equal geographic alternatives, like IGP
#: metrics do.
HOP_COST_MILES = 50.0


@dataclass
class Topology:
    """Mutable ground-truth topology under construction, then frozen views.

    Attributes:
        asns: AS number -> :class:`AutonomousSystem`.
        routers: dense list, ``routers[i].router_id == i``.
        links: dense list, ``links[i].link_id == i``.
        interfaces: interface address -> :class:`Interface`.
        hostnames: interface address -> DNS hostname.
    """

    asns: dict[int, AutonomousSystem] = field(default_factory=dict)
    routers: list[Router] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    interfaces: dict[int, Interface] = field(default_factory=dict)
    hostnames: dict[int, str] = field(default_factory=dict)
    _adjacency: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _link_by_pair: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)
    _links_of: dict[int, list[int]] = field(default_factory=dict, repr=False)

    # ---- construction ----------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> None:
        """Register an AS.

        Raises:
            TopologyError: on duplicate ASN.
        """
        if asys.asn in self.asns:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self.asns[asys.asn] = asys

    def add_router(
        self, asn: int, location: GeoPoint, city_code: str, loopback: int
    ) -> Router:
        """Create and register a router; also registers its loopback interface.

        Raises:
            TopologyError: if the AS is unknown or the loopback address is
                already taken.
        """
        if asn not in self.asns:
            raise TopologyError(f"unknown ASN {asn}")
        if loopback in self.interfaces:
            raise TopologyError(f"duplicate interface address {loopback}")
        router = Router(
            router_id=len(self.routers),
            asn=asn,
            location=location,
            city_code=city_code,
            loopback=loopback,
        )
        self.routers.append(router)
        self.interfaces[loopback] = Interface(
            address=loopback, router_id=router.router_id, link_id=-1
        )
        self._adjacency[router.router_id] = []
        self._links_of[router.router_id] = []
        return router

    def add_link(
        self, router_a: int, router_b: int, interface_a: int, interface_b: int
    ) -> Link:
        """Create a link between two routers with fresh interface addresses.

        Endpoint order is normalised so ``router_a < router_b``.

        Raises:
            TopologyError: on unknown routers, self-loops, duplicate
                interface addresses, or a pre-existing link between the
                same router pair.
        """
        if router_a == router_b:
            raise TopologyError("refusing to add a self-loop")
        for rid in (router_a, router_b):
            if rid < 0 or rid >= len(self.routers):
                raise TopologyError(f"unknown router {rid}")
        if router_a > router_b:
            router_a, router_b = router_b, router_a
            interface_a, interface_b = interface_b, interface_a
        if router_b in self._adjacency[router_a]:
            raise TopologyError(
                f"link between routers {router_a} and {router_b} already exists"
            )
        for addr in (interface_a, interface_b):
            if addr in self.interfaces:
                raise TopologyError(f"duplicate interface address {addr}")
        ra = self.routers[router_a]
        rb = self.routers[router_b]
        link = Link(
            link_id=len(self.links),
            router_a=router_a,
            router_b=router_b,
            interface_a=interface_a,
            interface_b=interface_b,
            length_miles=great_circle_miles(ra.location, rb.location),
            interdomain=ra.asn != rb.asn,
        )
        self.links.append(link)
        self.interfaces[interface_a] = Interface(interface_a, router_a, link.link_id)
        self.interfaces[interface_b] = Interface(interface_b, router_b, link.link_id)
        self._adjacency[router_a].append(router_b)
        self._adjacency[router_b].append(router_a)
        self._link_by_pair[(router_a, router_b)] = link.link_id
        self._links_of[router_a].append(link.link_id)
        self._links_of[router_b].append(link.link_id)
        return link

    def set_hostname(self, address: int, hostname: str) -> None:
        """Attach a DNS hostname to an interface address.

        Raises:
            TopologyError: if the interface does not exist.
        """
        if address not in self.interfaces:
            raise TopologyError(f"unknown interface address {address}")
        self.hostnames[address] = hostname

    # ---- queries -----------------------------------------------------------

    @property
    def n_routers(self) -> int:
        """Number of routers."""
        return len(self.routers)

    @property
    def n_links(self) -> int:
        """Number of links."""
        return len(self.links)

    @property
    def n_interfaces(self) -> int:
        """Number of interfaces, loopbacks included."""
        return len(self.interfaces)

    def neighbors(self, router_id: int) -> list[int]:
        """Router ids adjacent to ``router_id``.

        Raises:
            TopologyError: on unknown router.
        """
        if router_id not in self._adjacency:
            raise TopologyError(f"unknown router {router_id}")
        return list(self._adjacency[router_id])

    def has_link(self, router_a: int, router_b: int) -> bool:
        """True when the two routers are directly connected."""
        return router_b in self._adjacency.get(router_a, ())

    def degree(self, router_id: int) -> int:
        """Number of links incident to the router."""
        return len(self.neighbors(router_id))

    def router_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lats, lons)`` arrays indexed by router id."""
        lats = np.fromiter(
            (r.location.lat for r in self.routers), dtype=float, count=self.n_routers
        )
        lons = np.fromiter(
            (r.location.lon for r in self.routers), dtype=float, count=self.n_routers
        )
        return lats, lons

    def router_asns(self) -> np.ndarray:
        """ASN per router, indexed by router id."""
        return np.fromiter((r.asn for r in self.routers), dtype=np.int64,
                           count=self.n_routers)

    def link_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel arrays of router-id endpoints per link."""
        a = np.fromiter((link.router_a for link in self.links), dtype=np.intp,
                        count=self.n_links)
        b = np.fromiter((link.router_b for link in self.links), dtype=np.intp,
                        count=self.n_links)
        return a, b

    def link_lengths(self) -> np.ndarray:
        """Length in miles per link."""
        return np.fromiter(
            (link.length_miles for link in self.links), dtype=float, count=self.n_links
        )

    def routing_graph(self, hop_cost: float = HOP_COST_MILES) -> sparse.csr_matrix:
        """Symmetric CSR weight matrix for shortest-path routing.

        Edge weight is geographic length plus a per-hop cost, a standard
        latency-flavoured IGP metric.
        """
        if self.n_routers == 0:
            raise TopologyError("cannot build a routing graph with no routers")
        a, b = self.link_endpoints()
        w = self.link_lengths() + hop_cost
        rows = np.concatenate([a, b])
        cols = np.concatenate([b, a])
        data = np.concatenate([w, w])
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.n_routers, self.n_routers)
        )

    def link_between(self, router_a: int, router_b: int) -> Link:
        """The link joining two routers.

        Raises:
            TopologyError: when they are not directly connected.
        """
        key = (router_a, router_b) if router_a < router_b else (router_b, router_a)
        link_id = self._link_by_pair.get(key)
        if link_id is None:
            raise TopologyError(
                f"no link between routers {router_a} and {router_b}"
            )
        return self.links[link_id]

    def incident_links(self, router_id: int) -> list[int]:
        """Link ids incident to a router.

        Raises:
            TopologyError: on unknown router.
        """
        if router_id not in self._links_of:
            raise TopologyError(f"unknown router {router_id}")
        return list(self._links_of[router_id])

    def interfaces_of_router(self, router_id: int) -> list[Interface]:
        """All interfaces (loopback included) on a router."""
        return [i for i in self.interfaces.values() if i.router_id == router_id]

    def link_interface_toward(self, from_router: int, to_router: int) -> int:
        """Interface address on ``to_router``'s side of the shared link.

        This is what a traceroute hop reports: the inbound interface of
        the next router on the path.

        Raises:
            TopologyError: when the routers are not adjacent.
        """
        link = self.link_between(from_router, to_router)
        if link.router_a == to_router:
            return link.interface_a
        return link.interface_b

    # ---- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Full consistency check; raises on the first violation.

        Raises:
            TopologyError: describing the inconsistency found.
        """
        for i, router in enumerate(self.routers):
            if router.router_id != i:
                raise TopologyError(f"router list not dense at index {i}")
            if router.asn not in self.asns:
                raise TopologyError(f"router {i} references unknown AS {router.asn}")
            if router.loopback not in self.interfaces:
                raise TopologyError(f"router {i} loopback missing from interfaces")
        for i, link in enumerate(self.links):
            if link.link_id != i:
                raise TopologyError(f"link list not dense at index {i}")
            for addr in (link.interface_a, link.interface_b):
                iface = self.interfaces.get(addr)
                if iface is None or iface.link_id != i:
                    raise TopologyError(f"link {i} interface {addr} inconsistent")
            expected = self.routers[link.router_a].asn != self.routers[link.router_b].asn
            if link.interdomain != expected:
                raise TopologyError(f"link {i} interdomain flag wrong")
        for addr, iface in self.interfaces.items():
            if iface.address != addr:
                raise TopologyError(f"interface key {addr} mismatches its address")
            if iface.router_id < 0 or iface.router_id >= self.n_routers:
                raise TopologyError(f"interface {addr} references unknown router")
