"""The ground-truth topology container, stored as structure-of-arrays.

A :class:`Topology` holds the planted Internet — ASes, routers, links,
interfaces, hostnames — with consistency checks on every mutation and
array/CSR views for the routing and measurement stages.  It deliberately
knows nothing about how it was generated or how it will be measured.

Storage is column-oriented: router latitude/longitude/ASN/loopback
arrays, link endpoint/interface arrays, and interface address/owner
arrays, all growable numpy columns.  Scalar access goes through
lightweight view sequences (``topology.routers[i]``,
``topology.links[i]``, ``topology.interfaces[addr]``) that materialise
the familiar :mod:`repro.net.elements` value objects on demand, so call
sites keep reading naturally while bulk consumers index the columns
directly.  Derived structures — link lengths, interdomain flags, the
CSR adjacency, the per-router interface CSR, the sorted-address lookup,
and the directed-edge inbound-interface table — are built lazily, cached
until the next mutation, and shared by routing, measurement, and alias
resolution.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
from scipy import sparse

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.geo.distance import link_lengths_miles
from repro.net.elements import AutonomousSystem, Interface, Link, Router

#: Extra routing cost per hop, in mile-equivalents; makes shortest paths
#: prefer fewer hops among near-equal geographic alternatives, like IGP
#: metrics do.
HOP_COST_MILES = 50.0

#: Initial capacity of a growable column.
_MIN_CAPACITY = 16


def _grown(array: np.ndarray, size: int, extra: int) -> np.ndarray:
    """Return ``array`` with capacity for ``size + extra`` elements."""
    need = size + extra
    capacity = array.shape[0]
    if need <= capacity:
        return array
    new_capacity = max(need, 2 * capacity, _MIN_CAPACITY)
    out = np.empty(new_capacity, dtype=array.dtype)
    out[:size] = array[:size]
    return out


def _readonly(array: np.ndarray, size: int) -> np.ndarray:
    """A read-only view of the first ``size`` elements of a column."""
    view = array[:size]
    view.setflags(write=False)
    return view


class _RouterSeq:
    """Sequence view over the router columns, yielding :class:`Router`."""

    __slots__ = ("_t",)

    def __init__(self, topology: "Topology") -> None:
        self._t = topology

    def __len__(self) -> int:
        return self._t._n_routers

    def _make(self, i: int) -> Router:
        t = self._t
        return Router(
            router_id=i,
            asn=int(t._r_asn[i]),
            location=GeoPoint(float(t._r_lat[i]), float(t._r_lon[i])),
            city_code=t._r_city[i],
            loopback=int(t._r_loopback[i]),
        )

    def __getitem__(self, index):
        n = self._t._n_routers
        if isinstance(index, slice):
            return [self._make(i) for i in range(*index.indices(n))]
        i = int(index)
        if i < 0:
            i += n
        if i < 0 or i >= n:
            raise IndexError("router index out of range")
        return self._make(i)

    def __iter__(self) -> Iterator[Router]:
        for i in range(self._t._n_routers):
            yield self._make(i)


class _LinkSeq:
    """Sequence view over the link columns, yielding :class:`Link`."""

    __slots__ = ("_t",)

    def __init__(self, topology: "Topology") -> None:
        self._t = topology

    def __len__(self) -> int:
        return self._t._n_links

    def _make(self, i: int) -> Link:
        t = self._t
        a = int(t._l_a[i])
        b = int(t._l_b[i])
        # Use the cached length column when built; otherwise compute the
        # single length so scalar access never forces an O(n_links) build.
        lengths = t._derived.get("lengths")
        if lengths is not None:
            length = float(lengths[i])
        else:
            length = float(
                link_lengths_miles(
                    t._r_lat[: t._n_routers],
                    t._r_lon[: t._n_routers],
                    np.array([a], dtype=np.intp),
                    np.array([b], dtype=np.intp),
                )[0]
            )
        return Link(
            link_id=i,
            router_a=a,
            router_b=b,
            interface_a=int(t._l_ia[i]),
            interface_b=int(t._l_ib[i]),
            length_miles=length,
            interdomain=bool(t._r_asn[a] != t._r_asn[b]),
        )

    def __getitem__(self, index):
        n = self._t._n_links
        if isinstance(index, slice):
            return [self._make(i) for i in range(*index.indices(n))]
        i = int(index)
        if i < 0:
            i += n
        if i < 0 or i >= n:
            raise IndexError("link index out of range")
        return self._make(i)

    def __iter__(self) -> Iterator[Link]:
        for i in range(self._t._n_links):
            yield self._make(i)


class _InterfaceMap:
    """Mapping view over the interface columns, keyed by address.

    Point lookups binary-search the sorted-address cache; assignment
    writes through to the columns (used by tests to simulate corruption,
    and kept for dict compatibility).
    """

    __slots__ = ("_t",)

    def __init__(self, topology: "Topology") -> None:
        self._t = topology

    def __len__(self) -> int:
        return self._t._n_interfaces

    def __contains__(self, address: object) -> bool:
        return address in self._t._addr_set

    def _make(self, i: int) -> Interface:
        t = self._t
        return Interface(
            address=int(t._i_addr[i]),
            router_id=int(t._i_router[i]),
            link_id=int(t._i_link[i]),
        )

    def __getitem__(self, address: int) -> Interface:
        i = self._t._interface_position(address)
        if i < 0:
            raise KeyError(address)
        return self._make(i)

    def get(self, address: int, default=None):
        i = self._t._interface_position(address)
        if i < 0:
            return default
        return self._make(i)

    def __setitem__(self, address: int, iface: Interface) -> None:
        t = self._t
        i = t._interface_position(address)
        if i >= 0:
            t._i_router[i] = iface.router_id
            t._i_link[i] = iface.link_id
        else:
            t._append_interface(address, iface.router_id, iface.link_id)
        t._invalidate()

    def __iter__(self) -> Iterator[int]:
        return iter(self._t.interface_addresses().tolist())

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[Interface]:
        for i in range(self._t._n_interfaces):
            yield self._make(i)

    def items(self) -> Iterator[tuple[int, Interface]]:
        t = self._t
        for i in range(t._n_interfaces):
            yield int(t._i_addr[i]), self._make(i)


class Topology:
    """Mutable ground-truth topology: column storage plus lazy views.

    Attributes:
        asns: AS number -> :class:`AutonomousSystem` (insertion-ordered).
        routers: dense sequence view, ``routers[i].router_id == i``.
        links: dense sequence view, ``links[i].link_id == i``.
        interfaces: mapping view, interface address -> :class:`Interface`.
        hostnames: interface address -> DNS hostname.
    """

    def __init__(self) -> None:
        self.asns: dict[int, AutonomousSystem] = {}
        self.hostnames: dict[int, str] = {}
        # Router columns.
        self._n_routers = 0
        self._r_lat = np.empty(0, dtype=np.float64)
        self._r_lon = np.empty(0, dtype=np.float64)
        self._r_asn = np.empty(0, dtype=np.int64)
        self._r_loopback = np.empty(0, dtype=np.int64)
        self._r_city: list[str] = []
        # Link columns.
        self._n_links = 0
        self._l_a = np.empty(0, dtype=np.intp)
        self._l_b = np.empty(0, dtype=np.intp)
        self._l_ia = np.empty(0, dtype=np.int64)
        self._l_ib = np.empty(0, dtype=np.int64)
        # Interface columns, in insertion order.
        self._n_interfaces = 0
        self._i_addr = np.empty(0, dtype=np.int64)
        self._i_router = np.empty(0, dtype=np.intp)
        self._i_link = np.empty(0, dtype=np.int64)
        # Constant-time membership/pair indices maintained eagerly.
        self._addr_set: set[int] = set()
        self._pair_to_link: dict[tuple[int, int], int] = {}
        # Lazily-built derived structures, cleared on mutation.
        self._derived: dict[str, object] = {}
        # Ergonomic views.
        self.routers = _RouterSeq(self)
        self.links = _LinkSeq(self)
        self.interfaces = _InterfaceMap(self)

    # ---- pickling --------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "asns": self.asns,
            "hostnames": self.hostnames,
            "r_lat": self._r_lat[: self._n_routers].copy(),
            "r_lon": self._r_lon[: self._n_routers].copy(),
            "r_asn": self._r_asn[: self._n_routers].copy(),
            "r_loopback": self._r_loopback[: self._n_routers].copy(),
            "r_city": list(self._r_city),
            "l_a": self._l_a[: self._n_links].copy(),
            "l_b": self._l_b[: self._n_links].copy(),
            "l_ia": self._l_ia[: self._n_links].copy(),
            "l_ib": self._l_ib[: self._n_links].copy(),
            "i_addr": self._i_addr[: self._n_interfaces].copy(),
            "i_router": self._i_router[: self._n_interfaces].copy(),
            "i_link": self._i_link[: self._n_interfaces].copy(),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self.asns = state["asns"]
        self.hostnames = state["hostnames"]
        self._set_columns(
            state["r_lat"], state["r_lon"], state["r_asn"],
            state["r_loopback"], state["r_city"],
            state["l_a"], state["l_b"], state["l_ia"], state["l_ib"],
            state["i_addr"], state["i_router"], state["i_link"],
        )

    def _set_columns(
        self, r_lat, r_lon, r_asn, r_loopback, r_city,
        l_a, l_b, l_ia, l_ib, i_addr, i_router, i_link,
    ) -> None:
        """Adopt whole columns at once (deserialisation fast path)."""
        self._n_routers = int(r_lat.shape[0])
        self._r_lat = np.ascontiguousarray(r_lat, dtype=np.float64)
        self._r_lon = np.ascontiguousarray(r_lon, dtype=np.float64)
        self._r_asn = np.ascontiguousarray(r_asn, dtype=np.int64)
        self._r_loopback = np.ascontiguousarray(r_loopback, dtype=np.int64)
        self._r_city = list(r_city)
        self._n_links = int(l_a.shape[0])
        self._l_a = np.ascontiguousarray(l_a, dtype=np.intp)
        self._l_b = np.ascontiguousarray(l_b, dtype=np.intp)
        self._l_ia = np.ascontiguousarray(l_ia, dtype=np.int64)
        self._l_ib = np.ascontiguousarray(l_ib, dtype=np.int64)
        self._n_interfaces = int(i_addr.shape[0])
        self._i_addr = np.ascontiguousarray(i_addr, dtype=np.int64)
        self._i_router = np.ascontiguousarray(i_router, dtype=np.intp)
        self._i_link = np.ascontiguousarray(i_link, dtype=np.int64)
        self._addr_set = set(self._i_addr.tolist())
        self._pair_to_link = {
            (int(a), int(b)): i
            for i, (a, b) in enumerate(zip(self._l_a.tolist(), self._l_b.tolist()))
        }
        self._derived = {}

    # ---- serialisation ---------------------------------------------------

    def to_npz(self, path, extra: dict[str, str] | None = None) -> None:
        """Write the topology to an ``.npz`` archive.

        ``extra`` attaches additional JSON strings (stored as 0-d arrays);
        the runtime cache uses this to bundle the address plan and the
        generation report with the topology in a single artifact.
        """
        hostname_addrs = np.fromiter(
            self.hostnames.keys(), dtype=np.int64, count=len(self.hostnames)
        )
        hostname_values = np.array(list(self.hostnames.values()), dtype=np.str_)
        as_list = list(self.asns.values())
        payload = {
            "r_lat": self._r_lat[: self._n_routers],
            "r_lon": self._r_lon[: self._n_routers],
            "r_asn": self._r_asn[: self._n_routers],
            "r_loopback": self._r_loopback[: self._n_routers],
            "r_city": np.array(self._r_city, dtype=np.str_),
            "l_a": self._l_a[: self._n_links],
            "l_b": self._l_b[: self._n_links],
            "l_ia": self._l_ia[: self._n_links],
            "l_ib": self._l_ib[: self._n_links],
            "i_addr": self._i_addr[: self._n_interfaces],
            "i_router": self._i_router[: self._n_interfaces],
            "i_link": self._i_link[: self._n_interfaces],
            "hostname_addrs": hostname_addrs,
            "hostname_values": hostname_values,
            "as_asn": np.array([a.asn for a in as_list], dtype=np.int64),
            "as_name": np.array([a.name for a in as_list], dtype=np.str_),
            "as_lat": np.array([a.headquarters.lat for a in as_list], dtype=np.float64),
            "as_lon": np.array([a.headquarters.lon for a in as_list], dtype=np.float64),
            "as_adherence": np.array(
                [a.hostname_adherence for a in as_list], dtype=np.float64
            ),
            "as_tier": np.array([a.tier for a in as_list], dtype=np.int64),
        }
        for key, text in (extra or {}).items():
            if key in payload:
                raise TopologyError(f"extra key {key!r} collides with a column")
            payload[key] = np.array(text, dtype=np.str_)
        # Write through a handle so the exact filename is kept (np.savez
        # appends ".npz" to bare paths, breaking atomic temp-file renames).
        with open(path, "wb") as handle:
            np.savez(handle, **payload)

    @classmethod
    def from_npz(cls, path) -> "Topology":
        """Rebuild a topology written by :meth:`to_npz`."""
        with np.load(path, allow_pickle=False) as data:
            topology = cls()
            for asn, name, lat, lon, adherence, tier in zip(
                data["as_asn"].tolist(), data["as_name"].tolist(),
                data["as_lat"].tolist(), data["as_lon"].tolist(),
                data["as_adherence"].tolist(), data["as_tier"].tolist(),
            ):
                topology.asns[asn] = AutonomousSystem(
                    asn=asn, name=name, headquarters=GeoPoint(lat, lon),
                    hostname_adherence=adherence, tier=tier,
                )
            topology._set_columns(
                data["r_lat"], data["r_lon"], data["r_asn"],
                data["r_loopback"], data["r_city"].tolist(),
                data["l_a"], data["l_b"], data["l_ia"], data["l_ib"],
                data["i_addr"], data["i_router"], data["i_link"],
            )
            topology.hostnames = dict(
                zip(data["hostname_addrs"].tolist(),
                    data["hostname_values"].tolist())
            )
        return topology

    # ---- construction ----------------------------------------------------

    def _invalidate(self) -> None:
        self._derived.clear()

    def _append_interface(self, address: int, router_id: int, link_id: int) -> None:
        n = self._n_interfaces
        self._i_addr = _grown(self._i_addr, n, 1)
        self._i_router = _grown(self._i_router, n, 1)
        self._i_link = _grown(self._i_link, n, 1)
        self._i_addr[n] = address
        self._i_router[n] = router_id
        self._i_link[n] = link_id
        self._n_interfaces = n + 1
        self._addr_set.add(address)

    def add_as(self, asys: AutonomousSystem) -> None:
        """Register an AS.

        Raises:
            TopologyError: on duplicate ASN.
        """
        if asys.asn in self.asns:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self.asns[asys.asn] = asys

    def add_router(
        self, asn: int, location: GeoPoint, city_code: str, loopback: int
    ) -> Router:
        """Create and register a router; also registers its loopback interface.

        Raises:
            TopologyError: if the AS is unknown or the loopback address is
                already taken.
        """
        if asn not in self.asns:
            raise TopologyError(f"unknown ASN {asn}")
        if loopback in self._addr_set:
            raise TopologyError(f"duplicate interface address {loopback}")
        i = self._n_routers
        self._r_lat = _grown(self._r_lat, i, 1)
        self._r_lon = _grown(self._r_lon, i, 1)
        self._r_asn = _grown(self._r_asn, i, 1)
        self._r_loopback = _grown(self._r_loopback, i, 1)
        self._r_lat[i] = location.lat
        self._r_lon[i] = location.lon
        self._r_asn[i] = asn
        self._r_loopback[i] = loopback
        self._r_city.append(city_code)
        self._n_routers = i + 1
        self._append_interface(loopback, i, -1)
        self._invalidate()
        return self.routers[i]

    def add_routers(
        self,
        asn: int,
        lats: np.ndarray,
        lons: np.ndarray,
        city_code: str,
        loopbacks: np.ndarray,
    ) -> np.ndarray:
        """Register a batch of routers sharing one AS and city code.

        Returns the assigned router ids (consecutive).  Loopback
        interfaces are registered in router order, matching a sequence of
        scalar :meth:`add_router` calls.

        Raises:
            TopologyError: if the AS is unknown or any loopback address is
                already taken (or repeated within the batch).
        """
        if asn not in self.asns:
            raise TopologyError(f"unknown ASN {asn}")
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        loopbacks = np.asarray(loopbacks, dtype=np.int64)
        count = lats.shape[0]
        if lons.shape[0] != count or loopbacks.shape[0] != count:
            raise TopologyError("router batch columns must have equal length")
        batch = loopbacks.tolist()
        batch_set = set(batch)
        if len(batch_set) != count:
            seen: set[int] = set()
            for addr in batch:
                if addr in seen:
                    raise TopologyError(f"duplicate interface address {addr}")
                seen.add(addr)
        clash = batch_set & self._addr_set
        if clash:
            raise TopologyError(f"duplicate interface address {min(clash)}")
        start = self._n_routers
        self._r_lat = _grown(self._r_lat, start, count)
        self._r_lon = _grown(self._r_lon, start, count)
        self._r_asn = _grown(self._r_asn, start, count)
        self._r_loopback = _grown(self._r_loopback, start, count)
        end = start + count
        self._r_lat[start:end] = lats
        self._r_lon[start:end] = lons
        self._r_asn[start:end] = asn
        self._r_loopback[start:end] = loopbacks
        self._r_city.extend([city_code] * count)
        self._n_routers = end
        ids = np.arange(start, end, dtype=np.intp)
        ni = self._n_interfaces
        self._i_addr = _grown(self._i_addr, ni, count)
        self._i_router = _grown(self._i_router, ni, count)
        self._i_link = _grown(self._i_link, ni, count)
        self._i_addr[ni:ni + count] = loopbacks
        self._i_router[ni:ni + count] = ids
        self._i_link[ni:ni + count] = -1
        self._n_interfaces = ni + count
        self._addr_set |= batch_set
        self._invalidate()
        return ids

    def add_link(
        self, router_a: int, router_b: int, interface_a: int, interface_b: int
    ) -> Link:
        """Create a link between two routers with fresh interface addresses.

        Endpoint order is normalised so ``router_a < router_b``.

        Raises:
            TopologyError: on unknown routers, self-loops, duplicate
                interface addresses, or a pre-existing link between the
                same router pair.
        """
        if router_a == router_b:
            raise TopologyError("refusing to add a self-loop")
        for rid in (router_a, router_b):
            if rid < 0 or rid >= self._n_routers:
                raise TopologyError(f"unknown router {rid}")
        if router_a > router_b:
            router_a, router_b = router_b, router_a
            interface_a, interface_b = interface_b, interface_a
        if (router_a, router_b) in self._pair_to_link:
            raise TopologyError(
                f"link between routers {router_a} and {router_b} already exists"
            )
        for addr in (interface_a, interface_b):
            if addr in self._addr_set:
                raise TopologyError(f"duplicate interface address {addr}")
        i = self._n_links
        self._l_a = _grown(self._l_a, i, 1)
        self._l_b = _grown(self._l_b, i, 1)
        self._l_ia = _grown(self._l_ia, i, 1)
        self._l_ib = _grown(self._l_ib, i, 1)
        self._l_a[i] = router_a
        self._l_b[i] = router_b
        self._l_ia[i] = interface_a
        self._l_ib[i] = interface_b
        self._n_links = i + 1
        self._append_interface(interface_a, router_a, i)
        self._append_interface(interface_b, router_b, i)
        self._pair_to_link[(router_a, router_b)] = i
        self._invalidate()
        return self.links[i]

    def add_links(
        self,
        router_a: np.ndarray,
        router_b: np.ndarray,
        interface_a: np.ndarray,
        interface_b: np.ndarray,
    ) -> np.ndarray:
        """Register a batch of links; returns the assigned link ids.

        Endpoints are normalised per link so ``router_a < router_b``.
        Interfaces are registered in ``(a, b)`` order per link, in batch
        order, matching a sequence of scalar :meth:`add_link` calls.

        Raises:
            TopologyError: on self-loops, unknown routers, duplicate
                pairs (within the batch or against existing links), or
                duplicate interface addresses.
        """
        a = np.asarray(router_a, dtype=np.intp).copy()
        b = np.asarray(router_b, dtype=np.intp).copy()
        ia = np.asarray(interface_a, dtype=np.int64).copy()
        ib = np.asarray(interface_b, dtype=np.int64).copy()
        count = a.shape[0]
        if b.shape[0] != count or ia.shape[0] != count or ib.shape[0] != count:
            raise TopologyError("link batch columns must have equal length")
        if count == 0:
            return np.empty(0, dtype=np.intp)
        if np.any(a == b):
            raise TopologyError("refusing to add a self-loop")
        bad = (a < 0) | (a >= self._n_routers) | (b < 0) | (b >= self._n_routers)
        if np.any(bad):
            which = a[bad][0] if a[bad][0] < 0 or a[bad][0] >= self._n_routers else b[bad][0]
            raise TopologyError(f"unknown router {int(which)}")
        flip = a > b
        a[flip], b[flip] = b[flip], a[flip]
        ia[flip], ib[flip] = ib[flip], ia[flip]
        pairs = list(zip(a.tolist(), b.tolist()))
        if len(set(pairs)) != count:
            seen_pairs: set[tuple[int, int]] = set()
            for pair in pairs:
                if pair in seen_pairs:
                    raise TopologyError(
                        f"link between routers {pair[0]} and {pair[1]} already exists"
                    )
                seen_pairs.add(pair)
        for pair in pairs:
            if pair in self._pair_to_link:
                raise TopologyError(
                    f"link between routers {pair[0]} and {pair[1]} already exists"
                )
        addrs = np.empty(2 * count, dtype=np.int64)
        addrs[0::2] = ia
        addrs[1::2] = ib
        addr_list = addrs.tolist()
        addr_batch = set(addr_list)
        if len(addr_batch) != 2 * count:
            seen_addrs: set[int] = set()
            for addr in addr_list:
                if addr in seen_addrs:
                    raise TopologyError(f"duplicate interface address {addr}")
                seen_addrs.add(addr)
        clash = addr_batch & self._addr_set
        if clash:
            raise TopologyError(f"duplicate interface address {min(clash)}")
        start = self._n_links
        self._l_a = _grown(self._l_a, start, count)
        self._l_b = _grown(self._l_b, start, count)
        self._l_ia = _grown(self._l_ia, start, count)
        self._l_ib = _grown(self._l_ib, start, count)
        end = start + count
        self._l_a[start:end] = a
        self._l_b[start:end] = b
        self._l_ia[start:end] = ia
        self._l_ib[start:end] = ib
        self._n_links = end
        ids = np.arange(start, end, dtype=np.intp)
        ni = self._n_interfaces
        self._i_addr = _grown(self._i_addr, ni, 2 * count)
        self._i_router = _grown(self._i_router, ni, 2 * count)
        self._i_link = _grown(self._i_link, ni, 2 * count)
        self._i_addr[ni:ni + 2 * count] = addrs
        owners = np.empty(2 * count, dtype=np.intp)
        owners[0::2] = a
        owners[1::2] = b
        self._i_router[ni:ni + 2 * count] = owners
        link_of = np.repeat(ids, 2)
        self._i_link[ni:ni + 2 * count] = link_of
        self._n_interfaces = ni + 2 * count
        self._addr_set |= addr_batch
        for pair, link_id in zip(pairs, ids.tolist()):
            self._pair_to_link[pair] = link_id
        self._invalidate()
        return ids

    def set_hostname(self, address: int, hostname: str) -> None:
        """Attach a DNS hostname to an interface address.

        Raises:
            TopologyError: if the interface does not exist.
        """
        if address not in self._addr_set:
            raise TopologyError(f"unknown interface address {address}")
        self.hostnames[address] = hostname

    def move_routers(
        self, router_ids: np.ndarray, lats: np.ndarray, lons: np.ndarray
    ) -> None:
        """Update router coordinates in place (geolocation refinements).

        The streaming-ingest mutation path: a better mapping for an
        already-known router replaces its position.  Derived structures
        (link lengths in particular) are invalidated.

        Raises:
            TopologyError: on unknown router ids, ragged batch columns,
                or out-of-range coordinates.
        """
        ids = np.asarray(router_ids, dtype=np.intp)
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        if lats.shape != ids.shape or lons.shape != ids.shape:
            raise TopologyError("move batch columns must have equal length")
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._n_routers:
            bad = ids[(ids < 0) | (ids >= self._n_routers)][0]
            raise TopologyError(f"unknown router {int(bad)}")
        if (
            not np.all(np.isfinite(lats))
            or not np.all(np.isfinite(lons))
            or lats.min() < -90.0
            or lats.max() > 90.0
            or lons.min() < -180.0
            or lons.max() > 180.0
        ):
            raise TopologyError("router coordinates out of range")
        self._r_lat[ids] = lats
        self._r_lon[ids] = lons
        self._invalidate()

    def set_router_asns(self, router_ids: np.ndarray, asns: np.ndarray) -> None:
        """Re-home routers to different (already-registered) ASes.

        The streaming-ingest mutation path for AS-mapping changes: a BGP
        update re-originates a prefix and its routers move to another
        AS.  Derived structures (interdomain flags) are invalidated.

        Raises:
            TopologyError: on unknown router ids, unknown ASNs, or
                ragged batch columns.
        """
        ids = np.asarray(router_ids, dtype=np.intp)
        asns = np.asarray(asns, dtype=np.int64)
        if asns.shape != ids.shape:
            raise TopologyError("remap batch columns must have equal length")
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._n_routers:
            bad = ids[(ids < 0) | (ids >= self._n_routers)][0]
            raise TopologyError(f"unknown router {int(bad)}")
        for asn in np.unique(asns).tolist():
            if asn not in self.asns:
                raise TopologyError(f"unknown ASN {asn}")
        self._r_asn[ids] = asns
        self._invalidate()

    # ---- derived structures ---------------------------------------------

    def _derive(self, key: str, build):
        value = self._derived.get(key)
        if value is None:
            value = build()
            self._derived[key] = value
        return value

    def _build_lengths(self) -> np.ndarray:
        lengths = link_lengths_miles(
            self._r_lat[: self._n_routers],
            self._r_lon[: self._n_routers],
            self._l_a[: self._n_links],
            self._l_b[: self._n_links],
        )
        lengths.setflags(write=False)
        return lengths

    def _build_interdomain(self) -> np.ndarray:
        asn = self._r_asn[: self._n_routers]
        flags = asn[self._l_a[: self._n_links]] != asn[self._l_b[: self._n_links]]
        flags.setflags(write=False)
        return flags

    def _build_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        a = self._l_a[: self._n_links]
        b = self._l_b[: self._n_links]
        ids = np.arange(self._n_links, dtype=np.intp)
        heads = np.concatenate([a, b])
        tails = np.concatenate([b, a])
        link_ids = np.concatenate([ids, ids])
        order = np.lexsort((tails, heads))
        heads = heads[order]
        counts = np.bincount(heads, minlength=self._n_routers)
        indptr = np.zeros(self._n_routers + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return indptr, tails[order], link_ids[order]

    def _build_interface_csr(self) -> tuple[np.ndarray, np.ndarray]:
        owners = self._i_router[: self._n_interfaces]
        order = np.argsort(owners, kind="stable")
        counts = np.bincount(owners, minlength=self._n_routers)
        indptr = np.zeros(self._n_routers + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        return indptr, order

    def _build_address_index(self) -> tuple[np.ndarray, np.ndarray]:
        addrs = self._i_addr[: self._n_interfaces]
        order = np.argsort(addrs)
        return addrs[order], order

    def _build_edge_table(self) -> tuple[np.ndarray, np.ndarray]:
        a = self._l_a[: self._n_links].astype(np.int64)
        b = self._l_b[: self._n_links].astype(np.int64)
        origin = np.concatenate([a, b])
        target = np.concatenate([b, a])
        inbound = np.concatenate(
            [self._l_ib[: self._n_links], self._l_ia[: self._n_links]]
        )
        keys = origin * np.int64(self._n_routers) + target
        order = np.argsort(keys)
        return keys[order], inbound[order]

    def _interface_position(self, address) -> int:
        """Column index of an interface address, or -1 when absent."""
        if address not in self._addr_set:
            return -1
        sorted_addrs, order = self._derive("addr", self._build_address_index)
        pos = int(np.searchsorted(sorted_addrs, address))
        return int(order[pos])

    def interface_positions(self, addresses: np.ndarray) -> np.ndarray:
        """Column indices of interface addresses; -1 where unknown."""
        addresses = np.asarray(addresses, dtype=np.int64)
        sorted_addrs, order = self._derive("addr", self._build_address_index)
        if sorted_addrs.shape[0] == 0:
            return np.full(addresses.shape, -1, dtype=np.intp)
        pos = np.searchsorted(sorted_addrs, addresses)
        pos = np.minimum(pos, sorted_addrs.shape[0] - 1)
        found = sorted_addrs[pos] == addresses
        return np.where(found, order[pos], -1)

    # ---- queries ---------------------------------------------------------

    @property
    def n_routers(self) -> int:
        """Number of routers."""
        return self._n_routers

    @property
    def n_links(self) -> int:
        """Number of links."""
        return self._n_links

    @property
    def n_interfaces(self) -> int:
        """Number of interfaces, loopbacks included."""
        return self._n_interfaces

    def neighbors(self, router_id: int) -> list[int]:
        """Router ids adjacent to ``router_id``, in ascending order.

        Raises:
            TopologyError: on unknown router.
        """
        if router_id < 0 or router_id >= self._n_routers:
            raise TopologyError(f"unknown router {router_id}")
        indptr, nbrs, _ = self._derive("adj", self._build_adjacency)
        return nbrs[indptr[router_id]:indptr[router_id + 1]].tolist()

    def has_link(self, router_a: int, router_b: int) -> bool:
        """True when the two routers are directly connected."""
        key = (router_a, router_b) if router_a < router_b else (router_b, router_a)
        return key in self._pair_to_link

    def degree(self, router_id: int) -> int:
        """Number of links incident to the router."""
        if router_id < 0 or router_id >= self._n_routers:
            raise TopologyError(f"unknown router {router_id}")
        indptr, _, _ = self._derive("adj", self._build_adjacency)
        return int(indptr[router_id + 1] - indptr[router_id])

    def degrees(self) -> np.ndarray:
        """Link count per router, indexed by router id."""
        counts = np.bincount(
            self._l_a[: self._n_links], minlength=self._n_routers
        )
        counts += np.bincount(
            self._l_b[: self._n_links], minlength=self._n_routers
        )
        return counts

    def router_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lats, lons)`` read-only arrays indexed by router id."""
        return (
            _readonly(self._r_lat, self._n_routers),
            _readonly(self._r_lon, self._n_routers),
        )

    def router_asns(self) -> np.ndarray:
        """ASN per router, indexed by router id (read-only)."""
        return _readonly(self._r_asn, self._n_routers)

    def router_loopbacks(self) -> np.ndarray:
        """Loopback interface address per router (read-only)."""
        return _readonly(self._r_loopback, self._n_routers)

    def router_city_codes(self) -> list[str]:
        """Airport-style city code per router ('' for rural routers)."""
        return list(self._r_city)

    def link_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel read-only arrays of router-id endpoints per link."""
        return (
            _readonly(self._l_a, self._n_links),
            _readonly(self._l_b, self._n_links),
        )

    def link_interfaces(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel read-only arrays of interface addresses per link."""
        return (
            _readonly(self._l_ia, self._n_links),
            _readonly(self._l_ib, self._n_links),
        )

    def link_lengths(self) -> np.ndarray:
        """Length in miles per link (read-only, computed lazily)."""
        return self._derive("lengths", self._build_lengths)

    def link_interdomain(self) -> np.ndarray:
        """Boolean interdomain flag per link (read-only, lazily derived)."""
        return self._derive("interdomain", self._build_interdomain)

    def interface_addresses(self) -> np.ndarray:
        """Interface addresses in insertion order (read-only)."""
        return _readonly(self._i_addr, self._n_interfaces)

    def interface_routers(self) -> np.ndarray:
        """Owning router id per interface, insertion order (read-only)."""
        return _readonly(self._i_router, self._n_interfaces)

    def interface_links(self) -> np.ndarray:
        """Link id per interface (-1 for loopbacks), insertion order."""
        return _readonly(self._i_link, self._n_interfaces)

    def routing_graph(self, hop_cost: float = HOP_COST_MILES) -> sparse.csr_matrix:
        """Symmetric CSR weight matrix for shortest-path routing.

        Edge weight is geographic length plus a per-hop cost, a standard
        latency-flavoured IGP metric.
        """
        if self._n_routers == 0:
            raise TopologyError("cannot build a routing graph with no routers")
        a = self._l_a[: self._n_links]
        b = self._l_b[: self._n_links]
        w = self.link_lengths() + hop_cost
        rows = np.concatenate([a, b])
        cols = np.concatenate([b, a])
        data = np.concatenate([w, w])
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(self._n_routers, self._n_routers)
        )

    def link_between(self, router_a: int, router_b: int) -> Link:
        """The link joining two routers.

        Raises:
            TopologyError: when they are not directly connected.
        """
        key = (router_a, router_b) if router_a < router_b else (router_b, router_a)
        link_id = self._pair_to_link.get(key)
        if link_id is None:
            raise TopologyError(
                f"no link between routers {router_a} and {router_b}"
            )
        return self.links[link_id]

    def incident_links(self, router_id: int) -> list[int]:
        """Link ids incident to a router.

        Raises:
            TopologyError: on unknown router.
        """
        if router_id < 0 or router_id >= self._n_routers:
            raise TopologyError(f"unknown router {router_id}")
        indptr, _, link_ids = self._derive("adj", self._build_adjacency)
        return link_ids[indptr[router_id]:indptr[router_id + 1]].tolist()

    def interfaces_of_router(self, router_id: int) -> list[Interface]:
        """All interfaces (loopback included) on a router.

        Served from the per-router interface CSR: O(degree), not
        O(n_interfaces).
        """
        if router_id < 0 or router_id >= self._n_routers:
            return []
        indptr, order = self._derive("iface_csr", self._build_interface_csr)
        make = self.interfaces._make
        return [
            make(int(i))
            for i in order[indptr[router_id]:indptr[router_id + 1]]
        ]

    def link_interface_toward(self, from_router: int, to_router: int) -> int:
        """Interface address on ``to_router``'s side of the shared link.

        This is what a traceroute hop reports: the inbound interface of
        the next router on the path.

        Raises:
            TopologyError: when the routers are not adjacent.
        """
        key = (
            (from_router, to_router)
            if from_router < to_router
            else (to_router, from_router)
        )
        link_id = self._pair_to_link.get(key)
        if link_id is None:
            raise TopologyError(
                f"no link between routers {from_router} and {to_router}"
            )
        if self._l_a[link_id] == to_router:
            return int(self._l_ia[link_id])
        return int(self._l_ib[link_id])

    def link_interfaces_toward(
        self, from_routers: np.ndarray, to_routers: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`link_interface_toward` over router-id arrays.

        Raises:
            TopologyError: when any pair is not adjacent.
        """
        from_routers = np.asarray(from_routers, dtype=np.int64)
        to_routers = np.asarray(to_routers, dtype=np.int64)
        if from_routers.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        keys, inbound = self._derive("edges", self._build_edge_table)
        wanted = from_routers * np.int64(self._n_routers) + to_routers
        pos = np.searchsorted(keys, wanted)
        pos_c = np.minimum(pos, keys.shape[0] - 1)
        found = (keys.shape[0] > 0) & (keys[pos_c] == wanted)
        if not np.all(found):
            i = int(np.flatnonzero(~found)[0])
            raise TopologyError(
                f"no link between routers {int(from_routers[i])} "
                f"and {int(to_routers[i])}"
            )
        return inbound[pos_c]

    # ---- validation ------------------------------------------------------

    def validate(self) -> None:
        """Full consistency check; raises on the first violation.

        Raises:
            TopologyError: describing the inconsistency found.
        """
        n = self._n_routers
        r_asn = self._r_asn[:n]
        if n:
            known = np.fromiter(self.asns.keys(), dtype=np.int64, count=len(self.asns))
            ok = np.isin(r_asn, known) if known.shape[0] else np.zeros(n, dtype=bool)
            if not np.all(ok):
                i = int(np.flatnonzero(~ok)[0])
                raise TopologyError(
                    f"router {i} references unknown AS {int(r_asn[i])}"
                )
            pos = self.interface_positions(self._r_loopback[:n])
            if np.any(pos < 0):
                i = int(np.flatnonzero(pos < 0)[0])
                raise TopologyError(f"router {i} loopback missing from interfaces")
        m = self._n_links
        if m:
            link_ids = np.arange(m, dtype=np.int64)
            i_link = self._i_link[: self._n_interfaces]
            for side in (self._l_ia[:m], self._l_ib[:m]):
                pos = self.interface_positions(side)
                ok = (pos >= 0) & (i_link[np.maximum(pos, 0)] == link_ids)
                if not np.all(ok):
                    i = int(np.flatnonzero(~ok)[0])
                    raise TopologyError(
                        f"link {i} interface {int(side[i])} inconsistent"
                    )
        owners = self._i_router[: self._n_interfaces]
        ok = (owners >= 0) & (owners < n)
        if not np.all(ok):
            i = int(np.flatnonzero(~ok)[0])
            raise TopologyError(
                f"interface {int(self._i_addr[i])} references unknown router"
            )
        refs = self._i_link[: self._n_interfaces]
        ok = (refs >= -1) & (refs < m)
        if not np.all(ok):
            i = int(np.flatnonzero(~ok)[0])
            raise TopologyError(
                f"interface {int(self._i_addr[i])} references unknown link"
            )
