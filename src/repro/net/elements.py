"""Ground-truth network elements: ASes, routers, interfaces, links.

These model the *real* (planted) Internet that the measurement
simulators observe.  The paper's distinction between routers (Mercator's
unit) and interfaces (Skitter's unit) is first-class here: a
:class:`Router` owns one :class:`Interface` per incident link plus a
loopback, and every :class:`Link` connects two specific interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint


@dataclass(frozen=True, slots=True)
class AutonomousSystem:
    """An autonomous system in the ground-truth world.

    Attributes:
        asn: autonomous system number (> 0).
        name: organisation name (drives hostnames and whois records).
        headquarters: registered HQ location — where whois-based
            geolocation will (sometimes wrongly) place the AS's hosts.
        hostname_adherence: probability that a router hostname embeds its
            city code (per-ISP naming discipline).
        tier: 1 for backbone carriers, 2 for regional, 3 for stubs.
    """

    asn: int
    name: str
    headquarters: GeoPoint
    hostname_adherence: float = 0.9
    tier: int = 3

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")
        if not (0.0 <= self.hostname_adherence <= 1.0):
            raise TopologyError("hostname_adherence must be in [0, 1]")
        if self.tier not in (1, 2, 3):
            raise TopologyError(f"tier must be 1, 2 or 3, got {self.tier}")

    @property
    def domain(self) -> str:
        """DNS domain for this AS's router hostnames."""
        slug = "".join(ch for ch in self.name.lower() if ch.isalnum())
        return f"{slug or 'as' + str(self.asn)}.net"


@dataclass(frozen=True, slots=True)
class Router:
    """A ground-truth router.

    Attributes:
        router_id: dense index, unique within a topology.
        asn: owning AS number.
        location: true geographic position.
        city_code: code of the city whose PoP hosts this router
            (empty when the router is not in any city PoP).
        loopback: canonical loopback address (Mercator's alias-resolution
            target collapses interfaces to this address).
    """

    router_id: int
    asn: int
    location: GeoPoint
    city_code: str
    loopback: int

    def __post_init__(self) -> None:
        if self.router_id < 0:
            raise TopologyError(f"router_id must be >= 0, got {self.router_id}")


@dataclass(frozen=True, slots=True)
class Interface:
    """A router interface with its own IP address.

    Attributes:
        address: IPv4 address as an integer, unique within a topology.
        router_id: owning router.
        link_id: incident link, or -1 for a loopback interface.
    """

    address: int
    router_id: int
    link_id: int


@dataclass(frozen=True, slots=True)
class Link:
    """A physical link between two routers, via two named interfaces.

    Attributes:
        link_id: dense index, unique within a topology.
        router_a, router_b: endpoint router ids (a < b by convention).
        interface_a, interface_b: endpoint interface addresses.
        length_miles: great-circle length of the link.
        interdomain: True when the endpoints belong to different ASes.
    """

    link_id: int
    router_a: int
    router_b: int
    interface_a: int
    interface_b: int
    length_miles: float
    interdomain: bool

    def __post_init__(self) -> None:
        if self.router_a == self.router_b:
            raise TopologyError(f"link {self.link_id} is a self-loop")
        if self.length_miles < 0:
            raise TopologyError(f"link {self.link_id} has negative length")

    def other_router(self, router_id: int) -> int:
        """The endpoint opposite ``router_id``.

        Raises:
            TopologyError: if ``router_id`` is not an endpoint.
        """
        if router_id == self.router_a:
            return self.router_b
        if router_id == self.router_b:
            return self.router_a
        raise TopologyError(f"router {router_id} is not on link {self.link_id}")


@dataclass(slots=True)
class PointOfPresence:
    """An AS's presence in one city: a bundle of co-located routers.

    Attributes:
        asn: owning AS.
        city_code: hosting city code.
        location: city centre.
        router_ids: routers deployed at this PoP.
    """

    asn: int
    city_code: str
    location: GeoPoint
    router_ids: list[int] = field(default_factory=list)
