"""ISP router-naming conventions.

The primary technique of IxMapper-style geolocation is *hostname based
mapping*: ISPs name routers with embedded city or airport codes, e.g.
``0.so-5-2-0.XL1.NYC8.ALTER.NET`` maps to New York City.  This module
generates such hostnames for ground-truth routers (respecting each AS's
naming discipline) and parses codes back out of them — the other half of
the geolocator.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import GeolocationError

#: Interface-type tokens that appear in real ISP hostnames.
_IFACE_TOKENS = ("so", "ge", "fe", "pos", "atm", "srp", "xe")
#: Role tokens for the router tier inside a PoP.
_ROLE_TOKENS = ("cr", "br", "ar", "xl", "gw")

_HOSTNAME_RE = re.compile(
    r"^(?P<port>[0-9]+)\.(?P<iface>[a-z]+-[0-9]+-[0-9]+-[0-9]+)\."
    r"(?P<role>[A-Z]+[0-9]+)\.(?P<loc>[A-Z0-9]*)\.?(?P<domain>[A-Za-z0-9.-]+)$"
)


def make_hostname(
    router_id: int,
    city_code: str,
    domain: str,
    rng: np.random.Generator,
    embed_location: bool,
) -> str:
    """Generate a realistic router hostname.

    Args:
        router_id: used to derive stable role/unit numbers.
        city_code: the city code to embed (may be empty).
        domain: the AS's DNS domain.
        rng: randomness for port/slot numbers.
        embed_location: when False (ISP without a naming convention, or a
            lapse in discipline), the location token is omitted.

    Returns:
        A hostname like ``0.so-5-2-0.CR1.NYC3.example.net``; without a
        location token the ``loc`` field is empty
        (``0.so-5-2-0.CR1..example.net``).
    """
    port = int(rng.integers(0, 4))
    iface = _IFACE_TOKENS[int(rng.integers(len(_IFACE_TOKENS)))]
    slot = f"{iface}-{int(rng.integers(0, 8))}-{int(rng.integers(0, 4))}-{int(rng.integers(0, 4))}"
    role = _ROLE_TOKENS[router_id % len(_ROLE_TOKENS)].upper()
    unit = 1 + router_id % 9
    loc = f"{city_code}{1 + (router_id // 7) % 9}" if (embed_location and city_code) else ""
    return f"{port}.{slot}.{role}{unit}.{loc}.{domain}"


def extract_city_code(hostname: str) -> str | None:
    """Extract the embedded city code from a hostname, if any.

    Returns:
        The alphabetic city code (e.g. ``"NYC"``), or None when the
        hostname carries no location token.

    Raises:
        GeolocationError: if the hostname does not follow the recognised
            grammar at all.
    """
    match = _HOSTNAME_RE.match(hostname)
    if match is None:
        raise GeolocationError(f"unparseable hostname {hostname!r}")
    loc = match.group("loc")
    if not loc:
        return None
    code = loc.rstrip("0123456789")
    return code or None
