"""ISP router-naming conventions.

The primary technique of IxMapper-style geolocation is *hostname based
mapping*: ISPs name routers with embedded city or airport codes, e.g.
``0.so-5-2-0.XL1.NYC8.ALTER.NET`` maps to New York City.  This module
generates such hostnames for ground-truth routers (respecting each AS's
naming discipline) and parses codes back out of them — the other half of
the geolocator.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import GeolocationError

#: Interface-type tokens that appear in real ISP hostnames.
_IFACE_TOKENS = ("so", "ge", "fe", "pos", "atm", "srp", "xe")
#: Role tokens for the router tier inside a PoP.
_ROLE_TOKENS = ("cr", "br", "ar", "xl", "gw")

_HOSTNAME_RE = re.compile(
    r"^(?P<port>[0-9]+)\.(?P<iface>[a-z]+-[0-9]+-[0-9]+-[0-9]+)\."
    r"(?P<role>[A-Z]+[0-9]+)\.(?P<loc>[A-Z0-9]*)\.?(?P<domain>[A-Za-z0-9.-]+)$"
)


def make_hostname(
    router_id: int,
    city_code: str,
    domain: str,
    rng: np.random.Generator,
    embed_location: bool,
) -> str:
    """Generate a realistic router hostname.

    Args:
        router_id: used to derive stable role/unit numbers.
        city_code: the city code to embed (may be empty).
        domain: the AS's DNS domain.
        rng: randomness for port/slot numbers.
        embed_location: when False (ISP without a naming convention, or a
            lapse in discipline), the location token is omitted.

    Returns:
        A hostname like ``0.so-5-2-0.CR1.NYC3.example.net``; without a
        location token the ``loc`` field is empty
        (``0.so-5-2-0.CR1..example.net``).
    """
    port = int(rng.integers(0, 4))
    iface = _IFACE_TOKENS[int(rng.integers(len(_IFACE_TOKENS)))]
    slot = f"{iface}-{int(rng.integers(0, 8))}-{int(rng.integers(0, 4))}-{int(rng.integers(0, 4))}"
    role = _ROLE_TOKENS[router_id % len(_ROLE_TOKENS)].upper()
    unit = 1 + router_id % 9
    loc = f"{city_code}{1 + (router_id // 7) % 9}" if (embed_location and city_code) else ""
    return f"{port}.{slot}.{role}{unit}.{loc}.{domain}"


def make_hostname_batch(
    router_ids: np.ndarray,
    city_codes: list[str],
    domains: list[str],
    rng: np.random.Generator,
    embed_location: np.ndarray,
) -> list[str]:
    """Generate hostnames for many interfaces at once.

    Follows the same grammar as :func:`make_hostname` but draws all
    port/slot numbers as arrays up front, which is what makes hostname
    assignment tractable at 10^5-router scale.

    Args:
        router_ids: owning router id per interface.
        city_codes: city code per interface (empty string to omit).
        domains: AS domain per interface.
        rng: randomness for port/slot numbers.
        embed_location: boolean per interface; when False the location
            token is omitted.
    """
    router_ids = np.asarray(router_ids, dtype=np.int64)
    n = int(router_ids.shape[0])
    if n == 0:
        return []
    ports = rng.integers(0, 4, size=n)
    iface_idx = rng.integers(0, len(_IFACE_TOKENS), size=n)
    slot_a = rng.integers(0, 8, size=n)
    slot_b = rng.integers(0, 4, size=n)
    slot_c = rng.integers(0, 4, size=n)
    role_idx = router_ids % len(_ROLE_TOKENS)
    units = 1 + router_ids % 9
    loc_num = 1 + (router_ids // 7) % 9
    roles = tuple(tok.upper() for tok in _ROLE_TOKENS)
    embed = np.asarray(embed_location, dtype=bool)
    return [
        f"{p}.{_IFACE_TOKENS[ti]}-{a}-{b}-{c}.{roles[ri]}{u}."
        f"{code}{ln}.{dom}" if (e and code) else
        f"{p}.{_IFACE_TOKENS[ti]}-{a}-{b}-{c}.{roles[ri]}{u}..{dom}"
        for p, ti, a, b, c, ri, u, ln, code, dom, e in zip(
            ports.tolist(), iface_idx.tolist(), slot_a.tolist(),
            slot_b.tolist(), slot_c.tolist(), role_idx.tolist(),
            units.tolist(), loc_num.tolist(), city_codes, domains,
            embed.tolist(),
        )
    ]


def extract_city_code(hostname: str) -> str | None:
    """Extract the embedded city code from a hostname, if any.

    Returns:
        The alphabetic city code (e.g. ``"NYC"``), or None when the
        hostname carries no location token.

    Raises:
        GeolocationError: if the hostname does not follow the recognised
            grammar at all.
    """
    match = _HOSTNAME_RE.match(hostname)
    if match is None:
        raise GeolocationError(f"unparseable hostname {hostname!r}")
    loc = match.group("loc")
    if not loc:
        return None
    code = loc.rstrip("0123456789")
    return code or None
