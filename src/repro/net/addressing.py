"""Per-AS address allocation.

Each AS receives one or more CIDR blocks from a registry-style allocator
carving the public unicast space; router loopbacks and link interfaces
draw sequential host addresses from their AS's blocks.  The resulting
prefix-to-AS map is what the RouteViews snapshot builder later announces,
closing the loop for longest-prefix-match AS mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.net.ip import ADDRESS_BITS, Prefix

#: First base handed out: 16.0.0.0, safely past 10/8 private space.
_DEFAULT_POOL = Prefix.parse("16.0.0.0/4")


@dataclass
class AsBlock:
    """One CIDR block owned by an AS, with a sequential host cursor."""

    prefix: Prefix
    next_offset: int = 1  # skip the network address

    def remaining(self) -> int:
        """Host addresses still available (one is reserved for broadcast)."""
        return max(0, self.prefix.size - 1 - self.next_offset)

    def take(self) -> int:
        """Allocate the next host address.

        Raises:
            AllocationError: when the block is exhausted.
        """
        if self.remaining() <= 0:
            raise AllocationError(f"block {self.prefix} exhausted")
        address = self.prefix.base + self.next_offset
        self.next_offset += 1
        return address


@dataclass
class AddressPlan:
    """Registry + per-AS allocator over a top-level address pool.

    Attributes:
        pool: the address space carved into AS blocks.
        block_length: prefix length of each block handed to an AS.
    """

    pool: Prefix = _DEFAULT_POOL
    block_length: int = 16
    _next_block: int = 0
    _blocks: dict[int, list[AsBlock]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_length <= self.pool.length or self.block_length > ADDRESS_BITS - 2:
            raise AllocationError(
                f"block_length {self.block_length} incompatible with pool {self.pool}"
            )

    @property
    def block_count(self) -> int:
        """Number of blocks the pool can supply in total."""
        return 1 << (self.block_length - self.pool.length)

    def grant_block(self, asn: int) -> Prefix:
        """Grant the AS a fresh block from the pool.

        Raises:
            AllocationError: when the pool is exhausted.
        """
        if self._next_block >= self.block_count:
            raise AllocationError("address pool exhausted")
        step = 1 << (ADDRESS_BITS - self.block_length)
        prefix = Prefix(self.pool.base + self._next_block * step, self.block_length)
        self._next_block += 1
        self._blocks.setdefault(asn, []).append(AsBlock(prefix))
        return prefix

    def allocate(self, asn: int) -> int:
        """Allocate one host address for the AS, granting blocks as needed."""
        blocks = self._blocks.setdefault(asn, [])
        for block in blocks:
            if block.remaining() > 0:
                return block.take()
        self.grant_block(asn)
        return self._blocks[asn][-1].take()

    def allocate_many(self, asn: int, count: int) -> np.ndarray:
        """Allocate ``count`` host addresses for the AS, in order.

        Equivalent to ``count`` calls to :meth:`allocate` (same addresses,
        same block grants) but filled a contiguous run at a time.
        """
        out = np.empty(count, dtype=np.int64)
        filled = 0
        blocks = self._blocks.setdefault(asn, [])
        cursor = 0
        while filled < count:
            while cursor < len(blocks) and blocks[cursor].remaining() <= 0:
                cursor += 1
            if cursor >= len(blocks):
                self.grant_block(asn)
                blocks = self._blocks[asn]
                continue
            block = blocks[cursor]
            take = min(block.remaining(), count - filled)
            start = block.prefix.base + block.next_offset
            out[filled:filled + take] = np.arange(
                start, start + take, dtype=np.int64
            )
            block.next_offset += take
            filled += take
        return out

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the allocator state."""
        return {
            "pool": [self.pool.base, self.pool.length],
            "block_length": self.block_length,
            "next_block": self._next_block,
            "blocks": {
                str(asn): [
                    [b.prefix.base, b.prefix.length, b.next_offset]
                    for b in blocks
                ]
                for asn, blocks in self._blocks.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AddressPlan":
        """Rebuild an allocator from :meth:`to_dict` output."""
        plan = cls(
            pool=Prefix(int(payload["pool"][0]), int(payload["pool"][1])),
            block_length=int(payload["block_length"]),
        )
        plan._next_block = int(payload["next_block"])
        plan._blocks = {
            int(asn): [
                AsBlock(Prefix(int(base), int(length)), int(offset))
                for base, length, offset in blocks
            ]
            for asn, blocks in payload["blocks"].items()
        }
        return plan

    def prefixes_of(self, asn: int) -> list[Prefix]:
        """All blocks granted to the AS so far."""
        return [b.prefix for b in self._blocks.get(asn, [])]

    def prefix_origin_pairs(self) -> list[tuple[Prefix, int]]:
        """Every ``(prefix, origin ASN)`` pair — the registry's view."""
        pairs: list[tuple[Prefix, int]] = []
        for asn, blocks in self._blocks.items():
            pairs.extend((b.prefix, asn) for b in blocks)
        return pairs
