"""IPv4 addresses and CIDR prefixes as plain integers.

Addresses are 32-bit unsigned integers throughout the library; this is
both faster and simpler than object-per-address when datasets carry
hundreds of thousands of interfaces.  This module provides parsing,
formatting, validation, and prefix arithmetic used by the address
allocator and the BGP longest-prefix-match machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError

#: Number of bits in an IPv4 address.
ADDRESS_BITS = 32
#: Exclusive upper bound of the IPv4 address space.
ADDRESS_SPACE = 1 << ADDRESS_BITS

# RFC 1918 private ranges, as (base, prefix_length).
_PRIVATE_BLOCKS = (
    (0x0A000000, 8),    # 10.0.0.0/8
    (0xAC100000, 12),   # 172.16.0.0/12
    (0xC0A80000, 16),   # 192.168.0.0/16
)


def check_address(address: int) -> int:
    """Return ``address`` if it is a valid IPv4 integer, else raise.

    Raises:
        AddressError: if outside [0, 2^32).
    """
    if not isinstance(address, (int,)) or isinstance(address, bool):
        raise AddressError(f"address must be an int, got {type(address).__name__}")
    if address < 0 or address >= ADDRESS_SPACE:
        raise AddressError(f"address {address!r} outside 32-bit space")
    return address


def format_address(address: int) -> str:
    """Dotted-quad representation of an integer address."""
    check_address(address)
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_address(text: str) -> int:
    """Parse dotted-quad text into an integer address.

    Raises:
        AddressError: on malformed input.
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def is_private(address: int) -> bool:
    """True for RFC 1918 private addresses.

    The geolocation stage of the pipeline discards private addresses
    "originating from misconfigured routers", as the paper does.
    """
    check_address(address)
    for base, length in _PRIVATE_BLOCKS:
        mask = prefix_mask(length)
        if (address & mask) == base:
            return True
    return False


def is_private_many(addresses: np.ndarray) -> np.ndarray:
    """Vectorised :func:`is_private` over an integer address array."""
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and (addresses.min() < 0 or addresses.max() >= (1 << ADDRESS_BITS)):
        bad = addresses[(addresses < 0) | (addresses >= (1 << ADDRESS_BITS))][0]
        raise AddressError(f"address {int(bad)!r} outside IPv4 range")
    private = np.zeros(addresses.shape, dtype=bool)
    for base, length in _PRIVATE_BLOCKS:
        mask = prefix_mask(length)
        private |= (addresses & mask) == base
    return private


def prefix_mask(length: int) -> int:
    """Netmask integer for a prefix length.

    Raises:
        AddressError: if length outside [0, 32].
    """
    if length < 0 or length > ADDRESS_BITS:
        raise AddressError(f"prefix length {length!r} outside [0, 32]")
    if length == 0:
        return 0
    return ((1 << length) - 1) << (ADDRESS_BITS - length)


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """A CIDR prefix ``base/length`` with a canonical (masked) base.

    Attributes:
        base: network base address (host bits must be zero).
        length: prefix length in [0, 32].
    """

    base: int
    length: int

    def __post_init__(self) -> None:
        check_address(self.base)
        if self.length < 0 or self.length > ADDRESS_BITS:
            raise AddressError(f"prefix length {self.length!r} outside [0, 32]")
        if self.base & ~prefix_mask(self.length) & (ADDRESS_SPACE - 1):
            raise AddressError(
                f"prefix base {format_address(self.base)} has host bits set "
                f"for length {self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation.

        Raises:
            AddressError: on malformed input.
        """
        if "/" not in text:
            raise AddressError(f"prefix {text!r} is missing '/len'")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return cls(parse_address(addr_text), int(len_text))

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (ADDRESS_BITS - self.length)

    @property
    def last(self) -> int:
        """Highest address in the prefix."""
        return self.base + self.size - 1

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this prefix."""
        check_address(address)
        return (address & prefix_mask(self.length)) == self.base

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or nested inside this prefix."""
        return other.length >= self.length and self.contains(other.base)

    def subdivide(self, new_length: int) -> list["Prefix"]:
        """All sub-prefixes of the given longer length, in address order.

        Raises:
            AddressError: if ``new_length`` is shorter than this prefix or
                would enumerate more than 2^20 children.
        """
        if new_length < self.length:
            raise AddressError("cannot subdivide into a shorter prefix")
        n = 1 << (new_length - self.length)
        if n > (1 << 20):
            raise AddressError("refusing to enumerate more than 2^20 sub-prefixes")
        step = 1 << (ADDRESS_BITS - new_length)
        return [Prefix(self.base + i * step, new_length) for i in range(n)]

    def __str__(self) -> str:
        return f"{format_address(self.base)}/{self.length}"
