"""Link annotations: latency and bandwidth from geography.

The paper's conclusion argues that geographically placed topologies make
two labelling problems straightforward: link *latency* follows from
great-circle length (propagation in fibre at ~0.6 c plus per-hop
equipment delay), and link *bandwidth* can be assigned from structural
role (backbone long-haul vs metro vs access).  This module implements
both annotations for ground-truth topologies and generated graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.net.topology import Topology

#: Propagation delay in milliseconds per mile of fibre (~0.6 c), plus a
#: typical per-hop forwarding/serialisation constant.
PROPAGATION_MS_PER_MILE = 0.0087
PER_HOP_MS = 0.05

#: Bandwidth classes in Mbit/s, era-appropriate (OC-48 / OC-12 / OC-3 /
#: T3-ish metro and access tiers).
BANDWIDTH_CLASSES_MBPS = (2488.0, 622.0, 155.0, 45.0)


@dataclass(frozen=True)
class LinkAnnotations:
    """Per-link latency and bandwidth, parallel to ``topology.links``.

    Attributes:
        latencies_ms: one-way propagation + forwarding latency.
        bandwidths_mbps: assigned capacity class.
    """

    latencies_ms: np.ndarray
    bandwidths_mbps: np.ndarray

    def __post_init__(self) -> None:
        if self.latencies_ms.shape != self.bandwidths_mbps.shape:
            raise TopologyError("annotation arrays must be parallel")


def annotate_links(topology: Topology) -> LinkAnnotations:
    """Compute latency and bandwidth annotations for every link.

    Latency is deterministic from length.  Bandwidth is structural:

    * interdomain links and links between tier-1/tier-2 ASes' routers
      get backbone classes scaled by length (long haul is provisioned
      fatter);
    * intradomain metro links (short) get access/metro classes.

    Raises:
        TopologyError: for an empty topology.
    """
    if topology.n_links == 0:
        raise TopologyError("cannot annotate a topology with no links")
    lengths = topology.link_lengths()
    latencies = lengths * PROPAGATION_MS_PER_MILE + PER_HOP_MS

    router_asns = topology.router_asns()
    unique_asns, inverse = np.unique(router_asns, return_inverse=True)
    tier_of_asn = np.array(
        [topology.asns[int(asn)].tier for asn in unique_asns], dtype=np.int64
    )
    router_tier = tier_of_asn[inverse]
    endpoint_a, endpoint_b = topology.link_endpoints()
    min_tier = np.minimum(router_tier[endpoint_a], router_tier[endpoint_b])
    backbone = (min_tier == 1) | (lengths > 500.0)
    regional = (min_tier == 2) | topology.link_interdomain()
    bandwidths = np.select(
        [backbone, regional, lengths > 50.0],
        [
            BANDWIDTH_CLASSES_MBPS[0],
            BANDWIDTH_CLASSES_MBPS[1],
            BANDWIDTH_CLASSES_MBPS[2],
        ],
        default=BANDWIDTH_CLASSES_MBPS[3],
    )
    return LinkAnnotations(latencies_ms=latencies, bandwidths_mbps=bandwidths)


def path_latency_ms(
    topology: Topology,
    annotations: LinkAnnotations,
    router_path: list[int],
) -> float:
    """One-way latency of a router path under the annotations.

    Raises:
        TopologyError: if consecutive routers are not adjacent.
    """
    total = 0.0
    for a, b in zip(router_path, router_path[1:]):
        link = topology.link_between(a, b)
        total += float(annotations.latencies_ms[link.link_id])
    return total


def latency_matrix_sample(
    topology: Topology,
    annotations: LinkAnnotations,
    sources: list[int],
    targets: list[int],
) -> np.ndarray:
    """Latency between sampled router pairs along shortest paths.

    Returns:
        Array of shape ``(len(sources), len(targets))`` in milliseconds;
        ``inf`` marks unreachable pairs.
    """
    from repro.routing.shortest_path import shortest_path_trees

    graph = topology.routing_graph()
    trees = shortest_path_trees(graph, list(sources))
    out = np.full((len(sources), len(targets)), np.inf)
    for i, tree in enumerate(trees):
        for j, target in enumerate(targets):
            if target == tree.source:
                out[i, j] = 0.0
            elif tree.reachable(target):
                out[i, j] = path_latency_ms(
                    topology, annotations, tree.path_to(target)
                )
    return out
