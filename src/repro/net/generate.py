"""Generation of the planted ground-truth Internet.

This module synthesises the *system under measurement*: a router-level
Internet whose geographic statistics are planted to match the phenomena
the paper reports, so that the full pipeline (measure -> geolocate ->
AS-map -> analyse) can be validated by recovering them.

The planted properties, and where they are injected:

* **Superlinear router density** (Section IV): city router counts are
  drawn multinomially with weights ``zone_budget * population ** alpha``
  where ``alpha`` is the per-zone exponent from the scenario config.
* **Distance-dependent link formation** (Section V): extra intra-AS
  links are sampled with probability proportional to ``exp(-d / L)``
  using the per-zone Waxman scale ``L``; a configured fraction is drawn
  distance-independently, producing the flat large-``d`` regime.
* **AS size/dispersal structure** (Section VI): AS router shares are
  Zipf; PoP counts grow sublinearly with size; small ASes disperse
  locally with a heavy-tailed radius (or, rarely, globally), while every
  AS beyond a size threshold is globally dispersed.
* **Inter vs intra domain link lengths**: interdomain links join an AS's
  PoP to its neighbour's *nearest* PoP, which is typically in another
  city, making them systematically longer than intra-PoP/metro links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GroundTruthConfig
from repro.errors import ConfigError, TopologyError
from repro.geo.distance import haversine_miles
from repro.net.addressing import AddressPlan
from repro.net.elements import AutonomousSystem
from repro.net.hostnames import make_hostname_batch
from repro.net.ip import Prefix
from repro.net.topology import Topology
from repro.population.worldmodel import World

_NAME_STEMS = (
    "corenet", "globix", "transglobe", "netspan", "interlink", "backhaul",
    "fibernet", "pacrim", "atlantix", "eurolink", "quicknet", "telegrid",
    "omnipop", "densewave", "metrolight", "skyroute", "westlink", "eastnet",
    "polarnet", "equinet", "longhaul", "shortpath", "deeppeer", "fastlane",
)

#: Private 10/8 pool used for the occasional misconfigured interface.
_PRIVATE_POOL = Prefix.parse("10.0.0.0/8")


@dataclass
class _AsSpec:
    """Working state for one AS during generation."""

    asn: int
    name: str
    tier: int
    target_size: int
    adherence: float
    home_city: int
    pop_cities: list[int] = field(default_factory=list)
    router_ids: list[int] = field(default_factory=list)
    routers_by_city: dict[int, list[int]] = field(default_factory=dict)


@dataclass(frozen=True)
class GenerationReport:
    """What was planted, for validation against what analyses recover.

    Attributes:
        zone_router_budgets: routers allotted per zone name.
        planted_alpha: per-zone density exponents.
        planted_waxman_l: per-zone Waxman scales in miles.
        n_routers, n_links, n_interfaces: final topology sizes.
        interdomain_fraction: realised fraction of interdomain links.
        as_sizes: realised router count per ASN.
    """

    zone_router_budgets: dict[str, int]
    planted_alpha: dict[str, float]
    planted_waxman_l: dict[str, float]
    n_routers: int
    n_links: int
    n_interfaces: int
    interdomain_fraction: float
    as_sizes: dict[int, int]


class GroundTruthGenerator:
    """Builds a :class:`~repro.net.topology.Topology` from a world model."""

    def __init__(self, world: World, config: GroundTruthConfig,
                 rng: np.random.Generator) -> None:
        self.world = world
        self.config = config
        self.rng = rng
        self.topology = Topology()
        self.plan = AddressPlan()
        self._private_next = 1
        # City arrays.
        self._city_lat = np.array([c.location.lat for c in world.cities])
        self._city_lon = np.array([c.location.lon for c in world.cities])
        self._city_pop = np.array([c.population for c in world.cities])
        self._city_zone = np.array(
            [self._zone_index(c.zone) for c in world.cities], dtype=np.intp
        )
        self._zone_names = [z.name for z in world.zones]
        self._router_zone: list[int] = []
        self.report: GenerationReport | None = None

    # -- helpers ------------------------------------------------------------

    def _zone_index(self, name: str) -> int:
        for i, zone in enumerate(self.world.zones):
            if zone.name == name:
                return i
        raise ConfigError(f"city references unknown zone {name!r}")

    def _alpha_for_zone(self, zone_name: str) -> float:
        return self.config.alpha.get(zone_name, 1.3)

    def _waxman_l_for_zone(self, zone_name: str) -> float:
        return self.config.waxman_l_miles.get(zone_name, 150.0)

    def _allocate_address(self, asn: int) -> int:
        """Allocate an interface address; rarely a private one.

        A small fraction of real interfaces answer probes with RFC 1918
        addresses (misconfiguration); the geolocation stage must discard
        them, so we plant a few.
        """
        if self.rng.random() < 0.005:
            address = _PRIVATE_POOL.base + self._private_next
            self._private_next += 1
            return address
        return self.plan.allocate(asn)

    def _allocate_addresses(self, asn: int, count: int) -> np.ndarray:
        """Batch form of :meth:`_allocate_address` (one private draw each)."""
        private = self.rng.random(count) < 0.005
        out = np.empty(count, dtype=np.int64)
        n_private = int(private.sum())
        if n_private:
            start = _PRIVATE_POOL.base + self._private_next
            out[private] = np.arange(start, start + n_private, dtype=np.int64)
            self._private_next += n_private
        if n_private < count:
            out[~private] = self.plan.allocate_many(asn, count - n_private)
        return out

    # -- stage 1: budgets and city router counts ----------------------------

    def _zone_budgets(self) -> np.ndarray:
        weights = np.array(
            [z.online_millions * 1e6 * z.interfaces_per_online
             for z in self.world.zones]
        )
        shares = weights / weights.sum()
        budgets = np.floor(
            shares * self.config.total_routers * (1.0 - self.config.rural_router_fraction)
        ).astype(int)
        budgets = np.maximum(budgets, 2)
        return budgets

    def _city_attractiveness(self) -> np.ndarray:
        """Per-city router attraction: zone budget x population^alpha.

        A small uniform share (1%) of each zone's budget spreads across
        all of its cities regardless of size: carriers keep minimal
        presence in small towns, which is what gives real datasets their
        very large distinct-location counts.
        """
        attraction = np.zeros(len(self.world.cities))
        budgets = self._zone_budgets()
        for zi, zone in enumerate(self.world.zones):
            mask = self._city_zone == zi
            if not np.any(mask):
                continue
            alpha = self._alpha_for_zone(zone.name)
            weighted = self._city_pop[mask] ** alpha
            share = budgets[zi] * weighted / weighted.sum()
            floor = 0.01 * budgets[zi] / int(mask.sum())
            attraction[mask] = 0.99 * share + floor
        return attraction

    def _city_router_counts(self, attraction: np.ndarray) -> np.ndarray:
        """Multinomial split of each zone's budget across its cities."""
        counts = np.zeros(len(self.world.cities), dtype=int)
        budgets = self._zone_budgets()
        for zi in range(len(self.world.zones)):
            mask = self._city_zone == zi
            weights = attraction[mask]
            if weights.sum() <= 0:
                continue
            draw = self.rng.multinomial(int(budgets[zi]), weights / weights.sum())
            counts[np.flatnonzero(mask)] = draw
        return counts

    # -- stage 2: AS specifications ------------------------------------------

    def _as_sizes(self) -> np.ndarray:
        ranks = np.arange(1, self.config.n_ases + 1, dtype=float)
        shares = 1.0 / ranks**self.config.as_size_exponent
        shares /= shares.sum()
        sizes = np.maximum(
            np.round(shares * self.config.total_routers).astype(int), 1
        )
        return sizes

    def _make_as_specs(self, attraction: np.ndarray) -> list[_AsSpec]:
        cfg = self.config
        sizes = self._as_sizes()
        budgets = self._zone_budgets().astype(float)
        zone_probs = budgets / budgets.sum()
        specs: list[_AsSpec] = []
        for rank in range(cfg.n_ases):
            asn = 100 + rank
            tier = 1 if rank < cfg.tier1_count else (
                2 if rank < cfg.tier1_count + cfg.tier2_count else 3
            )
            stem = _NAME_STEMS[rank % len(_NAME_STEMS)]
            name = f"{stem}{asn}"
            zone = int(self.rng.choice(len(self.world.zones), p=zone_probs))
            zone_cities = np.flatnonzero(self._city_zone == zone)
            weights = attraction[zone_cities]
            if weights.sum() <= 0:
                weights = np.ones(zone_cities.size)
            home = int(self.rng.choice(zone_cities, p=weights / weights.sum()))
            # Naming discipline: most ISPs are strict, a minority sloppy,
            # and a few embed no location at all — those are the ASes
            # whose hundreds of interfaces geolocate to a couple of
            # whois-HQ points (the low line in the paper's Figure 8a).
            roll = self.rng.random()
            if roll < 0.8:
                adherence = float(self.rng.uniform(0.82, 0.98))
            elif roll < 0.94:
                adherence = float(self.rng.uniform(0.1, 0.6))
            else:
                adherence = 0.0
            specs.append(
                _AsSpec(
                    asn=asn,
                    name=name,
                    tier=tier,
                    target_size=int(sizes[rank]),
                    adherence=adherence,
                    home_city=home,
                )
            )
        return specs

    def _choose_pop_cities(self, spec: _AsSpec, attraction: np.ndarray) -> None:
        """Pick the cities where this AS is present (its PoPs)."""
        cfg = self.config
        n_cities = len(self.world.cities)
        raw = spec.target_size**0.72 * float(self.rng.lognormal(0.0, 0.4))
        n_pops = int(
            np.clip(
                round(raw),
                1,
                min(max(1, int(np.ceil(spec.target_size * cfg.max_pops_fraction))),
                    n_cities),
            )
        )
        globally = (
            spec.target_size > cfg.global_dispersal_threshold
            or spec.tier == 1
            or self.rng.random() < cfg.small_global_probability
        )
        if globally:
            candidates = np.arange(n_cities)
        else:
            home_lat = self._city_lat[spec.home_city]
            home_lon = self._city_lon[spec.home_city]
            dist = haversine_miles(home_lat, home_lon, self._city_lat, self._city_lon)
            radius = float(self.rng.lognormal(np.log(300.0), 1.1))
            candidates = np.flatnonzero(dist <= radius)
            if candidates.size < n_pops:
                candidates = np.argsort(dist)[: max(n_pops, 4)]
        weights = attraction[candidates] + 1e-9
        n_pops = min(n_pops, candidates.size)
        chosen = self.rng.choice(
            candidates, size=n_pops, replace=False, p=weights / weights.sum()
        )
        pops = set(int(c) for c in chosen)
        pops.add(spec.home_city)
        # Global carriers keep a PoP on every continent (the paper's
        # "maximally dispersed" regime above the size cutoff): include
        # each zone's top city.
        if globally and (
            spec.tier == 1 or spec.target_size > cfg.global_dispersal_threshold
        ):
            for zi in range(len(self.world.zones)):
                zone_cities = np.flatnonzero(self._city_zone == zi)
                if zone_cities.size:
                    top = zone_cities[int(np.argmax(attraction[zone_cities]))]
                    pops.add(int(top))
        spec.pop_cities = sorted(pops)

    # -- stage 3: routers ----------------------------------------------------

    def _create_routers(
        self, specs: list[_AsSpec], city_counts: np.ndarray
    ) -> None:
        """Split each city's router count among the ASes present there."""
        cfg = self.config
        presence: dict[int, list[int]] = {c: [] for c in range(len(self.world.cities))}
        for si, spec in enumerate(specs):
            for city in spec.pop_cities:
                presence[city].append(si)
        # Zone incumbents (largest AS homed in the zone) absorb cities no
        # AS chose, so every placed router has an owner.
        incumbents = self._zone_incumbents(specs)
        for city in range(len(self.world.cities)):
            count = int(city_counts[city])
            if count == 0:
                continue
            owners = presence[city]
            if not owners:
                owners = [incumbents[int(self._city_zone[city])]]
            weights = np.array([specs[si].target_size for si in owners], dtype=float)
            split = self.rng.multinomial(count, weights / weights.sum())
            for si, n_here in zip(owners, split):
                if n_here == 0:
                    continue
                spec = specs[si]
                self._place_routers_in_city(spec, city, int(n_here))
        # Guarantee every AS exists in the topology with at least one router.
        for spec in specs:
            if not spec.router_ids:
                self._place_routers_in_city(spec, spec.home_city, 1)

    def _zone_incumbents(self, specs: list[_AsSpec]) -> dict[int, int]:
        incumbents: dict[int, int] = {}
        for si, spec in enumerate(specs):
            zone = int(self._city_zone[spec.home_city])
            best = incumbents.get(zone)
            if best is None or specs[best].target_size < spec.target_size:
                incumbents[zone] = si
        # Fall back to the globally largest AS for zones without a homed AS.
        largest = max(range(len(specs)), key=lambda i: specs[i].target_size)
        for zone in range(len(self.world.zones)):
            incumbents.setdefault(zone, largest)
        return incumbents

    def _place_routers_in_city(self, spec: _AsSpec, city: int, count: int) -> None:
        # Heavy-tailed metro sprawl: most routers sit near the city
        # core, a minority in exurban facilities.  (A Gaussian kernel
        # leaves a scale gap between city spacing and city size that
        # depresses the box-counting dimension far below the ~1.5 the
        # paper confirms for real router placement.)
        jitter = self.config.pop_jitter_deg
        code = self.world.cities[city].code
        radius = np.minimum(jitter * (self.rng.pareto(1.2, size=count) + 0.3), 1.5)
        angle = self.rng.uniform(0.0, 2.0 * np.pi, size=count)
        lats = np.clip(
            self._city_lat[city] + radius * np.sin(angle), -89.9, 89.9
        )
        lons = np.clip(
            self._city_lon[city] + radius * np.cos(angle), -179.9, 179.9
        )
        ids = self.topology.add_routers(
            spec.asn, lats, lons, code, self._allocate_addresses(spec.asn, count)
        ).tolist()
        spec.router_ids.extend(ids)
        spec.routers_by_city.setdefault(city, []).extend(ids)
        self._router_zone.extend([int(self._city_zone[city])] * count)

    def _create_rural_routers(self, specs: list[_AsSpec]) -> None:
        """Place the rural fraction at population points, owned by incumbents."""
        n_rural = int(self.config.total_routers * self.config.rural_router_fraction)
        if n_rural <= 0:
            return
        field_ = self.world.field
        weights = field_.weights / field_.weights.sum()
        idx = self.rng.choice(field_.lats.size, size=n_rural, p=weights)
        incumbents = self._zone_incumbents(specs)
        lats = np.clip(
            field_.lats[idx] + self.rng.normal(0.0, 0.05, size=n_rural),
            -89.9, 89.9,
        )
        lons = np.clip(
            field_.lons[idx] + self.rng.normal(0.0, 0.05, size=n_rural),
            -179.9, 179.9,
        )
        zones = field_.zone_index[idx].astype(np.intp)
        # One batch per owning AS; router creation order is grouped by
        # zone rather than point order, which only permutes ids.
        for zone in np.unique(zones).tolist():
            sel = zones == zone
            spec = specs[incumbents[int(zone)]]
            count = int(sel.sum())
            ids = self.topology.add_routers(
                spec.asn, lats[sel], lons[sel], "",
                self._allocate_addresses(spec.asn, count),
            ).tolist()
            spec.router_ids.extend(ids)
            for point, rid in zip(idx[sel].tolist(), ids):
                spec.routers_by_city.setdefault(-1 - int(point), []).append(rid)
            self._router_zone.extend([int(zone)] * count)

    # -- stage 4: links --------------------------------------------------------

    def _add_link_checked(self, ra: int, rb: int) -> bool:
        """Add a link with fresh interface addresses; False on duplicates."""
        if ra == rb or self.topology.has_link(ra, rb):
            return False
        asn_a = int(self.topology.router_asns()[ra])
        asn_b = int(self.topology.router_asns()[rb])
        self.topology.add_link(
            ra, rb, self._allocate_address(asn_a), self._allocate_address(asn_b)
        )
        return True

    def _add_links_batch(self, pairs_a: list[int], pairs_b: list[int]) -> int:
        """Batch :meth:`_add_link_checked`: silently drops duplicates.

        Returns the number of links actually added.  Interface addresses
        are allocated grouped per AS (ascending ASN), a different draw
        order from the scalar path but the same allocator state.
        """
        if not pairs_a:
            return 0
        ra = np.asarray(pairs_a, dtype=np.intp)
        rb = np.asarray(pairs_b, dtype=np.intp)
        keep = ra != rb
        ra, rb = ra[keep], rb[keep]
        a = np.minimum(ra, rb)
        b = np.maximum(ra, rb)
        seen: set[tuple[int, int]] = set()
        selected: list[int] = []
        has_link = self.topology.has_link
        for i, pair in enumerate(zip(a.tolist(), b.tolist())):
            if pair in seen or has_link(*pair):
                continue
            seen.add(pair)
            selected.append(i)
        if not selected:
            return 0
        a = a[selected]
        b = b[selected]
        count = a.shape[0]
        r_asn = self.topology.router_asns()
        owner_asn = np.empty(2 * count, dtype=np.int64)
        owner_asn[0::2] = r_asn[a]
        owner_asn[1::2] = r_asn[b]
        addresses = np.empty(2 * count, dtype=np.int64)
        for asn in np.unique(owner_asn).tolist():
            sel = owner_asn == asn
            addresses[sel] = self._allocate_addresses(int(asn), int(sel.sum()))
        self.topology.add_links(a, b, addresses[0::2], addresses[1::2])
        return count

    def _intra_pop_links(self, spec: _AsSpec) -> None:
        pairs_a: list[int] = []
        pairs_b: list[int] = []
        for routers in spec.routers_by_city.values():
            pairs_a.extend(routers[:-1])
            pairs_b.extend(routers[1:])
            # A few redundant metro links in big PoPs.
            extra = len(routers) // 4
            for _ in range(extra):
                pair = self.rng.choice(len(routers), size=2, replace=False)
                pairs_a.append(routers[int(pair[0])])
                pairs_b.append(routers[int(pair[1])])
        self._add_links_batch(pairs_a, pairs_b)

    def _backbone_links(self, spec: _AsSpec) -> None:
        """Nearest-neighbour (Prim) tree over the AS's PoP gateways."""
        gateways = np.asarray(
            [routers[0] for routers in spec.routers_by_city.values()],
            dtype=np.intp,
        )
        k = gateways.shape[0]
        if k <= 1:
            return
        all_lats, all_lons = self.topology.router_coordinates()
        lats = all_lats[gateways]
        lons = all_lons[gateways]
        # Vectorised Prim: track the distance from each outside gateway
        # to its closest in-tree gateway, O(k) work per added edge.
        min_dist = haversine_miles(lats[0], lons[0], lats, lons)
        min_dist[0] = np.inf
        closest = np.zeros(k, dtype=np.intp)
        in_tree = np.zeros(k, dtype=bool)
        in_tree[0] = True
        pairs_a: list[int] = []
        pairs_b: list[int] = []
        for _ in range(k - 1):
            j = int(np.argmin(min_dist))
            pairs_a.append(int(gateways[j]))
            pairs_b.append(int(gateways[closest[j]]))
            in_tree[j] = True
            min_dist[j] = np.inf
            dists = haversine_miles(lats[j], lons[j], lats, lons)
            update = ~in_tree & (dists < min_dist)
            min_dist[update] = dists[update]
            closest[update] = j
        self._add_links_batch(pairs_a, pairs_b)

    def _waxman_extra_links(self, spec: _AsSpec, n_extra: int) -> None:
        """Distance-sampled (or occasionally long-range) intra-AS links."""
        members = np.array(spec.router_ids)
        if members.size < 3 or n_extra <= 0:
            return
        all_lats, all_lons = self.topology.router_coordinates()
        lats = all_lats[members]
        lons = all_lons[members]
        zones = [self._zone_names[self._router_zone[r]] for r in members]
        added = 0
        attempts = 0
        while added < n_extra and attempts < n_extra * 8:
            attempts += 1
            ui = int(self.rng.integers(members.size))
            if self.rng.random() < self.config.long_range_fraction:
                vi = int(self.rng.integers(members.size))
            else:
                scale = self._waxman_l_for_zone(zones[ui])
                dists = haversine_miles(lats[ui], lons[ui], lats, lons)
                weights = np.exp(-dists / scale)
                weights[ui] = 0.0
                total = weights.sum()
                if total <= 0:
                    continue
                vi = int(self.rng.choice(members.size, p=weights / total))
            if self._add_link_checked(int(members[ui]), int(members[vi])):
                added += 1

    def _intra_as_links(self, specs: list[_AsSpec]) -> None:
        cfg = self.config
        target_total = cfg.mean_links_per_router * self.topology.n_routers
        target_inter = cfg.interdomain_link_fraction * target_total
        for spec in specs:
            self._intra_pop_links(spec)
            self._backbone_links(spec)
        structural = self.topology.n_links
        extra_budget = max(0, int(target_total - target_inter - structural))
        sizes = np.array([max(len(s.router_ids), 1) for s in specs], dtype=float)
        weights = sizes**1.1
        allocation = self.rng.multinomial(extra_budget, weights / weights.sum())
        for spec, n_extra in zip(specs, allocation):
            self._waxman_extra_links(spec, int(n_extra))

    # -- stage 5: interdomain -----------------------------------------------

    def _as_graph_edges(self, specs: list[_AsSpec]) -> list[tuple[int, int]]:
        edges: set[tuple[int, int]] = set()

        def add(a: int, b: int) -> None:
            if a != b:
                edges.add((min(a, b), max(a, b)))

        tier1 = [i for i, s in enumerate(specs) if s.tier == 1]
        tier12 = [i for i, s in enumerate(specs) if s.tier in (1, 2)]
        # Backbone: deterministic chain for connectivity + dense mesh.
        for i in range(1, len(tier1)):
            add(tier1[i - 1], tier1[i])
        for i in tier1:
            for j in tier1:
                if i < j and self.rng.random() < 0.8:
                    add(i, j)
        sizes = np.array([s.target_size for s in specs], dtype=float)
        for si, spec in enumerate(specs):
            if spec.tier == 1:
                continue
            providers = tier1 if spec.tier == 2 else tier12
            candidates = [p for p in providers if p != si]
            home_lat = self._city_lat[spec.home_city]
            home_lon = self._city_lon[spec.home_city]
            prov_lat = self._city_lat[[specs[p].home_city for p in candidates]]
            prov_lon = self._city_lon[[specs[p].home_city for p in candidates]]
            dist = haversine_miles(home_lat, home_lon, prov_lat, prov_lon)
            weights = sizes[candidates] / (1.0 + dist / 1000.0)
            weights = weights / weights.sum()
            n_providers = 1 + int(self.rng.random() < 0.45)
            n_providers = min(n_providers, len(candidates))
            chosen = self.rng.choice(
                len(candidates), size=n_providers, replace=False, p=weights
            )
            for c in chosen:
                add(si, candidates[int(c)])
        # Tier-2 peering, geographically biased.
        tier2 = [i for i, s in enumerate(specs) if s.tier == 2]
        n_peerings = len(tier2)
        for _ in range(n_peerings):
            if len(tier2) < 2:
                break
            a, b = self.rng.choice(len(tier2), size=2, replace=False)
            add(tier2[int(a)], tier2[int(b)])
        return sorted(edges)

    def _realize_interdomain(self, specs: list[_AsSpec],
                             edges: list[tuple[int, int]]) -> None:
        cfg = self.config
        target_total = cfg.mean_links_per_router * self.topology.n_routers
        budget = max(len(edges), int(cfg.interdomain_link_fraction * target_total))
        # Every AS edge gets one physical link; extras go to repeat draws.
        queue = list(edges)
        extra = budget - len(edges)
        if extra > 0 and edges:
            picks = self.rng.integers(0, len(edges), size=extra)
            queue.extend(edges[int(p)] for p in picks)
        for a, b in queue:
            self._physical_interdomain_link(specs[a], specs[b])

    def _physical_interdomain_link(self, x: _AsSpec, y: _AsSpec) -> None:
        """Join a random PoP of x to y's nearest PoP (typical peering shape)."""
        x_cities = [c for c in x.routers_by_city if c >= 0]
        y_cities = [c for c in y.routers_by_city if c >= 0]
        if not x_cities or not y_cities:
            x_all = x.router_ids
            y_all = y.router_ids
            self._add_link_checked(
                int(x_all[int(self.rng.integers(len(x_all)))]),
                int(y_all[int(self.rng.integers(len(y_all)))]),
            )
            return
        weights = np.array([len(x.routers_by_city[c]) for c in x_cities], dtype=float)
        cx = x_cities[int(self.rng.choice(len(x_cities), p=weights / weights.sum()))]
        y_lat = self._city_lat[y_cities]
        y_lon = self._city_lon[y_cities]
        dists = haversine_miles(
            self._city_lat[cx], self._city_lon[cx], y_lat, y_lon
        )
        cy = y_cities[int(np.argmin(dists))]
        rx = x.routers_by_city[cx][int(self.rng.integers(len(x.routers_by_city[cx])))]
        ry = y.routers_by_city[cy][int(self.rng.integers(len(y.routers_by_city[cy])))]
        self._add_link_checked(rx, ry)

    # -- stage 6: rural attachment and hostnames --------------------------------

    def _attach_isolated(self, specs: list[_AsSpec]) -> None:
        """Connect any degree-0 router to its AS's nearest other router."""
        degrees = self.topology.degrees()
        all_lats, all_lons = self.topology.router_coordinates()
        for spec in specs:
            members = np.asarray(spec.router_ids, dtype=np.intp)
            if members.size < 2:
                continue
            if not np.any(degrees[members] == 0):
                continue
            lats = all_lats[members]
            lons = all_lons[members]
            for i, rid in enumerate(members.tolist()):
                if degrees[rid] > 0:
                    continue
                dists = haversine_miles(lats[i], lons[i], lats, lons)
                dists[i] = np.inf
                order = np.argsort(dists)
                for j in order[:5]:
                    other = int(members[int(j)])
                    if self._add_link_checked(rid, other):
                        degrees[rid] += 1
                        degrees[other] += 1
                        break

    def _connect_as_components(self, specs: list[_AsSpec]) -> None:
        """Ensure each AS's members form one connected component."""
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        for spec in specs:
            members = np.asarray(spec.router_ids, dtype=np.intp)
            if members.size < 2:
                continue
            # Induced intra-AS subgraph from the link columns.
            a, b = self.topology.link_endpoints()
            r_asn = self.topology.router_asns()
            sel = (r_asn[a] == spec.asn) & (r_asn[b] == spec.asn)
            sorted_members = np.sort(members)
            la = np.searchsorted(sorted_members, a[sel])
            lb = np.searchsorted(sorted_members, b[sel])
            graph = csr_matrix(
                (np.ones(la.shape[0], dtype=np.int8), (la, lb)),
                shape=(members.size, members.size),
            )
            n_components, labels = connected_components(graph, directed=False)
            if n_components <= 1:
                continue
            # First member (in creation order) of each component acts as
            # its representative, matching the old DFS discovery order.
            labels_in_order = labels[np.searchsorted(sorted_members, members)]
            representatives: dict[int, int] = {}
            for rid, label in zip(members.tolist(), labels_in_order.tolist()):
                representatives.setdefault(int(label), rid)
            base_label = int(labels_in_order[0])
            base = int(members[0])
            for label, rid in representatives.items():
                if label != base_label:
                    self._add_link_checked(base, rid)

    def _assign_hostnames(self, specs: list[_AsSpec]) -> None:
        # Naming discipline is a per-router property: an ISP either names
        # a router with its location code or it does not, consistently
        # across that router's interfaces.  (Per-interface draws would
        # make Mercator's majority-location vote tie far more often than
        # the paper's observed 2.5-2.9%.)
        topology = self.topology
        adherence_by_asn = {spec.asn: spec.adherence for spec in specs}
        r_asn = topology.router_asns()
        adherence = np.array(
            [adherence_by_asn[asn] for asn in r_asn.tolist()], dtype=np.float64
        )
        embed_by_router = self.rng.random(topology.n_routers) < adherence
        domain_by_asn = {asn: asys.domain for asn, asys in topology.asns.items()}
        city_by_router = topology.router_city_codes()
        i_addr = topology.interface_addresses()
        i_router = topology.interface_routers()
        owner_list = i_router.tolist()
        hostnames = make_hostname_batch(
            router_ids=i_router,
            city_codes=[city_by_router[r] for r in owner_list],
            domains=[domain_by_asn[a] for a in r_asn[i_router].tolist()],
            rng=self.rng,
            embed_location=embed_by_router[i_router],
        )
        topology.hostnames.update(zip(i_addr.tolist(), hostnames))

    # -- driver ------------------------------------------------------------------

    def generate(self) -> Topology:
        """Run all generation stages; returns the validated topology."""
        attraction = self._city_attractiveness()
        city_counts = self._city_router_counts(attraction)
        specs = self._make_as_specs(attraction)
        for spec in specs:
            self._choose_pop_cities(spec, attraction)
        for spec in specs:
            home = self.world.cities[spec.home_city]
            self.topology.add_as(
                AutonomousSystem(
                    asn=spec.asn,
                    name=spec.name,
                    headquarters=home.location,
                    hostname_adherence=spec.adherence,
                    tier=spec.tier,
                )
            )
        self._create_routers(specs, city_counts)
        self._create_rural_routers(specs)
        self._intra_as_links(specs)
        edges = self._as_graph_edges(specs)
        self._realize_interdomain(specs, edges)
        self._attach_isolated(specs)
        self._connect_as_components(specs)
        self._assign_hostnames(specs)
        self.topology.validate()
        if self.topology.n_links == 0:
            raise TopologyError("generation produced no links")
        inter = int(self.topology.link_interdomain().sum())
        self.report = GenerationReport(
            zone_router_budgets={
                z.name: int(b)
                for z, b in zip(self.world.zones, self._zone_budgets())
            },
            planted_alpha=dict(self.config.alpha),
            planted_waxman_l=dict(self.config.waxman_l_miles),
            n_routers=self.topology.n_routers,
            n_links=self.topology.n_links,
            n_interfaces=self.topology.n_interfaces,
            interdomain_fraction=inter / self.topology.n_links,
            as_sizes={
                spec.asn: len(spec.router_ids) for spec in specs
            },
        )
        return self.topology


def generate_ground_truth(
    world: World, config: GroundTruthConfig, rng: np.random.Generator
) -> tuple[Topology, AddressPlan, GenerationReport]:
    """Convenience wrapper: generate and return (topology, plan, report).

    The address plan is needed downstream to synthesise the BGP snapshot
    (the registry's prefix grants are what get announced).
    """
    generator = GroundTruthGenerator(world, config, rng)
    topology = generator.generate()
    assert generator.report is not None
    return topology, generator.plan, generator.report
