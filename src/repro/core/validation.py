"""Planted-vs-recovered validation.

The reproduction's central claim is a closed loop: the generator plants
geographic laws, the measurement/mapping pipeline distorts them, and the
paper's analyses recover them.  :func:`validate_recovery` runs that loop
for one pipeline result and reports, per law, the planted value, the
recovered value, and whether the recovery is within its expected band.
Benchmarks and notebooks can treat this as a one-call health check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.asgeo import as_size_measures, hull_areas, size_correlations
from repro.core.density import patch_regression, region_density_table
from repro.core.distance import (
    PAPER_BIN_MILES,
    preference_function,
    sensitivity_limit,
)
from repro.datasets.pipeline import PipelineResult
from repro.errors import AnalysisError
from repro.geo.regions import STUDY_REGIONS


@dataclass(frozen=True, slots=True)
class RecoveryCheck:
    """One planted-vs-recovered comparison.

    Attributes:
        law: short name of the planted property.
        planted: the generator's value (NaN when qualitative).
        recovered: the analysis estimate.
        ok: whether recovery lies within the expected band.
        note: what the band is / why it holds or fails.
    """

    law: str
    planted: float
    recovered: float
    ok: bool
    note: str


@dataclass(frozen=True)
class RecoveryReport:
    """All checks for one pipeline run."""

    checks: list[RecoveryCheck]

    @property
    def all_ok(self) -> bool:
        """True when every check passed."""
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        """Human-readable table."""
        lines = ["PLANTED vs RECOVERED", "-" * 78]
        lines.append(
            f"{'law':34s} {'planted':>9s} {'recovered':>10s} {'ok':>4s}  note"
        )
        for check in self.checks:
            planted = "-" if np.isnan(check.planted) else f"{check.planted:.3g}"
            lines.append(
                f"{check.law:34s} {planted:>9s} {check.recovered:>10.3g} "
                f"{'yes' if check.ok else 'NO':>4s}  {check.note}"
            )
        return "\n".join(lines)


def validate_recovery(
    result: PipelineResult, mapper: str = "IxMapper"
) -> RecoveryReport:
    """Run the full planted-vs-recovered comparison for one result."""
    dataset = result.dataset(mapper, "Skitter")
    planted_alpha = result.generation_report.planted_alpha
    planted_l = result.generation_report.planted_waxman_l
    checks: list[RecoveryCheck] = []

    # Density superlinearity per study region.
    region_to_zone = {"US": "USA", "Europe": "W. Europe", "Japan": "Japan"}
    for region in STUDY_REGIONS:
        zone = region_to_zone[region.name]
        try:
            slope = patch_regression(dataset, result.world.field, region).fit.slope
        except AnalysisError:
            continue
        checks.append(
            RecoveryCheck(
                law=f"density exponent ({region.name})",
                planted=planted_alpha[zone],
                recovered=slope,
                ok=slope > 1.0,
                note="superlinear (>1); sampling damps toward 1",
            )
        )

    # Waxman scale and sensitive fraction per region.
    for region in STUDY_REGIONS:
        zone = region_to_zone[region.name]
        try:
            pref = preference_function(
                dataset, region, PAPER_BIN_MILES[region.name]
            )
            limit = sensitivity_limit(pref)
        except AnalysisError:
            continue
        planted = planted_l[zone]
        recovered = limit.waxman.l_miles
        checks.append(
            RecoveryCheck(
                law=f"Waxman L miles ({region.name})",
                planted=planted,
                recovered=recovered,
                ok=planted / 3.0 < recovered < planted * 3.0,
                note="within x3 of plant",
            )
        )
        checks.append(
            RecoveryCheck(
                law=f"distance-sensitive share ({region.name})",
                planted=float("nan"),
                recovered=limit.fraction_below,
                ok=limit.fraction_below > 0.6,
                note="paper band 0.75-0.95",
            )
        )

    # Interdomain structure.
    inter = dataset.interdomain_mask()
    intra = dataset.intradomain_mask()
    if inter.any() and intra.any():
        lengths = dataset.link_lengths()
        share = intra.sum() / (inter.sum() + intra.sum())
        ratio = float(lengths[inter].mean() / lengths[intra].mean())
        checks.append(
            RecoveryCheck(
                law="intradomain link share",
                planted=1.0 - result.config.ground_truth.interdomain_link_fraction,
                recovered=float(share),
                ok=share > 0.7,
                note="paper: >= 0.83",
            )
        )
        checks.append(
            RecoveryCheck(
                law="inter/intra length ratio",
                planted=float("nan"),
                recovered=ratio,
                ok=ratio > 1.2,
                note="paper: ~2",
            )
        )

    # AS geography.
    try:
        table = as_size_measures(dataset)
        corr = size_correlations(table)
        hulls = hull_areas(dataset)
        checks.append(
            RecoveryCheck(
                law="corr(nodes, locations)",
                planted=float("nan"),
                recovered=corr.pearson_nodes_locations,
                ok=corr.pearson_nodes_locations > 0.5,
                note="strongest pair in the paper",
            )
        )
        checks.append(
            RecoveryCheck(
                law="zero-extent AS fraction",
                planted=float("nan"),
                recovered=hulls.zero_fraction,
                ok=0.4 < hulls.zero_fraction < 0.95,
                note="paper: ~0.8",
            )
        )
    except AnalysisError:
        pass

    # Table III contrast.
    rows = region_density_table(dataset, result.world.field)
    named = [r for r in rows if r.region != "World"]
    if len(named) >= 3:
        people = np.array([r.people_per_node for r in named])
        online = np.array([r.online_per_node for r in named])
        contrast = float(
            (people.max() / people.min()) / (online.max() / online.min())
        )
        checks.append(
            RecoveryCheck(
                law="people vs online variation ratio",
                planted=float("nan"),
                recovered=contrast,
                ok=contrast > 3.0,
                note="people/node varies far more than online/node",
            )
        )

    if not checks:
        raise AnalysisError("no recovery check could be computed")
    return RecoveryReport(checks=checks)
