"""Figure data export and terminal plots.

The paper's figures are gnuplot scatter/line plots.  This module turns
every figure's underlying data into:

* **series files** — whitespace-separated ``x y`` columns, one file per
  curve, loadable by gnuplot/matplotlib/numpy (the exchange format used
  around measurement papers of the era), and
* **ASCII plots** — dependency-free terminal renderings for quick looks
  and for the benchmark artefacts.

Rendering is deliberately minimal: a fixed-size character canvas,
linear or log axes, one mark per series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AnalysisError

if TYPE_CHECKING:
    from repro.core.asgeo import HullTable

_MARKS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One plottable curve.

    Attributes:
        name: legend label (also the export file stem).
        x, y: data points.
    """

    name: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape != self.y.shape or self.x.ndim != 1:
            raise AnalysisError(f"series {self.name!r}: x/y must be parallel 1-D")


@dataclass
class FigureData:
    """A figure: several series plus axis metadata.

    Attributes:
        title: figure title (paper figure number + caption fragment).
        xlabel, ylabel: axis labels.
        series: the curves.
        logx, logy: log-scale flags for the ASCII rendering.
    """

    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    logx: bool = False
    logy: bool = False

    def add(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        """Append one curve (non-finite points are dropped)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        keep = np.isfinite(x) & np.isfinite(y)
        self.series.append(Series(name=name, x=x[keep], y=y[keep]))

    # -- export ---------------------------------------------------------------

    def export(self, directory: str | Path) -> list[Path]:
        """Write one ``<stem>.dat`` file per series; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for series in self.series:
            stem = "".join(
                ch if ch.isalnum() else "_" for ch in series.name.lower()
            ).strip("_")
            path = directory / f"{stem}.dat"
            header = f"# {self.title}\n# {series.name}\n# {self.xlabel}\t{self.ylabel}\n"
            rows = "\n".join(
                f"{x:.10g}\t{y:.10g}" for x, y in zip(series.x, series.y)
            )
            path.write_text(header + rows + "\n", encoding="utf-8")
            paths.append(path)
        return paths

    # -- ASCII rendering --------------------------------------------------------

    def _transform(self, values: np.ndarray, log: bool) -> np.ndarray:
        if not log:
            return values
        positive = values > 0
        out = np.full(values.shape, np.nan)
        out[positive] = np.log10(values[positive])
        return out

    def render(self, width: int = 72, height: int = 20) -> str:
        """Render the figure as ASCII art.

        Raises:
            AnalysisError: if no series holds any plottable point.
        """
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        for series in self.series:
            tx = self._transform(series.x, self.logx)
            ty = self._transform(series.y, self.logy)
            keep = np.isfinite(tx) & np.isfinite(ty)
            xs.append(tx[keep])
            ys.append(ty[keep])
        all_x = np.concatenate(xs) if xs else np.empty(0)
        all_y = np.concatenate(ys) if ys else np.empty(0)
        if all_x.size == 0:
            raise AnalysisError(f"figure {self.title!r} has no plottable data")
        x_min, x_max = float(all_x.min()), float(all_x.max())
        y_min, y_max = float(all_y.min()), float(all_y.max())
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0

        canvas = [[" "] * width for _ in range(height)]
        for si, (tx, ty) in enumerate(zip(xs, ys)):
            mark = _MARKS[si % len(_MARKS)]
            cols = ((tx - x_min) / x_span * (width - 1)).astype(int)
            rows = ((ty - y_min) / y_span * (height - 1)).astype(int)
            for c, r in zip(cols, rows):
                canvas[height - 1 - r][c] = mark

        x_tag = f"log10({self.xlabel})" if self.logx else self.xlabel
        y_tag = f"log10({self.ylabel})" if self.logy else self.ylabel
        lines = [self.title, ""]
        lines.append(f"{y_max:10.3g} +" + "-" * width + "+")
        for row in canvas:
            lines.append(" " * 11 + "|" + "".join(row) + "|")
        lines.append(f"{y_min:10.3g} +" + "-" * width + "+")
        lines.append(
            " " * 12 + f"{x_min:<12.3g}{x_tag:^{max(width - 24, 1)}}{x_max:>12.3g}"
        )
        legend = "   ".join(
            f"{_MARKS[i % len(_MARKS)]} {s.name}" for i, s in enumerate(self.series)
        )
        lines.append(" " * 12 + f"y: {y_tag}")
        lines.append(" " * 12 + legend)
        return "\n".join(lines)


# -- builders for the paper's figures ---------------------------------------------


def figure2_data(panels) -> list[FigureData]:
    """Figure 2 panels as log-log scatter + fitted-line figures."""
    figures = []
    for (measurement, region), panel in sorted(panels.items()):
        fig = FigureData(
            title=f"Figure 2 ({measurement}, {region}): node vs population density",
            xlabel="population per patch",
            ylabel="nodes per patch",
            logx=True,
            logy=True,
        )
        log_pop, log_nodes = panel.loglog_points()
        fig.add("patches", 10**log_pop, 10**log_nodes)
        line_x = np.linspace(log_pop.min(), log_pop.max(), 30)
        fig.add("fit", 10**line_x, 10 ** panel.fit.predict(line_x))
        figures.append(fig)
    return figures


def figure4_data(panels) -> list[FigureData]:
    """Figure 4 panels: f_hat(d) against distance."""
    figures = []
    for (measurement, region), pref in sorted(panels.items()):
        fig = FigureData(
            title=f"Figure 4 ({measurement}, {region}): distance preference",
            xlabel="d (miles)",
            ylabel="f(d) estimate",
        )
        usable = pref.valid_bins()
        fig.add("f(d)", pref.bin_left[usable], np.nan_to_num(pref.f_hat[usable]))
        figures.append(fig)
    return figures


def figure5_data(panels, fits) -> list[FigureData]:
    """Figure 5 panels: ln f(d) vs d with the exponential fit line."""
    figures = []
    for key, fit in sorted(fits.items()):
        measurement, region = key
        pref = panels[key]
        fig = FigureData(
            title=f"Figure 5 ({measurement}, {region}): small-d semi-log",
            xlabel="d (miles)",
            ylabel="ln f(d)",
        )
        window = (
            (pref.bin_left < fit.small_d_max)
            & (pref.pair_counts > 0)
            & (pref.link_counts > 0)
        )
        x = pref.bin_left[window] + pref.bin_miles / 2.0
        fig.add("ln f(d)", x, np.log(pref.f_hat[window]))
        fig.add("fit", x, np.asarray(fit.fit.predict(x)))
        figures.append(fig)
    return figures


def figure7_data(distributions) -> FigureData:
    """Figure 7: the three AS-size CCDFs on one log-log figure."""
    fig = FigureData(
        title="Figure 7: CCDFs of AS size measures",
        xlabel="size",
        ylabel="P[X > x]",
        logx=False,
        logy=False,
    )
    for name, (lx, ly) in (
        ("interfaces", distributions.nodes_ccdf),
        ("locations", distributions.locations_ccdf),
        ("degree", distributions.degree_ccdf),
    ):
        fig.add(name, lx, ly)
    fig.xlabel = "log10(size)"
    fig.ylabel = "log10 P[X > x]"
    return fig


def figure9_data(hull_tables: dict[str, "HullTable"]) -> list[FigureData]:
    """Figure 9: hull-area CDFs, one figure per region."""
    figures = []
    for name, hulls in hull_tables.items():
        fig = FigureData(
            title=f"Figure 9 ({name}): CDF of AS convex hull area",
            xlabel="hull area (sq mi)",
            ylabel="P[X <= x]",
        )
        areas, p = hulls.cdf_points()
        fig.add("cdf", areas, p)
        figures.append(fig)
    return figures
