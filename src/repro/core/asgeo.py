"""Section VI: autonomous systems and geography.

Four analyses:

* :func:`as_size_measures` — per-AS size triple: node count (interfaces
  or routers), number of distinct locations, and degree in the AS graph.
* :func:`size_distributions` / :func:`size_correlations` — Figures 7-8:
  all three measures are long-tailed and pairwise correlated, with
  interfaces-vs-locations the tightest pair.
* :func:`hull_areas` / :func:`hull_summary` — Figures 9-10: convex-hull
  area of each AS's node set under the Albers equal-area projection;
  ~80% of ASes have zero extent, small ASes vary wildly, and every AS
  beyond a size cutoff is maximally dispersed.
* :func:`link_domain_table` — Table VI: intradomain links are the large
  majority and about half as long as interdomain links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import (
    ccdf_loglog_points,
    pearson_correlation,
    spearman_correlation,
    tail_span_decades,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.hull import convex_hull_area
from repro.geo.projection import WORLD_ALBERS, AlbersEqualArea
from repro.geo.regions import Region


@dataclass(frozen=True)
class AsSizeTable:
    """Per-AS size measures, in parallel arrays.

    Attributes:
        asns: AS numbers.
        n_nodes: mapped nodes per AS.
        n_locations: distinct rounded locations per AS.
        degree: AS-graph degree per AS.
    """

    asns: np.ndarray
    n_nodes: np.ndarray
    n_locations: np.ndarray
    degree: np.ndarray

    @property
    def n_ases(self) -> int:
        """Number of ASes in the table."""
        return int(self.asns.shape[0])


def as_size_measures(dataset: MappedDataset) -> AsSizeTable:
    """Compute the three AS size measures from a dataset.

    The unmapped sentinel group is omitted, as in the paper.

    Raises:
        AnalysisError: when the dataset maps no AS at all.
    """
    asns = dataset.known_asns()
    if asns.size == 0:
        raise AnalysisError("dataset contains no AS-mapped nodes")
    counts = dataset.as_node_counts()
    degrees = dataset.as_degrees()
    keys = dataset.location_keys()
    n_nodes = np.zeros(asns.size, dtype=np.int64)
    n_locations = np.zeros(asns.size, dtype=np.int64)
    degree = np.zeros(asns.size, dtype=np.int64)
    for i, asn in enumerate(asns):
        nodes = dataset.nodes_of_as(int(asn))
        n_nodes[i] = counts[int(asn)]
        n_locations[i] = np.unique(keys[nodes], axis=0).shape[0]
        degree[i] = degrees.get(int(asn), 0)
    return AsSizeTable(
        asns=asns, n_nodes=n_nodes, n_locations=n_locations, degree=degree
    )


@dataclass(frozen=True)
class SizeDistributions:
    """Figure 7: CCDFs (log-log points) of the three size measures.

    Attributes:
        nodes_ccdf: (log10 value, log10 P[X > value]) for node counts.
        locations_ccdf: same for location counts.
        degree_ccdf: same for AS degree.
        decades: decades spanned by each measure (long-tail summary).
    """

    nodes_ccdf: tuple[np.ndarray, np.ndarray]
    locations_ccdf: tuple[np.ndarray, np.ndarray]
    degree_ccdf: tuple[np.ndarray, np.ndarray]
    decades: dict[str, float]


def size_distributions(table: AsSizeTable) -> SizeDistributions:
    """Figure 7's three complementary distributions."""
    return SizeDistributions(
        nodes_ccdf=ccdf_loglog_points(table.n_nodes),
        locations_ccdf=ccdf_loglog_points(table.n_locations),
        degree_ccdf=ccdf_loglog_points(table.degree),
        decades={
            "nodes": tail_span_decades(table.n_nodes),
            "locations": tail_span_decades(table.n_locations),
            "degree": tail_span_decades(table.degree),
        },
    )


@dataclass(frozen=True)
class SizeCorrelations:
    """Figure 8: pairwise association of the three size measures.

    Pearson correlations are computed on log10 values over ASes where
    both measures are positive; Spearman over all ASes.
    """

    pearson_nodes_locations: float
    pearson_nodes_degree: float
    pearson_locations_degree: float
    spearman_nodes_locations: float
    spearman_nodes_degree: float
    spearman_locations_degree: float


def _log_pearson(x: np.ndarray, y: np.ndarray) -> float:
    keep = (x > 0) & (y > 0)
    if int(keep.sum()) < 3:
        raise AnalysisError("not enough positive pairs for a log correlation")
    return pearson_correlation(np.log10(x[keep]), np.log10(y[keep]))


def size_correlations(table: AsSizeTable) -> SizeCorrelations:
    """Figure 8's correlation summary.

    Raises:
        AnalysisError: when too few ASes have positive measures.
    """
    return SizeCorrelations(
        pearson_nodes_locations=_log_pearson(table.n_nodes, table.n_locations),
        pearson_nodes_degree=_log_pearson(table.n_nodes, table.degree),
        pearson_locations_degree=_log_pearson(table.n_locations, table.degree),
        spearman_nodes_locations=spearman_correlation(
            table.n_nodes.astype(float), table.n_locations.astype(float)
        ),
        spearman_nodes_degree=spearman_correlation(
            table.n_nodes.astype(float), table.degree.astype(float)
        ),
        spearman_locations_degree=spearman_correlation(
            table.n_locations.astype(float), table.degree.astype(float)
        ),
    )


@dataclass(frozen=True)
class HullTable:
    """Per-AS convex hull areas (square miles), parallel to a size table.

    Attributes:
        asns: AS numbers.
        areas: hull area per AS under the Albers projection.
        zero_fraction: fraction of ASes with zero extent (Figure 9 shows
            ~80%).
    """

    asns: np.ndarray
    areas: np.ndarray

    @property
    def zero_fraction(self) -> float:
        """Fraction of ASes with zero hull area."""
        if self.areas.size == 0:
            return 0.0
        return float(np.mean(self.areas == 0.0))

    def cdf_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(area, P[X <= area]) for CDF plots (Figure 9)."""
        order = np.sort(self.areas)
        p = np.arange(1, order.size + 1) / order.size
        return order, p


def hull_areas(
    dataset: MappedDataset,
    region: Region | None = None,
    projection: AlbersEqualArea = WORLD_ALBERS,
) -> HullTable:
    """Convex-hull area of every AS's node set (Figure 9 input).

    When ``region`` is given the dataset is first restricted to it, as in
    the paper's US/Europe panels.

    Raises:
        AnalysisError: when no AS-mapped nodes remain.
    """
    if region is not None:
        dataset = dataset.restrict(region)
    asns = dataset.known_asns()
    if asns.size == 0:
        raise AnalysisError("no AS-mapped nodes for hull analysis")
    x, y = projection.project(dataset.lats, dataset.lons)
    areas = np.zeros(asns.size)
    for i, asn in enumerate(asns):
        nodes = dataset.nodes_of_as(int(asn))
        points = np.column_stack([x[nodes], y[nodes]])
        areas[i] = convex_hull_area(points)
    return HullTable(asns=asns, areas=areas)


@dataclass(frozen=True)
class DispersalSummary:
    """Figure 10: hull area against a size measure, with the cutoff check.

    Attributes:
        size_measure: which measure (e.g. "nodes").
        sizes: per-AS size values (parallel to areas).
        areas: per-AS hull areas.
        cutoff: size threshold tested.
        min_area_above_cutoff: smallest hull among ASes above the cutoff.
        max_area: largest hull overall (the "maximally dispersed" level).
        dispersal_ratio: min_area_above_cutoff / max_area (close to 1
            means every large AS is maximally dispersed).
    """

    size_measure: str
    sizes: np.ndarray
    areas: np.ndarray
    cutoff: float
    min_area_above_cutoff: float
    max_area: float

    @property
    def dispersal_ratio(self) -> float:
        """How dispersed the least-dispersed large AS is, relative to max."""
        if self.max_area <= 0:
            return 0.0
        return self.min_area_above_cutoff / self.max_area


def hull_vs_size(
    table: AsSizeTable,
    hulls: HullTable,
    size_measure: str = "nodes",
    cutoff: float | None = None,
) -> DispersalSummary:
    """Figure 10: relate hull area to a size measure.

    Default cutoffs follow the paper: degree 100, locations 100,
    nodes 1000.

    Raises:
        AnalysisError: on unknown measure or misaligned tables.
    """
    if not np.array_equal(table.asns, hulls.asns):
        raise AnalysisError("size table and hull table cover different ASes")
    measures = {
        "nodes": (table.n_nodes, 1000.0),
        "locations": (table.n_locations, 100.0),
        "degree": (table.degree, 100.0),
    }
    if size_measure not in measures:
        raise AnalysisError(f"unknown size measure {size_measure!r}")
    sizes, default_cutoff = measures[size_measure]
    if cutoff is None:
        cutoff = default_cutoff
    above = sizes >= cutoff
    max_area = float(hulls.areas.max()) if hulls.areas.size else 0.0
    min_above = float(hulls.areas[above].min()) if above.any() else 0.0
    return DispersalSummary(
        size_measure=size_measure,
        sizes=sizes.astype(float),
        areas=hulls.areas,
        cutoff=float(cutoff),
        min_area_above_cutoff=min_above,
        max_area=max_area,
    )


@dataclass(frozen=True, slots=True)
class LinkDomainRow:
    """One Table VI row.

    Attributes:
        region: region name.
        n_interdomain: interdomain link count.
        mean_interdomain_miles: their mean length.
        n_intradomain: intradomain link count.
        mean_intradomain_miles: their mean length.
    """

    region: str
    n_interdomain: int
    mean_interdomain_miles: float
    n_intradomain: int
    mean_intradomain_miles: float

    @property
    def intradomain_fraction(self) -> float:
        """Share of classified links that stay inside one AS."""
        total = self.n_interdomain + self.n_intradomain
        return self.n_intradomain / total if total else 0.0


def link_domain_row(dataset: MappedDataset, region_name: str) -> LinkDomainRow:
    """Inter/intradomain counts and mean lengths for one (sub)dataset.

    Raises:
        AnalysisError: when the dataset has no classifiable links.
    """
    inter = dataset.interdomain_mask()
    intra = dataset.intradomain_mask()
    if not inter.any() and not intra.any():
        raise AnalysisError(f"no classifiable links in {region_name!r}")
    lengths = dataset.link_lengths()
    return LinkDomainRow(
        region=region_name,
        n_interdomain=int(inter.sum()),
        mean_interdomain_miles=float(lengths[inter].mean()) if inter.any() else 0.0,
        n_intradomain=int(intra.sum()),
        mean_intradomain_miles=float(lengths[intra].mean()) if intra.any() else 0.0,
    )


def link_domain_table(
    dataset: MappedDataset, regions: tuple[Region, ...]
) -> list[LinkDomainRow]:
    """Table VI: a world row followed by one row per region."""
    rows = [link_domain_row(dataset, "World")]
    for region in regions:
        try:
            rows.append(link_domain_row(dataset.restrict(region), region.name))
        except AnalysisError:
            continue
    return rows
