"""Topological statistics of measured and generated graphs.

Section II of the paper recounts the debate between geometry-based
generators (Waxman) and connectivity-based ones (Barabasi-Albert, Inet,
BRITE degree modes) judged on "graph connectivity properties, such as
node degree distributions".  This module computes those properties —
degree CCDFs, clustering, path lengths, component structure — for any
:class:`~repro.datasets.mapped.MappedDataset` or generated graph, so
experiments can judge generators on *both* axes: geography (f(d)) and
connectivity (these statistics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.core.stats import ccdf_loglog_points, least_squares_fit
from repro.errors import AnalysisError


@dataclass(frozen=True)
class GraphStatistics:
    """Connectivity summary of an undirected graph.

    Attributes:
        n_nodes, n_edges: sizes.
        mean_degree: average degree.
        max_degree: largest degree.
        degree_ccdf_slope: slope of the log-log degree CCDF (more
            negative = lighter tail; power-law graphs show shallow
            straight lines).
        clustering: average local clustering coefficient over a node
            sample.
        mean_path_length: mean shortest-path hop count over sampled
            pairs inside the giant component.
        giant_component_fraction: share of nodes in the largest
            component.
    """

    n_nodes: int
    n_edges: int
    mean_degree: float
    max_degree: int
    degree_ccdf_slope: float
    clustering: float
    mean_path_length: float
    giant_component_fraction: float


def _adjacency(n: int, edges: np.ndarray) -> sparse.csr_matrix:
    if edges.size == 0:
        return sparse.csr_matrix((n, n))
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    data = np.ones(rows.shape[0])
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    matrix.data[:] = 1.0  # collapse parallel edges
    return matrix


def degree_ccdf_slope(degrees: np.ndarray) -> float:
    """Slope of the degree CCDF on log-log axes.

    Raises:
        AnalysisError: when fewer than 3 distinct positive degrees exist.
    """
    lx, ly = ccdf_loglog_points(degrees.astype(float))
    if lx.size < 3:
        raise AnalysisError("not enough distinct degrees for a CCDF slope")
    return least_squares_fit(lx, ly).slope


def clustering_coefficient(
    adjacency: sparse.csr_matrix,
    rng: np.random.Generator,
    sample: int = 400,
) -> float:
    """Average local clustering over a random node sample."""
    n = adjacency.shape[0]
    indices = adjacency.indices
    indptr = adjacency.indptr
    nodes = (
        rng.choice(n, size=min(sample, n), replace=False) if n else np.empty(0)
    )
    coefficients = []
    neighbor_sets = {}
    for node in nodes:
        neighbors = indices[indptr[node] : indptr[node + 1]]
        k = neighbors.shape[0]
        if k < 2:
            continue
        neighbor_set = set(neighbors.tolist())
        neighbor_sets[node] = neighbor_set
        links = 0
        for v in neighbors:
            seconds = indices[indptr[v] : indptr[v + 1]]
            links += sum(1 for w in seconds if w in neighbor_set and w > v)
        coefficients.append(2.0 * links / (k * (k - 1)))
    return float(np.mean(coefficients)) if coefficients else 0.0


def mean_path_length(
    adjacency: sparse.csr_matrix,
    rng: np.random.Generator,
    n_sources: int = 12,
) -> float:
    """Mean finite shortest-path hop count from sampled sources."""
    n = adjacency.shape[0]
    if n < 2:
        return 0.0
    n_components, labels = connected_components(adjacency, directed=False)
    counts = np.bincount(labels)
    giant = int(np.argmax(counts))
    members = np.flatnonzero(labels == giant)
    if members.size < 2:
        return 0.0
    sources = rng.choice(members, size=min(n_sources, members.size), replace=False)
    unweighted = adjacency.copy()
    unweighted.data[:] = 1.0
    distances = dijkstra(unweighted, directed=False, indices=sources)
    finite = distances[np.isfinite(distances) & (distances > 0)]
    return float(finite.mean()) if finite.size else 0.0


def graph_statistics(
    n_nodes: int,
    edges: np.ndarray,
    rng: np.random.Generator | None = None,
) -> GraphStatistics:
    """Compute the full connectivity summary.

    Raises:
        AnalysisError: for an empty graph.
    """
    if n_nodes < 2:
        raise AnalysisError("need at least 2 nodes")
    rng = rng or np.random.default_rng(0)
    adjacency = _adjacency(n_nodes, edges)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel().astype(int)
    try:
        ccdf_slope = degree_ccdf_slope(degrees)
    except AnalysisError:
        ccdf_slope = float("nan")
    n_components, labels = connected_components(adjacency, directed=False)
    giant = float(np.bincount(labels).max() / n_nodes)
    return GraphStatistics(
        n_nodes=n_nodes,
        n_edges=int(adjacency.nnz // 2),
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        degree_ccdf_slope=ccdf_slope,
        clustering=clustering_coefficient(adjacency, rng),
        mean_path_length=mean_path_length(adjacency, rng),
        giant_component_fraction=giant,
    )


def dataset_statistics(dataset, rng: np.random.Generator | None = None):
    """Connectivity summary of a mapped dataset's observed graph."""
    return graph_statistics(dataset.n_nodes, dataset.links, rng)


def generated_statistics(graph, rng: np.random.Generator | None = None):
    """Connectivity summary of a generated graph."""
    return graph_statistics(graph.n_nodes, graph.edges, rng)
