"""Section IV: routers/interfaces vs population.

Three analyses:

* :func:`region_density_table` — the paper's Table III: population,
  node count, people per node, online users, online users per node, for
  each economic region.  The planted contrast is a factor > 100 in
  people-per-node against only a small factor in online-per-node.
* :func:`homogeneity_table` — Table IV: splitting the US in half gives
  similar people-per-interface; Central America is dramatically
  different.
* :func:`patch_regression` — Figure 2: tally population and nodes over
  75'x75' patches and fit a log-log least-squares line; the slope is the
  superlinearity exponent (paper: 1.2-1.75).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import LinearFit, loglog_fit
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.grid import PAPER_PATCH_ARCMIN, PatchGrid
from repro.geo.regions import ECONOMIC_REGIONS, HOMOGENEITY_REGIONS, Region
from repro.population.worldmodel import PopulationField


@dataclass(frozen=True, slots=True)
class RegionDensityRow:
    """One row of Table III / Table IV.

    Attributes:
        region: region name.
        population_millions: persons in the region (millions).
        n_nodes: mapped nodes (interfaces or routers) in the region.
        people_per_node: population / nodes.
        online_millions: online users in the region (millions).
        online_per_node: online users / nodes.
    """

    region: str
    population_millions: float
    n_nodes: int
    people_per_node: float
    online_millions: float
    online_per_node: float


def region_density_row(
    dataset: MappedDataset, field: PopulationField, region: Region
) -> RegionDensityRow:
    """Compute one region's density statistics.

    Raises:
        AnalysisError: when the region contains no mapped nodes (the
            ratio would be undefined).
    """
    population = field.region_population(region)
    online = field.region_online(region)
    n_nodes = int(region.contains_mask(dataset.lats, dataset.lons).sum())
    if n_nodes == 0:
        raise AnalysisError(f"no mapped nodes inside region {region.name!r}")
    return RegionDensityRow(
        region=region.name,
        population_millions=population / 1e6,
        n_nodes=n_nodes,
        people_per_node=population / n_nodes,
        online_millions=online / 1e6,
        online_per_node=online / n_nodes,
    )


def region_density_table(
    dataset: MappedDataset,
    field: PopulationField,
    regions: tuple[Region, ...] = ECONOMIC_REGIONS,
) -> list[RegionDensityRow]:
    """Table III: density rows for the economic regions (skips empty ones)."""
    rows = []
    for region in regions:
        try:
            rows.append(region_density_row(dataset, field, region))
        except AnalysisError:
            continue
    if not rows:
        raise AnalysisError("no region contained any mapped nodes")
    return rows


def homogeneity_table(
    dataset: MappedDataset, field: PopulationField
) -> list[RegionDensityRow]:
    """Table IV: the US-halves vs Central America homogeneity test."""
    return region_density_table(dataset, field, HOMOGENEITY_REGIONS)


def density_variation(rows: list[RegionDensityRow]) -> tuple[float, float]:
    """(max/min people-per-node, max/min online-per-node) across rows.

    The paper's headline Table III observation is the contrast between
    these two ratios (>100 vs ~4).
    """
    if not rows:
        raise AnalysisError("no rows to compare")
    people = np.array([r.people_per_node for r in rows])
    online = np.array([r.online_per_node for r in rows])
    return float(people.max() / people.min()), float(online.max() / online.min())


@dataclass(frozen=True)
class PatchRegression:
    """One Figure 2 panel: per-patch densities and the fitted line.

    Attributes:
        region: region name.
        population: persons per patch (only patches with both counts > 0
            contribute to the fit, but all are kept here).
        nodes: mapped nodes per patch.
        fit: least-squares line on log10/log10 axes; ``fit.slope`` is the
            superlinearity exponent.
    """

    region: str
    population: np.ndarray
    nodes: np.ndarray
    fit: LinearFit

    def loglog_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(log10 population, log10 nodes) for patches with both > 0."""
        keep = (self.population > 0) & (self.nodes > 0)
        return np.log10(self.population[keep]), np.log10(self.nodes[keep])


def patch_regression(
    dataset: MappedDataset,
    field: PopulationField,
    region: Region,
    cell_arcmin: float = PAPER_PATCH_ARCMIN,
) -> PatchRegression:
    """Figure 2: node count vs population per patch, with log-log fit.

    Raises:
        AnalysisError: if fewer than 2 patches have both population and
            nodes (no fit possible).
    """
    grid = PatchGrid(region=region, cell_arcmin=cell_arcmin)
    population = grid.tally(field.lats, field.lons, weights=field.weights)
    nodes = grid.tally(dataset.lats, dataset.lons)
    fit = loglog_fit(population, nodes)
    return PatchRegression(
        region=region.name, population=population, nodes=nodes, fit=fit
    )
