"""Statistical primitives shared by every analysis in the paper.

All of the paper's quantitative claims rest on a handful of estimators:
ordinary least squares lines (on raw, semi-log, or log-log axes),
empirical CDF/CCDF curves, histogram binning, and correlation
coefficients.  They are implemented once here, with small typed result
objects, so each analysis module reads like the corresponding section of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class LinearFit:
    """An ordinary least squares line ``y = slope * x + intercept``.

    Attributes:
        slope: fitted slope.
        intercept: fitted intercept.
        r_squared: coefficient of determination of the fit.
        n: number of points fitted.
    """

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    def equation(self, x_name: str = "x") -> str:
        """Human-readable ``y = ax+b`` string, as printed on paper plots."""
        sign = "-" if self.intercept < 0 else "+"
        return f"y = {self.slope:.3g}{x_name} {sign} {abs(self.intercept):.3g}"


def least_squares_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Fit ``y = a x + b`` by ordinary least squares.

    Raises:
        AnalysisError: if fewer than 2 points, mismatched shapes, zero
            variance in x, or non-finite values.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("x and y must be equal-length 1-D arrays")
    if x.size < 2:
        raise AnalysisError(f"need at least 2 points to fit a line, got {x.size}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise AnalysisError("fit inputs must be finite")
    x_mean = x.mean()
    y_mean = y.mean()
    sxx = float(np.sum((x - x_mean) ** 2))
    if sxx <= 0.0:
        raise AnalysisError("x has zero variance; slope is undefined")
    sxy = float(np.sum((x - x_mean) * (y - y_mean)))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    residual = y - (slope * x + intercept)
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((y - y_mean) ** 2))
    r_squared = 1.0 if ss_tot <= 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=x.size)


def loglog_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """OLS fit of ``log10(y)`` against ``log10(x)``.

    Non-positive entries in either array are dropped (a patch with zero
    routers contributes no point, exactly as on the paper's log-log
    scatter plots).

    Raises:
        AnalysisError: if fewer than 2 positive pairs remain.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("x and y must be equal-length 1-D arrays")
    keep = (x > 0) & (y > 0) & np.isfinite(x) & np.isfinite(y)
    if int(keep.sum()) < 2:
        raise AnalysisError("need at least 2 strictly positive pairs")
    return least_squares_fit(np.log10(x[keep]), np.log10(y[keep]))


def semilog_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """OLS fit of ``ln(y)`` against ``x`` (exponential-decay detection).

    Non-positive ``y`` entries are dropped.  The paper uses this form in
    Figure 5 to read off the Waxman decay constant.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("x and y must be equal-length 1-D arrays")
    keep = (y > 0) & np.isfinite(x) & np.isfinite(y)
    if int(keep.sum()) < 2:
        raise AnalysisError("need at least 2 pairs with positive y")
    return least_squares_fit(x[keep], np.log(y[keep]))


@dataclass(frozen=True, slots=True)
class EmpiricalDistribution:
    """An empirical distribution over sorted support values.

    Attributes:
        values: sorted distinct sample values.
        cdf: ``P[X <= value]`` at each value.
        ccdf: ``P[X > value]`` at each value.
        n: sample count.
    """

    values: np.ndarray
    cdf: np.ndarray
    ccdf: np.ndarray
    n: int


def empirical_distribution(samples: np.ndarray) -> EmpiricalDistribution:
    """Empirical CDF/CCDF of a 1-D sample.

    Raises:
        AnalysisError: on empty or non-finite input.
    """
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size == 0:
        raise AnalysisError("cannot build a distribution from no samples")
    if not np.all(np.isfinite(samples)):
        raise AnalysisError("samples must be finite")
    values, counts = np.unique(samples, return_counts=True)
    cum = np.cumsum(counts)
    n = samples.size
    cdf = cum / n
    ccdf = 1.0 - cdf
    return EmpiricalDistribution(values=values, cdf=cdf, ccdf=ccdf, n=n)


def ccdf_loglog_points(
    samples: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``(log10 value, log10 P[X > value])`` pairs for long-tail plots.

    Zero-probability tail points and non-positive values are dropped,
    matching the paper's Figure 7 axes (log10 of size vs log10 CCDF).
    """
    dist = empirical_distribution(samples)
    keep = (dist.values > 0) & (dist.ccdf > 0)
    return np.log10(dist.values[keep]), np.log10(dist.ccdf[keep])


def tail_span_decades(samples: np.ndarray) -> float:
    """Number of decades spanned by the positive sample values.

    A quick long-tail summary used by the acceptance tests: the paper's
    AS size distributions span several orders of magnitude.
    """
    samples = np.asarray(samples, dtype=float)
    positive = samples[samples > 0]
    if positive.size == 0:
        return 0.0
    return float(np.log10(positive.max()) - np.log10(positive.min()))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Raises:
        AnalysisError: if inputs are unusable or either side is constant.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise AnalysisError("need two equal-length 1-D arrays of >= 2 samples")
    xd = x - x.mean()
    yd = y - y.mean()
    denom = float(np.sqrt(np.sum(xd**2) * np.sum(yd**2)))
    if denom <= 0.0:
        raise AnalysisError("correlation undefined for constant input")
    return float(np.sum(xd * yd) / denom)


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (Pearson on midranks)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    return pearson_correlation(_midranks(x), _midranks(y))


def _midranks(values: np.ndarray) -> np.ndarray:
    """Midranks (ties get the average of their rank range)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


@dataclass(frozen=True, slots=True)
class BinnedSeries:
    """Values aggregated into fixed-width bins over ``[0, n_bins * width)``.

    Attributes:
        bin_left: left edge of each bin.
        values: aggregated value per bin.
        width: bin width.
    """

    bin_left: np.ndarray
    values: np.ndarray
    width: float


def bin_counts(samples: np.ndarray, width: float, n_bins: int) -> BinnedSeries:
    """Count samples per fixed-width bin starting at zero.

    Samples at or beyond ``n_bins * width`` are discarded (the paper
    omits the noisy largest distances from its plots).

    Raises:
        AnalysisError: on non-positive width or bin count.
    """
    if width <= 0 or n_bins <= 0:
        raise AnalysisError("width and n_bins must be positive")
    samples = np.asarray(samples, dtype=float)
    idx = np.floor(samples / width).astype(np.int64)
    keep = (idx >= 0) & (idx < n_bins)
    counts = np.bincount(idx[keep], minlength=n_bins).astype(float)
    left = np.arange(n_bins, dtype=float) * width
    return BinnedSeries(bin_left=left, values=counts, width=float(width))
