"""Section V: links and distance — the distance preference function.

The empirical distance preference function is

    f_hat(d) = (# links with length in [d, d+b)) /
               (# node pairs with distance in [d, d+b))

estimated over 100 bins per region (paper bin sizes: 35 mi US, 15 mi
Europe, 11 mi Japan).  Its small-``d`` portion is exponentially
decaying — a Waxman form ``beta * exp(-d / L)`` whose scale ``L`` we
recover by a semi-log fit (Figure 5) — while its large-``d`` portion is
flat, verified through the cumulated function ``F(d)`` being linear
(Figure 6).  Equating the exponential fit with the large-``d`` mean
yields the *limit of distance sensitivity* and the fraction of links
below it (Table V: 75-95%).

Pair counting is exact but chunked for moderate node counts, and falls
back to a grid-cell approximation for very large ones (cell pair counts
weighted by occupancy), which tests validate against the exact count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import LinearFit, least_squares_fit, semilog_fit
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError
from repro.geo.distance import haversine_miles
from repro.geo.grid import PatchGrid
from repro.geo.regions import Region

#: Paper bin sizes per study region name (miles).
PAPER_BIN_MILES = {"US": 35.0, "Europe": 15.0, "Japan": 11.0}
#: Default number of bins (the paper uses 100 per region).
N_BINS = 100
#: Above this node count, pair counting switches to the grid method.
EXACT_PAIR_LIMIT = 45_000


@dataclass(frozen=True)
class DistancePreference:
    """The estimated f_hat(d) for one region.

    Attributes:
        region: region name.
        bin_miles: bin width b.
        bin_left: left edge of each bin (d values, multiples of b).
        link_counts: links per bin (numerator).
        pair_counts: node pairs per bin (denominator).
        f_hat: link_counts / pair_counts (NaN where no pairs).
        n_nodes: nodes in the region.
        link_lengths: lengths of all region links (for Table V fractions).
    """

    region: str
    bin_miles: float
    bin_left: np.ndarray
    link_counts: np.ndarray
    pair_counts: np.ndarray
    f_hat: np.ndarray
    n_nodes: int
    link_lengths: np.ndarray

    def valid_bins(self) -> np.ndarray:
        """Indices of bins with a meaningful estimate (pairs and links >= 0)."""
        return np.flatnonzero(self.pair_counts > 0)

    def populated_extent(self) -> int:
        """Number of leading bins up to the last one containing any pair.

        Bins beyond the region's diameter hold no pairs at all; analyses
        must not treat them as evidence of a flat (zero) tail.
        """
        populated = np.flatnonzero(self.pair_counts > 0)
        if populated.size == 0:
            raise AnalysisError("no distance bin contains any node pair")
        return int(populated[-1]) + 1


def exact_pair_counts(
    lats: np.ndarray,
    lons: np.ndarray,
    bin_miles: float,
    n_bins: int,
    chunk: int = 512,
) -> np.ndarray:
    """Exact node-pair counts per distance bin, chunked to bound memory."""
    if bin_miles <= 0:
        raise AnalysisError("bin_miles must be positive")
    n = lats.shape[0]
    counts = np.zeros(n_bins, dtype=np.int64)
    if n < 2 or n_bins == 0:
        return counts
    edges = np.arange(n_bins + 1, dtype=float) * bin_miles
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = haversine_miles(
            lats[start:stop, None], lons[start:stop, None], lats[None, :], lons[None, :]
        )
        # Keep only pairs (i, j) with j > i to count each pair once.
        cols = np.arange(n)[None, :]
        rows = np.arange(start, stop)[:, None]
        upper = block[cols > rows]
        hist, _ = np.histogram(upper, bins=edges)
        counts += hist
    return counts


def exact_pair_counts_rows(
    lats: np.ndarray,
    lons: np.ndarray,
    owned_rows: np.ndarray,
    bin_miles: float,
    n_bins: int,
    chunk: int = 512,
) -> np.ndarray:
    """The rows-``owned_rows`` share of :func:`exact_pair_counts`.

    Counts only the pairs ``(i, j)`` with ``j > i`` whose *smaller*
    index ``i`` lies in ``owned_rows`` — the distributed decomposition
    of exact pair counting: partition the row range across workers and
    the per-worker histograms sum to exactly the full
    :func:`exact_pair_counts` result (same haversine evaluations, same
    binning, integer addition).
    """
    if bin_miles <= 0:
        raise AnalysisError("bin_miles must be positive")
    n = lats.shape[0]
    counts = np.zeros(n_bins, dtype=np.int64)
    owned_rows = np.asarray(owned_rows, dtype=np.intp)
    if n < 2 or owned_rows.size == 0 or n_bins == 0:
        return counts
    if owned_rows.min() < 0 or owned_rows.max() >= n:
        raise AnalysisError("owned_rows reference rows outside the dataset")
    edges = np.arange(n_bins + 1, dtype=float) * bin_miles
    cols = np.arange(n)[None, :]
    for start in range(0, owned_rows.size, chunk):
        rows = owned_rows[start : start + chunk]
        block = haversine_miles(
            lats[rows, None], lons[rows, None], lats[None, :], lons[None, :]
        )
        upper = block[cols > rows[:, None]]
        hist, _ = np.histogram(upper, bins=edges)
        counts += hist
    return counts


def preference_from_counts(
    region_name: str,
    bin_miles: float,
    link_counts: np.ndarray,
    pair_counts: np.ndarray,
    n_nodes: int,
) -> DistancePreference:
    """Assemble a :class:`DistancePreference` from merged histograms.

    The scatter-gather path: shard workers return partial
    ``link_counts`` / ``pair_counts`` (integers, so their sum is exact)
    and the coordinator rebuilds the table with the same ``f_hat``
    expression :func:`preference_function` uses — bitwise the same
    division on bitwise the same counts.  ``link_lengths`` is empty:
    merged tables serve the query path, not the Table V analyses.
    """
    if bin_miles <= 0:
        raise AnalysisError("bin_miles must be positive")
    link_counts = np.asarray(link_counts, dtype=np.int64)
    pair_counts = np.asarray(pair_counts, dtype=np.int64)
    if link_counts.shape != pair_counts.shape:
        raise AnalysisError("link and pair histograms disagree on shape")
    if link_counts.ndim != 1:
        raise AnalysisError("histograms must be one-dimensional")
    if (link_counts < 0).any() or (pair_counts < 0).any():
        raise AnalysisError("histogram counts must be non-negative")
    n_bins = int(link_counts.size)
    edges = np.arange(n_bins + 1, dtype=float) * bin_miles
    with np.errstate(divide="ignore", invalid="ignore"):
        f_hat = np.where(pair_counts > 0, link_counts / pair_counts, np.nan)
    return DistancePreference(
        region=region_name,
        bin_miles=float(bin_miles),
        bin_left=edges[:-1],
        link_counts=link_counts,
        pair_counts=pair_counts,
        f_hat=f_hat,
        n_nodes=int(n_nodes),
        link_lengths=np.empty(0),
    )


def f_hat_at(pref: DistancePreference, d: float) -> float | None:
    """``f_hat`` evaluated at distance ``d`` (None where unpopulated).

    Shared by :meth:`repro.serve.index.SnapshotIndex.f_of_d` and the
    cluster coordinator so the one-value form of the preference
    endpoint answers identically on both paths.
    """
    b = int(d // pref.bin_miles)
    if b >= pref.f_hat.size or pref.pair_counts[b] == 0:
        return None
    value = float(pref.f_hat[b])
    return value if np.isfinite(value) else None


def grid_pair_counts(
    lats: np.ndarray,
    lons: np.ndarray,
    region: Region,
    bin_miles: float,
    n_bins: int,
) -> np.ndarray:
    """Approximate pair counts: aggregate nodes to grid cells first.

    Cells are sized to roughly one distance bin; cross-cell pairs are
    binned by centre-to-centre distance, and within-cell pairs land in
    bin zero.  The approximation error is about one bin width.
    """
    grid_cell_deg = bin_miles / 69.0  # ~69 miles per degree of latitude
    grid = PatchGrid(region=region, cell_arcmin=max(grid_cell_deg * 60.0, 1.0))
    occupancy = grid.tally(lats, lons)
    occupied = np.flatnonzero(occupancy > 0)
    cell_lats, cell_lons = grid.cell_centers()
    cl = cell_lats[occupied]
    cn = cell_lons[occupied]
    weights = occupancy[occupied]
    counts = np.zeros(n_bins, dtype=np.float64)
    # Within-cell pairs: distance ~ 0.
    counts[0] += float(np.sum(weights * (weights - 1) / 2.0))
    edges = np.arange(n_bins + 1, dtype=float) * bin_miles
    chunk = 256
    m = occupied.size
    for start in range(0, m, chunk):
        stop = min(start + chunk, m)
        block = haversine_miles(
            cl[start:stop, None], cn[start:stop, None], cl[None, :], cn[None, :]
        )
        w_block = weights[start:stop, None] * weights[None, :]
        cols = np.arange(m)[None, :]
        rows = np.arange(start, stop)[:, None]
        mask = cols > rows
        hist, _ = np.histogram(block[mask], bins=edges, weights=w_block[mask])
        counts += hist
    return counts.astype(np.int64)


def preference_function(
    dataset: MappedDataset,
    region: Region,
    bin_miles: float,
    n_bins: int = N_BINS,
    method: str = "auto",
) -> DistancePreference:
    """Estimate f_hat(d) for a dataset restricted to a region.

    Args:
        method: ``"exact"``, ``"grid"``, or ``"auto"`` (exact up to
            :data:`EXACT_PAIR_LIMIT` nodes, grid beyond).

    Raises:
        AnalysisError: for empty regions or invalid parameters.
    """
    if bin_miles <= 0 or n_bins < 10:
        raise AnalysisError("bin_miles must be positive and n_bins >= 10")
    sub = dataset.restrict(region)
    if sub.n_nodes < 10:
        raise AnalysisError(
            f"region {region.name!r} has only {sub.n_nodes} mapped nodes"
        )
    lengths = sub.link_lengths()
    edges = np.arange(n_bins + 1, dtype=float) * bin_miles
    link_counts, _ = np.histogram(lengths, bins=edges)
    if method == "exact" or (method == "auto" and sub.n_nodes <= EXACT_PAIR_LIMIT):
        pair_counts = exact_pair_counts(sub.lats, sub.lons, bin_miles, n_bins)
    elif method in ("grid", "auto"):
        pair_counts = grid_pair_counts(sub.lats, sub.lons, region, bin_miles, n_bins)
    else:
        raise AnalysisError(f"unknown pair-count method {method!r}")
    with np.errstate(divide="ignore", invalid="ignore"):
        f_hat = np.where(pair_counts > 0, link_counts / pair_counts, np.nan)
    return DistancePreference(
        region=region.name,
        bin_miles=float(bin_miles),
        bin_left=edges[:-1],
        link_counts=link_counts.astype(np.int64),
        pair_counts=pair_counts.astype(np.int64),
        f_hat=f_hat,
        n_nodes=sub.n_nodes,
        link_lengths=lengths,
    )


@dataclass(frozen=True)
class WaxmanFit:
    """Figure 5: the small-d exponential fit.

    Attributes:
        fit: OLS of ln f_hat(d) against d over the small-d window.
        l_miles: recovered Waxman scale L = -1 / slope.
        small_d_max: right edge of the window used.
    """

    fit: LinearFit
    l_miles: float
    small_d_max: float


def waxman_fit(
    pref: DistancePreference, small_d_max: float | None = None
) -> WaxmanFit:
    """Fit the exponentially decaying small-d regime.

    The window defaults to the first twenty bins or d <= 320 miles,
    whichever is smaller — bracketing the ranges the paper plots in
    Figure 5 across its three regions (250/300/200 miles).

    Raises:
        AnalysisError: when the window holds fewer than 3 usable bins or
            the fitted slope is not negative (no decay to speak of).
    """
    if small_d_max is None:
        small_d_max = float(min(20 * pref.bin_miles, 320.0))
    window = (
        (pref.bin_left < small_d_max)
        & (pref.pair_counts > 0)
        & (pref.link_counts > 0)
    )
    if int(window.sum()) < 3:
        raise AnalysisError("not enough usable small-d bins for a Waxman fit")
    # Bin centres are the natural abscissae for a density estimate.
    x = pref.bin_left[window] + pref.bin_miles / 2.0
    y = pref.f_hat[window]
    fit = semilog_fit(x, y)
    if fit.slope >= 0:
        raise AnalysisError(
            f"small-d regime is not decaying (slope {fit.slope:.3g})"
        )
    return WaxmanFit(fit=fit, l_miles=-1.0 / fit.slope, small_d_max=small_d_max)


@dataclass(frozen=True)
class CumulatedPreference:
    """Figure 6: the cumulated function F(d) over the large-d regime.

    Attributes:
        d: right edges of cumulated bins.
        big_f: F(d) = sum of f_hat over bins below d.
        large_d_fit: OLS line over the large-d half; high r-squared means
            f(d) is flat there.
    """

    d: np.ndarray
    big_f: np.ndarray
    large_d_fit: LinearFit


def cumulated_preference(
    pref: DistancePreference, large_d_from: float | None = None
) -> CumulatedPreference:
    """Cumulate f_hat and fit the large-d portion linearly.

    Raises:
        AnalysisError: if fewer than 3 bins lie beyond ``large_d_from``.
    """
    extent = pref.populated_extent()
    usable = pref.pair_counts[:extent] > 0
    f_filled = np.where(usable, np.nan_to_num(pref.f_hat[:extent]), 0.0)
    big_f = np.cumsum(f_filled)
    d_right = pref.bin_left[:extent] + pref.bin_miles
    if large_d_from is None:
        large_d_from = float(d_right[-1] / 2.0)
    window = d_right >= large_d_from
    if int(window.sum()) < 3:
        raise AnalysisError("not enough large-d bins for the linear fit")
    fit = least_squares_fit(d_right[window], big_f[window])
    return CumulatedPreference(d=d_right, big_f=big_f, large_d_fit=fit)


@dataclass(frozen=True)
class SensitivityLimit:
    """One Table V row: the limit of distance sensitivity.

    Attributes:
        region: region name.
        limit_miles: distance where the exponential fit meets the
            large-d mean.
        fraction_below: fraction of region links shorter than the limit.
        waxman: the small-d fit used.
        large_d_mean: mean f_hat over the flat regime.
    """

    region: str
    limit_miles: float
    fraction_below: float
    waxman: WaxmanFit
    large_d_mean: float


def sensitivity_limit(
    pref: DistancePreference, small_d_max: float | None = None
) -> SensitivityLimit:
    """Table V: where distance sensitivity ends, and how many links it covers.

    Raises:
        AnalysisError: when either regime cannot be characterised or the
            fitted curves never intersect at a positive distance.
    """
    wax = waxman_fit(pref, small_d_max=small_d_max)
    extent = pref.populated_extent()
    d_right = pref.bin_left + pref.bin_miles
    tail = (
        (d_right >= d_right[extent - 1] / 2.0)
        & (d_right <= d_right[extent - 1])
        & (pref.pair_counts > 0)
    )
    tail_values = pref.f_hat[tail]
    tail_values = tail_values[np.isfinite(tail_values)]
    if tail_values.size < 3:
        raise AnalysisError("not enough large-d bins to estimate the flat level")
    large_mean = float(tail_values.mean())
    if large_mean <= 0:
        raise AnalysisError("large-d mean is zero; no flat regime to intersect")
    # Solve exp(intercept + slope d) = large_mean for d.
    limit = (np.log(large_mean) - wax.fit.intercept) / wax.fit.slope
    if not np.isfinite(limit) or limit <= 0:
        raise AnalysisError("exponential fit never reaches the large-d level")
    if pref.link_lengths.size == 0:
        raise AnalysisError("region has no links")
    fraction = float(np.mean(pref.link_lengths < limit))
    return SensitivityLimit(
        region=pref.region,
        limit_miles=float(limit),
        fraction_below=fraction,
        waxman=wax,
        large_d_mean=large_mean,
    )
