"""One runner per table and figure of the paper.

Each function takes a :class:`~repro.datasets.pipeline.PipelineResult`
and returns a typed result object holding exactly the rows or series the
corresponding paper artefact reports.  The benchmark harness calls these
and prints them via :mod:`repro.core.report`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.core.asgeo import (
    AsSizeTable,
    DispersalSummary,
    HullTable,
    LinkDomainRow,
    SizeCorrelations,
    SizeDistributions,
    as_size_measures,
    hull_areas,
    hull_vs_size,
    link_domain_table,
    size_correlations,
    size_distributions,
)
from repro.core.density import (
    PatchRegression,
    RegionDensityRow,
    density_variation,
    homogeneity_table,
    patch_regression,
    region_density_table,
)
from repro.core.distance import (
    PAPER_BIN_MILES,
    CumulatedPreference,
    DistancePreference,
    SensitivityLimit,
    WaxmanFit,
    cumulated_preference,
    preference_function,
    sensitivity_limit,
    waxman_fit,
)
from repro.datasets.mapped import MappedDataset
from repro.datasets.pipeline import PipelineResult, run_pipeline
from repro.errors import AnalysisError
from repro.generators.base import GeneratedGraph
from repro.obs import span as obs_span
from repro.geo.fractal import BoxCountResult, box_counting_dimension
from repro.geo.projection import equirectangular_miles
from repro.geo.regions import EUROPE, STUDY_REGIONS, US, WORLD, Region

#: Measurement datasets, in the paper's presentation order.
MEASUREMENTS = ("Mercator", "Skitter")
#: Mapping tools, IxMapper first (the paper's main-text tool).
MAPPERS = ("IxMapper", "EdgeScape")

_F = TypeVar("_F", bound=Callable)


def _traced(artefact: str) -> Callable[[_F], _F]:
    """Wrap a runner in an ``experiment:<artefact>`` span.

    With no active tracer (library use, tests) the wrapper is a single
    context lookup; under ``--report`` every table/figure gets its own
    span so per-artefact analysis cost lands in the run report.
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with obs_span(f"experiment:{artefact}"):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def prepare_result(
    config,
    *,
    jobs: int = 1,
    cache_dir=None,
    telemetry=None,
) -> PipelineResult:
    """The pipeline result behind every experiment, via the staged runtime.

    With ``cache_dir`` set, a warm cache serves the generation,
    measurement, and mapping stages from disk so repeated experiment
    runs (CLI invocations, benchmark sessions) skip regeneration; the
    loaded result is identical to a cold run.  ``jobs > 1`` overlaps
    independent stages without changing any output bit.
    """
    return run_pipeline(
        config, jobs=jobs, cache_dir=cache_dir, telemetry=telemetry
    )


# --- Table I -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table1Row:
    """Sizes of one processed dataset.

    Attributes:
        label: dataset label (mapper, measurement).
        n_nodes: mapped node count.
        n_links: observed link count.
        n_locations: distinct locations.
    """

    label: str
    n_nodes: int
    n_links: int
    n_locations: int


@_traced("table1")
def table1(result: PipelineResult) -> list[Table1Row]:
    """Table I: sizes of all four processed datasets."""
    rows = []
    for mapper in MAPPERS:
        for measurement in MEASUREMENTS:
            ds = result.dataset(mapper, measurement)
            rows.append(
                Table1Row(
                    label=ds.label,
                    n_nodes=ds.n_nodes,
                    n_links=ds.n_links,
                    n_locations=ds.n_locations,
                )
            )
    return rows


# --- Tables III and IV --------------------------------------------------------


@dataclass(frozen=True)
class Table3Result:
    """Table III rows plus the headline variation contrast.

    Attributes:
        rows: one per economic region.
        people_variation: max/min people-per-node across rows (paper >100).
        online_variation: max/min online-per-node (paper ~4).
    """

    rows: list[RegionDensityRow]
    people_variation: float
    online_variation: float


@_traced("table3")
def table3(result: PipelineResult, mapper: str = "IxMapper") -> Table3Result:
    """Table III over the Skitter dataset (the paper's choice)."""
    dataset = result.dataset(mapper, "Skitter")
    rows = region_density_table(dataset, result.world.field)
    # Variation is computed over the named regions, excluding the World
    # aggregate row.
    named = [r for r in rows if r.region != "World"]
    people_var, online_var = density_variation(named)
    return Table3Result(
        rows=rows, people_variation=people_var, online_variation=online_var
    )


@_traced("table4")
def table4(
    result: PipelineResult, mapper: str = "IxMapper"
) -> list[RegionDensityRow]:
    """Table IV: the homogeneity test rows."""
    dataset = result.dataset(mapper, "Skitter")
    return homogeneity_table(dataset, result.world.field)


# --- Table V -------------------------------------------------------------------


@dataclass(frozen=True)
class Table5Row:
    """One Table V row: distance-sensitivity limit for dataset x region.

    Attributes:
        measurement: "Mercator" or "Skitter".
        region: region name.
        limit: the sensitivity result (limit miles + fraction below).
    """

    measurement: str
    region: str
    limit: SensitivityLimit


@_traced("table5")
def table5(result: PipelineResult, mapper: str = "IxMapper") -> list[Table5Row]:
    """Table V rows for both measurements across the study regions.

    Regions whose data cannot support the two-regime fit are skipped
    (small scenarios may not populate Japan densely enough).
    """
    rows = []
    for measurement in MEASUREMENTS:
        dataset = result.dataset(mapper, measurement)
        for region in STUDY_REGIONS:
            try:
                pref = preference_function(
                    dataset, region, PAPER_BIN_MILES[region.name]
                )
                rows.append(
                    Table5Row(
                        measurement=measurement,
                        region=region.name,
                        limit=sensitivity_limit(pref),
                    )
                )
            except AnalysisError:
                continue
    if not rows:
        raise AnalysisError("no region supported a sensitivity-limit fit")
    return rows


@_traced("table6")
def table6(
    result: PipelineResult, mapper: str = "IxMapper"
) -> list[LinkDomainRow]:
    """Table VI: intra vs interdomain links (Skitter dataset)."""
    dataset = result.dataset(mapper, "Skitter")
    return link_domain_table(dataset, STUDY_REGIONS)


# --- Figures 1-6 ------------------------------------------------------------------


@_traced("figure1")
def figure1(
    result: PipelineResult, mapper: str = "IxMapper"
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figure 1: mapped node coordinates per study region (Skitter)."""
    dataset = result.dataset(mapper, "Skitter")
    series = {}
    for region in STUDY_REGIONS:
        sub = dataset.restrict(region)
        series[region.name] = (sub.lats, sub.lons)
    return series


@_traced("figure2")
def figure2(
    result: PipelineResult, mapper: str = "IxMapper"
) -> dict[tuple[str, str], PatchRegression]:
    """Figure 2: patch regressions for both datasets x three regions."""
    panels = {}
    for measurement in MEASUREMENTS:
        dataset = result.dataset(mapper, measurement)
        for region in STUDY_REGIONS:
            try:
                panels[(measurement, region.name)] = patch_regression(
                    dataset, result.world.field, region
                )
            except AnalysisError:
                continue
    if not panels:
        raise AnalysisError("no panel had enough data for a patch regression")
    return panels


@_traced("figure4")
def figure4(
    result: PipelineResult, mapper: str = "IxMapper"
) -> dict[tuple[str, str], DistancePreference]:
    """Figure 4: empirical f(d) for both datasets x three regions."""
    panels = {}
    for measurement in MEASUREMENTS:
        dataset = result.dataset(mapper, measurement)
        for region in STUDY_REGIONS:
            try:
                panels[(measurement, region.name)] = preference_function(
                    dataset, region, PAPER_BIN_MILES[region.name]
                )
            except AnalysisError:
                continue
    if not panels:
        raise AnalysisError("no panel had enough data for f(d)")
    return panels


@_traced("figure5")
def figure5(
    panels: dict[tuple[str, str], DistancePreference]
) -> dict[tuple[str, str], WaxmanFit]:
    """Figure 5: small-d exponential fits for each f(d) panel."""
    fits = {}
    for key, pref in panels.items():
        try:
            fits[key] = waxman_fit(pref)
        except AnalysisError:
            continue
    if not fits:
        raise AnalysisError("no panel supported a Waxman fit")
    return fits


@_traced("figure6")
def figure6(
    panels: dict[tuple[str, str], DistancePreference]
) -> dict[tuple[str, str], CumulatedPreference]:
    """Figure 6: cumulated F(d) with large-d linear fits."""
    curves = {}
    for key, pref in panels.items():
        try:
            curves[key] = cumulated_preference(pref)
        except AnalysisError:
            continue
    if not curves:
        raise AnalysisError("no panel supported the cumulated fit")
    return curves


# --- Figures 7-10 ---------------------------------------------------------------


@dataclass(frozen=True)
class AsGeographyResult:
    """Everything Section VI derives from one dataset.

    Attributes:
        table: per-AS size measures.
        distributions: Figure 7 CCDFs.
        correlations: Figure 8 correlation summary.
        hulls_world: Figure 9(a) hull areas (world).
        hulls_us: Figure 9(b), restricted to the US box.
        hulls_europe: Figure 9(c), restricted to the Europe box.
        dispersal: Figure 10 summaries per size measure.
    """

    table: AsSizeTable
    distributions: SizeDistributions
    correlations: SizeCorrelations
    hulls_world: HullTable
    hulls_us: HullTable
    hulls_europe: HullTable
    dispersal: dict[str, DispersalSummary]


@_traced("figures7-10")
def figures7_to_10(
    result: PipelineResult,
    mapper: str = "IxMapper",
    measurement: str = "Skitter",
) -> AsGeographyResult:
    """Figures 7-10 from one dataset (paper: Skitter with IxMapper)."""
    dataset = result.dataset(mapper, measurement)
    table = as_size_measures(dataset)
    hulls_world = hull_areas(dataset)
    dispersal = {
        measure: hull_vs_size(table, hulls_world, size_measure=measure)
        for measure in ("nodes", "locations", "degree")
    }
    return AsGeographyResult(
        table=table,
        distributions=size_distributions(table),
        correlations=size_correlations(table),
        hulls_world=hulls_world,
        hulls_us=hull_areas(dataset, region=US),
        hulls_europe=hull_areas(dataset, region=EUROPE),
        dispersal=dispersal,
    )


# --- X1: fractal dimension ---------------------------------------------------------


@dataclass(frozen=True)
class FractalResult:
    """Box-counting dimensions of routers and population (X1).

    Attributes:
        routers: dimension of the mapped node set.
        population: dimension of the population point field.
    """

    routers: BoxCountResult
    population: BoxCountResult


@_traced("x1")
def experiment_x1(
    result: PipelineResult,
    region: Region = US,
) -> FractalResult:
    """X1: confirm routers and population share a fractal dimension ~1.5.

    Router positions come from the ground truth (physical placement):
    mapped datasets snap to city centres, which saturates the box count
    at the number of cities and biases the dimension toward zero —
    geolocation granularity, not placement geometry.
    """
    lats, lons = result.topology.router_coordinates()
    mask = region.contains_mask(lats, lons)
    rx, ry = equirectangular_miles(lats[mask], lons[mask])
    field = result.world.field
    fmask = region.contains_mask(field.lats, field.lons)
    px, py = equirectangular_miles(field.lats[fmask], field.lons[fmask])
    return FractalResult(
        routers=box_counting_dimension(rx, ry),
        population=box_counting_dimension(px, py),
    )


# --- X2: generator comparison ---------------------------------------------------------


def dataset_from_graph(graph: GeneratedGraph) -> MappedDataset:
    """Wrap a generated graph as a dataset so the analyses apply to it.

    When the graph records its generation seed the label carries it
    (``"waxman#7"``), so datasets derived from different sweep trials
    stay distinguishable in reports and artifact hashes.
    """
    label = graph.name if graph.seed is None else f"{graph.name}#{graph.seed}"
    return MappedDataset(
        label=label,
        kind="generated",
        addresses=np.arange(graph.n_nodes, dtype=np.int64),
        lats=graph.lats,
        lons=graph.lons,
        asns=graph.asns,
        links=graph.edges,
    )


@dataclass(frozen=True)
class GeneratorComparison:
    """X2: distance-preference characteristics of one generator.

    Attributes:
        name: generator name.
        preference: its f(d) over the analysis region.
        decay_slope: semi-log slope of the small-d window (negative means
            distance-sensitive; near zero means geometry-blind).
        mean_degree: the generated graph's mean degree.
        seed: the graph's generation seed when known, so a sweep cell
            can re-create the exact comparison.
    """

    name: str
    preference: DistancePreference
    decay_slope: float
    mean_degree: float
    seed: int | None = None


def compare_generator(
    graph: GeneratedGraph,
    region: Region = WORLD,
    bin_miles: float = 35.0,
) -> GeneratorComparison:
    """Characterise a generated graph's distance preference.

    Unlike :func:`waxman_fit` this never raises on a flat profile — a
    flat (near-zero) slope is exactly the finding for geometry-blind
    generators.
    """
    dataset = dataset_from_graph(graph)
    pref = preference_function(dataset, region, bin_miles)
    window = (
        (pref.bin_left < 20 * bin_miles)
        & (pref.pair_counts > 0)
        & (pref.link_counts > 0)
    )
    if int(window.sum()) >= 3:
        from repro.core.stats import semilog_fit

        x = pref.bin_left[window] + bin_miles / 2.0
        slope = semilog_fit(x, pref.f_hat[window]).slope
    else:
        slope = float("nan")
    return GeneratorComparison(
        name=graph.name,
        preference=pref,
        decay_slope=float(slope),
        mean_degree=graph.mean_degree(),
        seed=graph.seed,
    )
