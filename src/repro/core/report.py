"""Paper-style text rendering of experiment results.

Each ``render_*`` function formats one experiment's result the way the
paper's corresponding table presents it (same columns, same ordering),
so benchmark output can be compared against the paper side by side.
"""

from __future__ import annotations

import numpy as np

from repro.core.asgeo import LinkDomainRow
from repro.core.density import PatchRegression, RegionDensityRow
from repro.core.experiments import (
    AsGeographyResult,
    FractalResult,
    GeneratorComparison,
    Table1Row,
    Table3Result,
    Table5Row,
)


def _rule(width: int = 72) -> str:
    return "-" * width


def render_table1(rows: list[Table1Row]) -> str:
    """Table I: sizes of processed datasets."""
    lines = ["TABLE I: SIZES OF PROCESSED DATASETS", _rule()]
    lines.append(f"{'Dataset':28s} {'Nodes':>10s} {'Links':>10s} {'Locations':>10s}")
    for row in rows:
        lines.append(
            f"{row.label:28s} {row.n_nodes:>10,d} {row.n_links:>10,d} "
            f"{row.n_locations:>10,d}"
        )
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Table III: variation in people/node density across regions."""
    lines = ["TABLE III: VARIATION IN PEOPLE/INTERFACE DENSITY", _rule(86)]
    lines.append(
        f"{'Region':15s} {'Pop (M)':>9s} {'Nodes':>9s} {'People/Node':>12s} "
        f"{'Online (M)':>11s} {'Online/Node':>12s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.region:15s} {row.population_millions:>9.1f} "
            f"{row.n_nodes:>9,d} {row.people_per_node:>12,.0f} "
            f"{row.online_millions:>11.2f} {row.online_per_node:>12,.0f}"
        )
    lines.append(_rule(86))
    lines.append(
        f"people/node varies x{result.people_variation:.1f} across regions; "
        f"online/node varies only x{result.online_variation:.1f}"
    )
    return "\n".join(lines)


def render_table4(rows: list[RegionDensityRow]) -> str:
    """Table IV: testing for homogeneity."""
    lines = ["TABLE IV: TESTING FOR HOMOGENEITY", _rule()]
    lines.append(f"{'Region':15s} {'Pop (M)':>10s} {'Nodes':>10s} {'People/Node':>12s}")
    for row in rows:
        lines.append(
            f"{row.region:15s} {row.population_millions:>10.1f} "
            f"{row.n_nodes:>10,d} {row.people_per_node:>12,.0f}"
        )
    return "\n".join(lines)


def render_table5(rows: list[Table5Row]) -> str:
    """Table V: limits of distance sensitivity."""
    lines = ["TABLE V: LIMITS OF DISTANCE SENSITIVITY", _rule()]
    lines.append(
        f"{'Dataset':10s} {'Region':8s} {'Limit (mi)':>11s} {'% Links < Limit':>16s} "
        f"{'L (mi)':>8s}"
    )
    for row in rows:
        lines.append(
            f"{row.measurement:10s} {row.region:8s} {row.limit.limit_miles:>11.0f} "
            f"{row.limit.fraction_below * 100:>15.1f}% "
            f"{row.limit.waxman.l_miles:>8.0f}"
        )
    return "\n".join(lines)


def render_table6(rows: list[LinkDomainRow]) -> str:
    """Table VI: intradomain vs interdomain links."""
    lines = ["TABLE VI: INTRADOMAIN VS. INTERDOMAIN LINKS", _rule(86)]
    lines.append(
        f"{'Region':8s} {'Inter count':>12s} {'Inter mean (mi)':>16s} "
        f"{'Intra count':>12s} {'Intra mean (mi)':>16s} {'% intra':>8s}"
    )
    for row in rows:
        lines.append(
            f"{row.region:8s} {row.n_interdomain:>12,d} "
            f"{row.mean_interdomain_miles:>16.0f} {row.n_intradomain:>12,d} "
            f"{row.mean_intradomain_miles:>16.0f} "
            f"{row.intradomain_fraction * 100:>7.1f}%"
        )
    return "\n".join(lines)


def render_figure2(panels: dict[tuple[str, str], PatchRegression]) -> str:
    """Figure 2: fitted superlinearity exponents per panel."""
    lines = ["FIGURE 2: NODE DENSITY VS POPULATION DENSITY (log-log slopes)", _rule()]
    lines.append(f"{'Dataset':10s} {'Region':8s} {'Slope':>7s} {'Intercept':>10s} "
                 f"{'R^2':>6s} {'Patches':>8s}")
    for (measurement, region), panel in sorted(panels.items()):
        lines.append(
            f"{measurement:10s} {region:8s} {panel.fit.slope:>7.2f} "
            f"{panel.fit.intercept:>10.2f} {panel.fit.r_squared:>6.2f} "
            f"{panel.fit.n:>8d}"
        )
    return "\n".join(lines)


def render_figure4(panels: dict) -> str:
    """Figure 4: f(d) summary per panel (first bins and totals)."""
    lines = ["FIGURE 4: EMPIRICAL DISTANCE PREFERENCE FUNCTION", _rule()]
    for (measurement, region), pref in sorted(panels.items()):
        usable = pref.valid_bins()
        f_first = pref.f_hat[usable[:5]] if usable.size else []
        first = ", ".join(f"{v:.2e}" for v in f_first)
        lines.append(
            f"{measurement:10s} {region:8s} bin={pref.bin_miles:.0f} mi  "
            f"nodes={pref.n_nodes:,d} links={pref.link_lengths.size:,d}  "
            f"f(first bins)=[{first}]"
        )
    return "\n".join(lines)


def render_figure5(fits: dict) -> str:
    """Figure 5: Waxman fits per panel."""
    lines = ["FIGURE 5: SMALL-d EXPONENTIAL (WAXMAN) FITS", _rule()]
    lines.append(f"{'Dataset':10s} {'Region':8s} {'slope':>10s} {'L (mi)':>8s} "
                 f"{'R^2':>6s} {'equation'}")
    for (measurement, region), fit in sorted(fits.items()):
        lines.append(
            f"{measurement:10s} {region:8s} {fit.fit.slope:>10.5f} "
            f"{fit.l_miles:>8.0f} {fit.fit.r_squared:>6.2f} "
            f"{fit.fit.equation('d')}"
        )
    return "\n".join(lines)


def render_figure6(curves: dict) -> str:
    """Figure 6: cumulated F(d) large-d linearity per panel."""
    lines = ["FIGURE 6: CUMULATED F(d), LARGE-d LINEAR FITS", _rule()]
    lines.append(f"{'Dataset':10s} {'Region':8s} {'slope':>12s} {'R^2':>6s}")
    for (measurement, region), curve in sorted(curves.items()):
        lines.append(
            f"{measurement:10s} {region:8s} {curve.large_d_fit.slope:>12.3e} "
            f"{curve.large_d_fit.r_squared:>6.2f}"
        )
    return "\n".join(lines)


def render_as_geography(result: AsGeographyResult) -> str:
    """Figures 7-10 condensed: tails, correlations, hulls, dispersal."""
    d = result.distributions.decades
    c = result.correlations
    lines = ["FIGURES 7-10: AUTONOMOUS SYSTEMS AND GEOGRAPHY", _rule(80)]
    lines.append(
        f"Figure 7 (CCDF decades spanned): nodes={d['nodes']:.1f} "
        f"locations={d['locations']:.1f} degree={d['degree']:.1f}"
    )
    lines.append(
        "Figure 8 (log-log Pearson): "
        f"nodes~locations={c.pearson_nodes_locations:.2f} "
        f"nodes~degree={c.pearson_nodes_degree:.2f} "
        f"locations~degree={c.pearson_locations_degree:.2f}"
    )
    for name, hulls in (
        ("World", result.hulls_world),
        ("US", result.hulls_us),
        ("Europe", result.hulls_europe),
    ):
        nonzero = hulls.areas[hulls.areas > 0]
        top = float(np.max(hulls.areas)) if hulls.areas.size else 0.0
        lines.append(
            f"Figure 9 ({name}): {hulls.zero_fraction * 100:.0f}% zero-extent ASes; "
            f"{nonzero.size} with extent, max hull {top:,.0f} sq mi"
        )
    for measure, summary in sorted(result.dispersal.items()):
        lines.append(
            f"Figure 10 ({measure}): cutoff {summary.cutoff:,.0f}; "
            f"large-AS min hull / max hull = {summary.dispersal_ratio:.2f}"
        )
    return "\n".join(lines)


def render_fractal(result: FractalResult) -> str:
    """X1: box-counting dimensions."""
    return (
        "X1: BOX-COUNTING FRACTAL DIMENSION\n"
        + _rule()
        + f"\nrouters:    D = {result.routers.dimension:.2f} "
        f"(R^2 {result.routers.fit.r_squared:.2f})"
        f"\npopulation: D = {result.population.dimension:.2f} "
        f"(R^2 {result.population.fit.r_squared:.2f})"
    )


def render_generator_comparison(rows: list[GeneratorComparison]) -> str:
    """X2: generator distance-preference comparison."""
    lines = ["X2: GENERATOR DISTANCE-PREFERENCE COMPARISON", _rule()]
    lines.append(f"{'Generator':16s} {'decay slope':>12s} {'mean degree':>12s}")
    for row in rows:
        slope = f"{row.decay_slope:.5f}" if np.isfinite(row.decay_slope) else "n/a"
        lines.append(f"{row.name:16s} {slope:>12s} {row.mean_degree:>12.2f}")
    return "\n".join(lines)
