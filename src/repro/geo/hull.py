"""Planar convex hulls and polygon areas.

Implemented from scratch (Andrew's monotone chain + the shoelace
formula) so the AS geographic-extent analysis has no dependency beyond
numpy.  Degenerate point sets (fewer than three distinct points, or all
points collinear) have zero area, matching the paper's observation that
ASes present at one or two locations "have no extent at all".
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeoError


def _cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Z-component of the cross product (a - o) x (b - o)."""
    return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull of 2-D points via Andrew's monotone chain.

    Args:
        points: array of shape ``(n, 2)``.

    Returns:
        Hull vertices in counter-clockwise order, shape ``(h, 2)``.
        Degenerate inputs return what distinct geometry exists: a single
        point, or the two extreme points of a collinear set.

    Raises:
        GeoError: if the input is not an ``(n, 2)`` array or holds
            non-finite values.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeoError(f"expected an (n, 2) array, got shape {pts.shape}")
    if pts.size and not np.all(np.isfinite(pts)):
        raise GeoError("points must be finite")
    if pts.shape[0] == 0:
        return pts.copy()
    # Sort lexicographically and drop duplicates.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    keep = np.ones(pts.shape[0], dtype=bool)
    keep[1:] = np.any(np.diff(pts, axis=0) != 0.0, axis=1)
    pts = pts[keep]
    n = pts.shape[0]
    if n <= 2:
        return pts.copy()

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # fully collinear set
        return np.vstack([pts[0], pts[-1]])
    return np.vstack(hull)


def polygon_area(vertices: np.ndarray) -> float:
    """Absolute area of a simple polygon via the shoelace formula.

    Inputs with fewer than three vertices have zero area.
    """
    v = np.asarray(vertices, dtype=float)
    if v.ndim != 2 or (v.size and v.shape[1] != 2):
        raise GeoError(f"expected an (n, 2) array, got shape {v.shape}")
    if v.shape[0] < 3:
        return 0.0
    x = v[:, 0]
    y = v[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def convex_hull_area(points: np.ndarray) -> float:
    """Area of the convex hull of a 2-D point set.

    The composition used by the AS-extent analysis: project interface
    locations to the plane, then call this.
    """
    return polygon_area(convex_hull(points))
