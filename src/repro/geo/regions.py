"""Geographic regions delineated by latitude/longitude boxes.

The paper studies simple lat/lon rectangles (its Table II), plus a set of
world economic regions (Table III) and the homogeneity-test sub-regions
(Figure 3 / Table IV).  We reproduce all of them here as constants so
every analysis and benchmark refers to a single definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeoError
from repro.geo.coords import validate_latitude, validate_longitude


@dataclass(frozen=True, slots=True)
class Region:
    """A latitude/longitude bounding box on the globe.

    Attributes:
        name: human-readable name (approximate; boxes are not political
            boundaries, exactly as in the paper).
        north, south: latitude bounds in degrees (north > south).
        west, east: longitude bounds in degrees (west < east; boxes
            crossing the date line are not needed for the paper's regions
            and are rejected).
    """

    name: str
    north: float
    south: float
    west: float
    east: float

    def __post_init__(self) -> None:
        validate_latitude(self.north)
        validate_latitude(self.south)
        validate_longitude(self.west)
        validate_longitude(self.east)
        if self.north <= self.south:
            raise GeoError(f"region {self.name!r}: north must exceed south")
        if self.east <= self.west:
            raise GeoError(f"region {self.name!r}: east must exceed west")

    def contains(self, lat: float, lon: float) -> bool:
        """True if the point lies inside the box (inclusive bounds)."""
        return (
            self.south <= lat <= self.north and self.west <= lon <= self.east
        )

    def contains_mask(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Boolean mask of which coordinate pairs fall inside the box."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        return (
            (lats >= self.south)
            & (lats <= self.north)
            & (lons >= self.west)
            & (lons <= self.east)
        )

    @property
    def lat_span(self) -> float:
        """Height of the box in degrees of latitude."""
        return self.north - self.south

    @property
    def lon_span(self) -> float:
        """Width of the box in degrees of longitude."""
        return self.east - self.west

    @property
    def center(self) -> tuple[float, float]:
        """``(lat, lon)`` of the box centre."""
        return ((self.north + self.south) / 2.0, (self.east + self.west) / 2.0)


# --- Table II: the three homogeneous study regions -----------------------

US = Region("US", north=50.0, south=25.0, west=-150.0, east=-45.0)
EUROPE = Region("Europe", north=58.0, south=42.0, west=-5.0, east=22.0)
JAPAN = Region("Japan", north=60.0, south=30.0, west=130.0, east=150.0)

#: The paper's three homogeneous study regions, in presentation order.
STUDY_REGIONS: tuple[Region, ...] = (US, EUROPE, JAPAN)

# --- Figure 3 / Table IV: homogeneity-test sub-regions -------------------

NORTHERN_US = Region("Northern US", north=50.0, south=37.5, west=-150.0, east=-45.0)
SOUTHERN_US = Region("Southern US", north=37.5, south=25.0, west=-150.0, east=-45.0)
CENTRAL_AMERICA = Region(
    "Central Am.", north=25.0, south=10.0, west=-120.0, east=-60.0
)

#: Sub-regions used for the homogeneity test (Table IV).
HOMOGENEITY_REGIONS: tuple[Region, ...] = (
    NORTHERN_US,
    SOUTHERN_US,
    CENTRAL_AMERICA,
)

# --- Table III: world economic regions ------------------------------------
# Approximate lat/lon boxes; as in the paper, names are indicative only.

AFRICA = Region("Africa", north=35.0, south=-35.0, west=-18.0, east=50.0)
SOUTH_AMERICA = Region("South America", north=13.0, south=-55.0, west=-82.0, east=-34.0)
MEXICO = Region("Mexico", north=25.0, south=10.0, west=-120.0, east=-60.0)
WESTERN_EUROPE = Region("W. Europe", north=58.0, south=42.0, west=-5.0, east=22.0)
JAPAN_ECON = Region("Japan", north=60.0, south=30.0, west=130.0, east=150.0)
AUSTRALIA = Region("Australia", north=-10.0, south=-45.0, west=110.0, east=155.0)
USA_ECON = Region("USA", north=50.0, south=25.0, west=-150.0, east=-45.0)
WORLD = Region("World", north=85.0, south=-60.0, west=-180.0, east=179.999)

#: Economic regions tabulated in Table III, in presentation order.
ECONOMIC_REGIONS: tuple[Region, ...] = (
    AFRICA,
    SOUTH_AMERICA,
    MEXICO,
    WESTERN_EUROPE,
    JAPAN_ECON,
    AUSTRALIA,
    USA_ECON,
    WORLD,
)


def region_by_name(name: str) -> Region:
    """Look up any of the named constant regions by name.

    Raises:
        GeoError: if no constant region carries that name.
    """
    for region in (*STUDY_REGIONS, *HOMOGENEITY_REGIONS, *ECONOMIC_REGIONS):
        if region.name == name:
            return region
    raise GeoError(f"unknown region name {name!r}")
