"""Map projections.

Section VI of the paper measures the geographic extent of an AS as the
area of the convex hull of its interface locations.  Convexity is not
well defined on the sphere, so the paper projects points to the plane
with the Albers Equal Area conic projection (unfolding the globe at the
poles and the International Date Line) and takes hulls there.  We
implement that projection, plus a simple equirectangular projection used
by the box-counting fractal estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProjectionError
from repro.geo.coords import EARTH_RADIUS_MILES


@dataclass(frozen=True, slots=True)
class AlbersEqualArea:
    """Albers Equal Area conic projection on a spherical Earth.

    Coordinates are returned in miles so hull areas come out in square
    miles, matching the paper's Figure 9/10 axes.

    Attributes:
        std_parallel_1: first standard parallel, degrees.
        std_parallel_2: second standard parallel, degrees.
        origin_lat: latitude of projection origin, degrees.
        origin_lon: central meridian, degrees.
    """

    std_parallel_1: float = 20.0
    std_parallel_2: float = 50.0
    origin_lat: float = 0.0
    origin_lon: float = 0.0

    def _constants(self) -> tuple[float, float, float]:
        phi1 = np.radians(self.std_parallel_1)
        phi2 = np.radians(self.std_parallel_2)
        phi0 = np.radians(self.origin_lat)
        n = (np.sin(phi1) + np.sin(phi2)) / 2.0
        if abs(n) < 1e-12:
            raise ProjectionError(
                "standard parallels are symmetric about the equator; "
                "the Albers cone constant degenerates to zero"
            )
        c = np.cos(phi1) ** 2 + 2.0 * n * np.sin(phi1)
        rho0 = np.sqrt(max(c - 2.0 * n * np.sin(phi0), 0.0)) / n
        return float(n), float(c), float(rho0)

    def project(
        self, lats: np.ndarray | float, lons: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project degrees lat/lon to planar ``(x, y)`` in miles.

        The globe is unfolded at the date line relative to the central
        meridian, so longitudes are first wrapped to within 180 degrees
        of :attr:`origin_lon`.
        """
        n, c, rho0 = self._constants()
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if np.any(np.abs(lats) > 90.0):
            raise ProjectionError("latitude out of range for projection")
        phi = np.radians(lats)
        dlon = np.radians(((lons - self.origin_lon + 180.0) % 360.0) - 180.0)
        theta = n * dlon
        under = c - 2.0 * n * np.sin(phi)
        if np.any(under < -1e-9):
            raise ProjectionError(
                "point is outside the domain of this Albers parameterisation"
            )
        rho = np.sqrt(np.clip(under, 0.0, None)) / n
        x = EARTH_RADIUS_MILES * rho * np.sin(theta)
        y = EARTH_RADIUS_MILES * (rho0 - rho * np.cos(theta))
        return x, y


#: Projection used for world-scale hull measurements, standard parallels
#: chosen to bracket the latitudes where most infrastructure lives.
WORLD_ALBERS = AlbersEqualArea(
    std_parallel_1=20.0, std_parallel_2=50.0, origin_lat=0.0, origin_lon=0.0
)


def equirectangular_miles(
    lats: np.ndarray, lons: np.ndarray, ref_lat: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fast local planar projection: x scaled by cos(reference latitude).

    Adequate for box counting and other local, qualitative geometry; not
    area preserving over large extents (use :class:`AlbersEqualArea` for
    hull areas).

    Args:
        ref_lat: latitude whose cosine scales the x axis; defaults to the
            mean latitude of the input.

    Returns:
        ``(x, y)`` in miles.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.size == 0:
        return lats.copy(), lons.copy()
    if ref_lat is None:
        ref_lat = float(np.mean(lats))
    per_deg = EARTH_RADIUS_MILES * np.pi / 180.0
    x = lons * per_deg * np.cos(np.radians(ref_lat))
    y = lats * per_deg
    return x, y
