"""Box-counting fractal dimension of planar point sets.

Section II of the paper notes that the authors confirmed Yook, Jeong and
Barabasi's result that routers, ASes, and population density share a
fractal dimension of about 1.5, via the box-counting method.  This module
implements that estimator (experiment X1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AnalysisError

if TYPE_CHECKING:  # deferred: core.stats imports analysis modules that
    # themselves need repro.geo, so a module-level import would be cyclic.
    from repro.core.stats import LinearFit


@dataclass(frozen=True, slots=True)
class BoxCountResult:
    """Result of a box-counting sweep.

    Attributes:
        box_sizes: box edge lengths used, in the input's units.
        counts: number of occupied boxes at each size.
        dimension: estimated fractal dimension (negative slope of
            log(count) vs log(size)).
        fit: the underlying least-squares fit on log-log axes.
    """

    box_sizes: np.ndarray
    counts: np.ndarray
    dimension: float
    fit: "LinearFit"


def _occupied_boxes(x: np.ndarray, y: np.ndarray, box: float) -> int:
    """Number of distinct ``box``-sized grid cells containing a point."""
    ix = np.floor(x / box).astype(np.int64)
    iy = np.floor(y / box).astype(np.int64)
    # Combine into a single key; ranges are small enough not to overflow.
    keys = ix * 2_000_003 + iy
    return int(np.unique(keys).size)


def box_counting_dimension(
    x: np.ndarray,
    y: np.ndarray,
    n_scales: int = 12,
    min_boxes_per_side: int = 4,
) -> BoxCountResult:
    """Estimate the box-counting (Minkowski) dimension of a point set.

    Box sizes sweep geometrically from the full extent divided by
    ``min_boxes_per_side`` down by factors of two for ``n_scales`` scales,
    stopping early once boxes would isolate individual points.

    Raises:
        AnalysisError: if fewer than 10 points are supplied or the point
            set has zero extent.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("x and y must be equal-length 1-D arrays")
    if x.size < 10:
        raise AnalysisError(f"need at least 10 points, got {x.size}")
    extent = max(float(np.ptp(x)), float(np.ptp(y)))
    if extent <= 0:
        raise AnalysisError("point set has zero spatial extent")
    x = x - x.min()
    y = y - y.min()
    # Saturation level: the number of *distinct* points.  City-snapped
    # locations collapse many points onto one coordinate, and once every
    # distinct point sits in its own box, finer scales only flatten the
    # curve and bias the slope toward zero.
    n_distinct = int(np.unique(np.column_stack([x, y]), axis=0).shape[0])

    sizes: list[float] = []
    counts: list[int] = []
    box = extent / float(min_boxes_per_side)
    for _ in range(n_scales):
        occupied = _occupied_boxes(x, y, box)
        sizes.append(box)
        counts.append(occupied)
        if occupied >= 0.75 * n_distinct:
            break
        box /= 2.0

    from repro.core.stats import least_squares_fit

    if len(sizes) < 3:
        raise AnalysisError("not enough usable scales for a dimension fit")
    log_sizes = np.log10(np.asarray(sizes))
    log_counts = np.log10(np.asarray(counts, dtype=float))
    fit = least_squares_fit(log_sizes, log_counts)
    return BoxCountResult(
        box_sizes=np.asarray(sizes),
        counts=np.asarray(counts),
        dimension=-fit.slope,
        fit=fit,
    )
