"""Great-circle distance on a spherical Earth.

The paper measures all link lengths and node separations as great-circle
distances in statute miles; we use the haversine formula, which is
numerically stable at both short and antipodal distances.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeoError
from repro.geo.coords import EARTH_RADIUS_MILES, GeoPoint


def haversine_miles(
    lat1: np.ndarray | float,
    lon1: np.ndarray | float,
    lat2: np.ndarray | float,
    lon2: np.ndarray | float,
) -> np.ndarray | float:
    """Great-circle distance in statute miles between coordinate pairs.

    All arguments are degrees and broadcast against each other, so the
    function works for scalars, equal-length arrays, or a scalar against
    an array.

    Returns:
        Distance(s) in miles, with the broadcast shape of the inputs.
    """
    lat1r = np.radians(lat1)
    lon1r = np.radians(lon1)
    lat2r = np.radians(lat2)
    lon2r = np.radians(lon2)
    dlat = lat2r - lat1r
    dlon = lon2r - lon1r
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1r) * np.cos(lat2r) * np.sin(dlon / 2.0) ** 2
    # Clamp against tiny negative / >1 values from rounding.
    a = np.clip(a, 0.0, 1.0)
    central = 2.0 * np.arcsin(np.sqrt(a))
    return EARTH_RADIUS_MILES * central


def great_circle_miles(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance in miles between two :class:`GeoPoint`."""
    return float(haversine_miles(a.lat, a.lon, b.lat, b.lon))


def pairwise_distance_matrix(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Full n x n great-circle distance matrix in miles.

    Intended for small-to-medium point sets (exact pair counting in the
    distance-preference analysis and its tests).  Memory is O(n^2); callers
    with large n should use the grid-based estimator instead.

    Raises:
        GeoError: if the coordinate arrays are not equal-length 1-D arrays.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise GeoError(
            f"expected equal-length 1-D arrays, got {lats.shape} and {lons.shape}"
        )
    return np.asarray(
        haversine_miles(lats[:, None], lons[:, None], lats[None, :], lons[None, :])
    )


def link_lengths_miles(
    lats: np.ndarray,
    lons: np.ndarray,
    endpoint_a: np.ndarray,
    endpoint_b: np.ndarray,
) -> np.ndarray:
    """Lengths in miles of links given as index pairs into coordinate arrays.

    Args:
        lats, lons: node coordinates in degrees.
        endpoint_a, endpoint_b: integer arrays of node indices, one entry
            per link.

    Raises:
        GeoError: if any index is out of range.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    a = np.asarray(endpoint_a, dtype=np.intp)
    b = np.asarray(endpoint_b, dtype=np.intp)
    n = lats.shape[0]
    if a.size and (a.min() < 0 or a.max() >= n):
        raise GeoError("link endpoint index out of range")
    if b.size and (b.min() < 0 or b.max() >= n):
        raise GeoError("link endpoint index out of range")
    return np.asarray(haversine_miles(lats[a], lons[a], lats[b], lons[b]))
