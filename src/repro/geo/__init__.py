"""Geometry substrate: coordinates, distances, regions, grids, hulls.

Everything geographic in the reproduction flows through this subpackage:
great-circle distances in miles, the paper's Table II region boxes, the
75-arc-minute patch grid of Section IV, the Albers projection + convex
hulls of Section VI, and the box-counting dimension estimator.
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    EARTH_RADIUS_MILES,
    GeoPoint,
    arrays_to_points,
    normalize_longitude,
    points_to_arrays,
    validate_latitude,
    validate_longitude,
)
from repro.geo.distance import (
    great_circle_miles,
    haversine_miles,
    link_lengths_miles,
    pairwise_distance_matrix,
)
from repro.geo.fractal import BoxCountResult, box_counting_dimension
from repro.geo.grid import PAPER_PATCH_ARCMIN, PatchGrid, joint_tally
from repro.geo.hull import convex_hull, convex_hull_area, polygon_area
from repro.geo.projection import (
    WORLD_ALBERS,
    AlbersEqualArea,
    equirectangular_miles,
)
from repro.geo.regions import (
    ECONOMIC_REGIONS,
    EUROPE,
    HOMOGENEITY_REGIONS,
    JAPAN,
    STUDY_REGIONS,
    US,
    WORLD,
    Region,
    region_by_name,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "EARTH_RADIUS_MILES",
    "GeoPoint",
    "arrays_to_points",
    "normalize_longitude",
    "points_to_arrays",
    "validate_latitude",
    "validate_longitude",
    "great_circle_miles",
    "haversine_miles",
    "link_lengths_miles",
    "pairwise_distance_matrix",
    "BoxCountResult",
    "box_counting_dimension",
    "PAPER_PATCH_ARCMIN",
    "PatchGrid",
    "joint_tally",
    "convex_hull",
    "convex_hull_area",
    "polygon_area",
    "WORLD_ALBERS",
    "AlbersEqualArea",
    "equirectangular_miles",
    "ECONOMIC_REGIONS",
    "EUROPE",
    "HOMOGENEITY_REGIONS",
    "JAPAN",
    "STUDY_REGIONS",
    "US",
    "WORLD",
    "Region",
    "region_by_name",
]
