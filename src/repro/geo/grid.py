"""Arc-minute patch grids over a region.

Section IV of the paper subdivides each study region into patches of
75 x 75 arc-minutes (about 90 miles on a side at the latitudes studied)
and tallies population and routers/interfaces per patch.  The same grid
machinery also backs the grid-based pair-count approximation used by the
distance-preference analysis at large n.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeoError
from repro.geo.distance import haversine_miles
from repro.geo.regions import Region

#: The paper's patch edge, in arc-minutes.
PAPER_PATCH_ARCMIN = 75.0


@dataclass(frozen=True)
class PatchGrid:
    """A rectangular grid of equal-angle patches covering a region.

    Cells are indexed ``(row, col)`` with row 0 at the region's southern
    edge and col 0 at its western edge.  The final row/column may be
    fractionally smaller in angle if the region span is not an exact
    multiple of the cell size; points on the region boundary land in the
    last cell.

    Attributes:
        region: the covered bounding box.
        cell_arcmin: cell edge length in arc-minutes (same in lat and lon).
    """

    region: Region
    cell_arcmin: float = PAPER_PATCH_ARCMIN

    def __post_init__(self) -> None:
        if not (self.cell_arcmin > 0):
            raise GeoError(f"cell_arcmin must be positive, got {self.cell_arcmin}")

    @property
    def cell_deg(self) -> float:
        """Cell edge in degrees."""
        return self.cell_arcmin / 60.0

    @property
    def n_rows(self) -> int:
        """Number of rows (south to north)."""
        return max(1, int(np.ceil(self.region.lat_span / self.cell_deg - 1e-9)))

    @property
    def n_cols(self) -> int:
        """Number of columns (west to east)."""
        return max(1, int(np.ceil(self.region.lon_span / self.cell_deg - 1e-9)))

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.n_rows * self.n_cols

    def cell_index(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Flat cell index for each point; -1 for points outside the region."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        rows = np.floor((lats - self.region.south) / self.cell_deg).astype(np.intp)
        cols = np.floor((lons - self.region.west) / self.cell_deg).astype(np.intp)
        inside = self.region.contains_mask(lats, lons)
        # Boundary points on the north/east edge snap into the last cell.
        rows = np.clip(rows, 0, self.n_rows - 1)
        cols = np.clip(cols, 0, self.n_cols - 1)
        flat = rows * self.n_cols + cols
        return np.where(inside, flat, -1)

    def tally(self, lats: np.ndarray, lons: np.ndarray,
              weights: np.ndarray | None = None) -> np.ndarray:
        """Sum per-cell weights (or counts) of the given points.

        Points outside the region are ignored.

        Returns:
            A 1-D array of length :attr:`n_cells` of per-cell totals.
        """
        idx = self.cell_index(lats, lons)
        keep = idx >= 0
        idx = idx[keep]
        if weights is None:
            w = np.ones(idx.shape[0], dtype=float)
        else:
            w = np.asarray(weights, dtype=float)[keep]
        return np.bincount(idx, weights=w, minlength=self.n_cells)

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lats, lons)`` of every cell centre, in flat-index order."""
        rows = np.arange(self.n_rows, dtype=float)
        cols = np.arange(self.n_cols, dtype=float)
        lat_centers = self.region.south + (rows + 0.5) * self.cell_deg
        lon_centers = self.region.west + (cols + 0.5) * self.cell_deg
        lat_centers = np.minimum(lat_centers, self.region.north)
        lon_centers = np.minimum(lon_centers, self.region.east)
        lat_grid, lon_grid = np.meshgrid(lat_centers, lon_centers, indexing="ij")
        return lat_grid.ravel(), lon_grid.ravel()

    def cell_edge_miles(self) -> float:
        """North-south cell edge length in miles.

        The latitude extent is longitude-independent; the paper quotes
        this as "about 90 miles on a side" for 75' cells (the east-west
        edge shrinks with cos(latitude)).
        """
        mid_lat, mid_lon = self.region.center
        half = self.cell_deg / 2.0
        return float(
            haversine_miles(mid_lat - half, mid_lon, mid_lat + half, mid_lon)
        )


def joint_tally(
    grid: PatchGrid,
    pop_lats: np.ndarray,
    pop_lons: np.ndarray,
    pop_weights: np.ndarray,
    node_lats: np.ndarray,
    node_lons: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell (population, node count) pairs over a shared grid.

    This is the Section IV workload: one tally of weighted population
    points and one tally of router/interface points, aligned cell by cell.

    Returns:
        ``(population_per_cell, nodes_per_cell)``.
    """
    population = grid.tally(pop_lats, pop_lons, weights=pop_weights)
    nodes = grid.tally(node_lats, node_lons)
    return population, nodes
