"""Geographic coordinates.

The library works in degrees latitude/longitude on a spherical Earth.
:class:`GeoPoint` is the scalar coordinate type; bulk operations accept
parallel numpy arrays of latitudes and longitudes (in degrees) instead,
because analyses routinely handle hundreds of thousands of points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeoError

#: Mean Earth radius in statute miles (the paper reports miles throughout).
EARTH_RADIUS_MILES = 3958.7613
#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0088
#: Miles per kilometre.
MILES_PER_KM = 0.621371192


def validate_latitude(lat: float) -> float:
    """Return ``lat`` if it is a valid latitude in degrees, else raise.

    Raises:
        GeoError: if ``lat`` is not finite or outside [-90, 90].
    """
    if not math.isfinite(lat):
        raise GeoError(f"latitude must be finite, got {lat!r}")
    if lat < -90.0 or lat > 90.0:
        raise GeoError(f"latitude must be in [-90, 90], got {lat!r}")
    return float(lat)


def validate_longitude(lon: float) -> float:
    """Return ``lon`` if it is a valid longitude in degrees, else raise.

    Raises:
        GeoError: if ``lon`` is not finite or outside [-180, 180].
    """
    if not math.isfinite(lon):
        raise GeoError(f"longitude must be finite, got {lon!r}")
    if lon < -180.0 or lon > 180.0:
        raise GeoError(f"longitude must be in [-180, 180], got {lon!r}")
    return float(lon)


def normalize_longitude(lon: float) -> float:
    """Wrap an arbitrary finite longitude into [-180, 180)."""
    if not math.isfinite(lon):
        raise GeoError(f"longitude must be finite, got {lon!r}")
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface, in degrees.

    Attributes:
        lat: latitude in degrees, in [-90, 90].
        lon: longitude in degrees, in [-180, 180].
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_latitude(self.lat)
        validate_longitude(self.lon)

    def rounded(self, decimals: int = 1) -> "GeoPoint":
        """Return this point rounded to ``decimals`` decimal degrees.

        Used to define "distinct locations" when counting how many places
        an AS occupies (Section VI of the paper): two interfaces share a
        location if their rounded coordinates coincide.
        """
        return GeoPoint(round(self.lat, decimals), round(self.lon, decimals))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)


def points_to_arrays(points: list[GeoPoint]) -> tuple[np.ndarray, np.ndarray]:
    """Convert a list of :class:`GeoPoint` to ``(lats, lons)`` arrays."""
    if not points:
        return np.empty(0, dtype=float), np.empty(0, dtype=float)
    lats = np.fromiter((p.lat for p in points), dtype=float, count=len(points))
    lons = np.fromiter((p.lon for p in points), dtype=float, count=len(points))
    return lats, lons


def arrays_to_points(lats: np.ndarray, lons: np.ndarray) -> list[GeoPoint]:
    """Convert parallel coordinate arrays into a list of :class:`GeoPoint`.

    Raises:
        GeoError: if the arrays differ in length or hold invalid values.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise GeoError(
            f"expected equal-length 1-D arrays, got {lats.shape} and {lons.shape}"
        )
    return [GeoPoint(float(lat), float(lon)) for lat, lon in zip(lats, lons)]
