"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses exist per
substrate so tests and downstream users can discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A scenario or component configuration is invalid."""


class GeoError(ReproError):
    """Invalid geographic input (bad latitude/longitude, empty region...)."""


class ProjectionError(GeoError):
    """A map projection cannot be applied to the given input."""


class AddressError(ReproError):
    """Invalid IPv4 address or prefix."""


class AllocationError(AddressError):
    """The address allocator ran out of space or was misused."""


class TopologyError(ReproError):
    """Inconsistent topology state (unknown router, duplicate link...)."""


class RoutingError(ReproError):
    """A forwarding path could not be computed."""


class MeasurementError(ReproError):
    """A measurement simulator was driven with invalid input."""


class GeolocationError(ReproError):
    """A geolocation simulator was driven with invalid input."""


class DatasetError(ReproError):
    """A processed dataset is malformed or inconsistent."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on unusable data."""


class StageGraphError(ReproError):
    """A pipeline stage graph is malformed (cycle, unknown input...)."""


class CacheError(ReproError):
    """The artifact cache was misused or its store is unusable."""


class ReportError(ReproError):
    """A run report is missing, malformed, or fails schema validation."""


class SweepError(ReproError):
    """A sweep campaign spec, store, or engine was misused."""


class ServeError(ReproError):
    """The snapshot query service was misused or refused a request."""


class IngestError(ReproError):
    """A measurement delta, WAL record, or ingest state is invalid."""


class OverloadError(ServeError):
    """The service shed a request because a bounded queue was full."""


class AnalyticsError(ReproError):
    """The continuous-analytics engine or metric store was misused."""
