"""Streaming ingestion: delta batches -> WAL -> incremental snapshots.

The continuously-updatable serving path: measurement deltas
(:mod:`repro.ingest.deltas`) are journaled to a crash-safe write-ahead
log (:mod:`repro.ingest.wal`), applied incrementally to datasets,
topologies (:mod:`repro.ingest.apply`), and the serving index
(:meth:`repro.serve.index.SnapshotIndex.apply_delta`), and published as
verified generation snapshots that hot-reload the cluster
(:mod:`repro.ingest.publisher`, :mod:`repro.ingest.runner`).
"""

from repro.ingest.apply import (
    PatchInfo,
    apply_to_topology,
    patch_dataset,
    topology_digest,
)
from repro.ingest.deltas import (
    DeltaBatch,
    delta_digest,
    delta_from_bytes,
    delta_to_bytes,
    load_delta,
    save_delta,
)
from repro.ingest.publisher import SnapshotPublisher
from repro.ingest.runner import Ingester, IngestHttpServer
from repro.ingest.wal import WriteAheadLog

__all__ = [
    "DeltaBatch",
    "Ingester",
    "IngestHttpServer",
    "PatchInfo",
    "SnapshotPublisher",
    "WriteAheadLog",
    "apply_to_topology",
    "delta_digest",
    "delta_from_bytes",
    "delta_to_bytes",
    "load_delta",
    "patch_dataset",
    "save_delta",
    "topology_digest",
]
