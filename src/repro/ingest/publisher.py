"""Publishing generation snapshots and driving cluster hot reloads.

The bridge from ingestion to serving: a :class:`SnapshotPublisher`
writes each accumulated snapshot state as a generation ``.npz``
(atomically — temp file, digest verification of what was actually
written, then rename), and optionally drives the cluster coordinator's
existing stage→verify→activate hot-reload flow so live answers flip to
the new generation with zero dropped requests.  Old generation files
are pruned once the fleet no longer needs them.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.datasets.mapped import MappedDataset
from repro.datasets.serialize import load_dataset_npz, save_dataset_npz
from repro.errors import IngestError, ReproError
from repro.obs.bus import publish as bus_publish
from repro.obs.metrics import incr, set_gauge
from repro.obs.report import dataset_digest

#: Generation files an ingester keeps on disk (older ones are pruned;
#: shards hold their staged snapshots in memory, so history is only for
#: operators and late joiners).
DEFAULT_KEEP_GENERATIONS = 3


class SnapshotPublisher:
    """Cuts verified generation snapshots; optionally reloads a cluster.

    Attributes:
        out_dir: directory generation files land in.
        coordinator_url: cluster coordinator base URL (None = no
            cluster; files are still cut and verified).
    """

    def __init__(
        self,
        out_dir: str | Path,
        *,
        coordinator_url: str | None = None,
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
        reload_timeout_s: float = 120.0,
    ) -> None:
        if keep_generations < 1:
            raise IngestError("keep_generations must be >= 1")
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.coordinator_url = coordinator_url
        self.keep_generations = keep_generations
        self.reload_timeout_s = reload_timeout_s

    def generation_path(self, seq: int) -> Path:
        """Where the generation cut at WAL sequence ``seq`` lives."""
        return self.out_dir / f"gen-{seq:08d}.npz"

    def publish(self, dataset: MappedDataset, seq: int) -> dict:
        """Write, verify, and (when clustered) activate one generation.

        The snapshot is written to a temp file, read back, and its
        digest compared against the in-memory dataset's before the
        atomic rename — a torn or bit-flipped write can never become
        the active generation.  Returns JSON-ready publish facts
        (path, hash, and the coordinator's post-reload generation when
        a cluster was driven).

        Raises:
            IngestError: when the written snapshot does not verify or
                the coordinator reload fails.
        """
        expected = dataset_digest(dataset)
        path = self.generation_path(seq)
        tmp = path.with_name(path.name + ".tmp")
        save_dataset_npz(dataset, tmp)
        written = dataset_digest(load_dataset_npz(tmp))
        if written != expected:
            tmp.unlink(missing_ok=True)
            raise IngestError(
                f"snapshot verification failed for seq {seq}: "
                f"wrote {written[:16]}, expected {expected[:16]}"
            )
        os.replace(tmp, path)
        facts = {
            "seq": seq,
            "snapshot": str(path),
            "snapshot_hash": expected,
            "published_unix": round(time.time(), 3),
        }
        incr("ingest.generations_published")
        if self.coordinator_url is not None:
            facts["coordinator"] = self._reload_cluster(path, expected)
        self._prune(keep_path=path)
        bus_publish("ingest.publish", **facts)
        return facts

    def _reload_cluster(self, path: Path, expected_hash: str) -> dict:
        """Drive the coordinator's stage→verify→activate flow."""
        from repro.serve.client import SnapshotClient

        client = SnapshotClient(
            self.coordinator_url, timeout_s=self.reload_timeout_s
        )
        try:
            result = client.get(
                "admin/reload", snapshot=str(path.resolve())
            )
        except ReproError as exc:
            raise IngestError(
                f"cluster reload of {path.name} failed: {exc}"
            ) from exc
        got = result.get("snapshot_hash")
        if got != expected_hash:
            raise IngestError(
                f"cluster activated hash {str(got)[:16]} but "
                f"{expected_hash[:16]} was published"
            )
        set_gauge("ingest.cluster_gen", float(result.get("gen", 0)))
        return result

    def _prune(self, keep_path: Path) -> None:
        """Delete all but the newest ``keep_generations`` files."""
        gens = sorted(self.out_dir.glob("gen-*.npz"))
        for old in gens[: max(0, len(gens) - self.keep_generations)]:
            if old != keep_path:
                old.unlink(missing_ok=True)
