"""Measurement delta batches: the unit of streaming ingestion.

A :class:`DeltaBatch` carries one arrival's worth of measurement news
against a mapped snapshot, in the vocabulary of
:class:`~repro.datasets.mapped.MappedDataset` nodes (interface
addresses with mapped coordinates and an origin AS):

- **adds** — newly observed interfaces with their mapped location and
  origin AS (a new traceroute's previously unseen hops);
- **links** — newly observed adjacencies, as address pairs (the
  consecutive-hop edges of new traceroutes);
- **moves** — geolocation refinements: an already-known address whose
  mapped coordinates changed (a better DNS LOC record, say);
- **remaps** — AS-mapping changes: an address whose origin AS changed
  (a BGP table update re-homed its covering prefix).

Batches are immutable value objects with a canonical binary form
(:func:`delta_to_bytes` / :func:`delta_from_bytes`, an ``.npz``
archive in memory) and a content digest over the logical arrays
(:func:`delta_digest`) that is independent of zip-container
bookkeeping, so equal batches hash equal everywhere.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.errors import IngestError

_FORMAT_VERSION = 1

#: (field name, dtype) of every array field, in canonical digest order.
_ARRAY_FIELDS = (
    ("add_addresses", np.int64),
    ("add_lats", np.float64),
    ("add_lons", np.float64),
    ("add_asns", np.int64),
    ("add_links", np.int64),
    ("move_addresses", np.int64),
    ("move_lats", np.float64),
    ("move_lons", np.float64),
    ("remap_addresses", np.int64),
    ("remap_asns", np.int64),
)


def _empty(dtype, shape=(0,)) -> np.ndarray:
    return np.empty(shape, dtype=dtype)


@dataclass(frozen=True)
class DeltaBatch:
    """One immutable batch of measurement deltas.

    Attributes:
        add_addresses, add_lats, add_lons, add_asns: parallel arrays of
            newly observed interfaces.
        add_links: ``(m, 2)`` int64 array of *address* pairs (not row
            indices — rows are a property of one snapshot build).
        move_addresses, move_lats, move_lons: geolocation updates.
        remap_addresses, remap_asns: AS-mapping changes.
        created_unix: arrival wall-clock stamp (0.0 until the ingester
            stamps it at journaling time); feeds freshness metrics.
    """

    add_addresses: np.ndarray = None  # type: ignore[assignment]
    add_lats: np.ndarray = None  # type: ignore[assignment]
    add_lons: np.ndarray = None  # type: ignore[assignment]
    add_asns: np.ndarray = None  # type: ignore[assignment]
    add_links: np.ndarray = None  # type: ignore[assignment]
    move_addresses: np.ndarray = None  # type: ignore[assignment]
    move_lats: np.ndarray = None  # type: ignore[assignment]
    move_lons: np.ndarray = None  # type: ignore[assignment]
    remap_addresses: np.ndarray = None  # type: ignore[assignment]
    remap_asns: np.ndarray = None  # type: ignore[assignment]
    created_unix: float = 0.0

    def __post_init__(self) -> None:
        for name, dtype in _ARRAY_FIELDS:
            value = getattr(self, name)
            if value is None:
                shape = (0, 2) if name == "add_links" else (0,)
                value = _empty(dtype, shape)
            else:
                value = np.asarray(value, dtype=dtype)
            object.__setattr__(self, name, value)
        n = self.add_addresses.shape[0]
        for name in ("add_lats", "add_lons", "add_asns"):
            if getattr(self, name).shape != (n,):
                raise IngestError(f"{name} is not parallel to add_addresses")
        if self.add_links.size and (
            self.add_links.ndim != 2 or self.add_links.shape[1] != 2
        ):
            raise IngestError("add_links must be an (m, 2) address-pair array")
        if not self.add_links.size:
            object.__setattr__(
                self, "add_links", _empty(np.int64, (0, 2))
            )
        m = self.move_addresses.shape[0]
        for name in ("move_lats", "move_lons"):
            if getattr(self, name).shape != (m,):
                raise IngestError(f"{name} is not parallel to move_addresses")
        if self.remap_asns.shape != self.remap_addresses.shape:
            raise IngestError("remap_asns is not parallel to remap_addresses")
        if self.add_addresses.size and (
            np.unique(self.add_addresses).size != self.add_addresses.size
        ):
            raise IngestError("add_addresses contains duplicates")
        for name in ("add_lats", "add_lons", "move_lats", "move_lons"):
            value = getattr(self, name)
            if value.size and not np.all(np.isfinite(value)):
                raise IngestError(f"{name} contains non-finite coordinates")
        for prefix in ("add", "move"):
            lats = getattr(self, f"{prefix}_lats")
            lons = getattr(self, f"{prefix}_lons")
            if lats.size and (lats.min() < -90.0 or lats.max() > 90.0):
                raise IngestError(f"{prefix}_lats out of [-90, 90]")
            if lons.size and (lons.min() < -180.0 or lons.max() > 180.0):
                raise IngestError(f"{prefix}_lons out of [-180, 180]")
        if self.add_links.size and np.any(
            self.add_links[:, 0] == self.add_links[:, 1]
        ):
            raise IngestError("add_links contains a self-loop")

    # -- shape ---------------------------------------------------------------

    @property
    def n_adds(self) -> int:
        """Number of newly observed interfaces."""
        return int(self.add_addresses.shape[0])

    @property
    def n_links(self) -> int:
        """Number of newly observed adjacencies."""
        return int(self.add_links.shape[0]) if self.add_links.size else 0

    @property
    def n_moves(self) -> int:
        """Number of geolocation updates."""
        return int(self.move_addresses.shape[0])

    @property
    def n_remaps(self) -> int:
        """Number of AS-mapping changes."""
        return int(self.remap_addresses.shape[0])

    @property
    def n_ops(self) -> int:
        """Total operations carried by this batch."""
        return self.n_adds + self.n_links + self.n_moves + self.n_remaps

    def is_empty(self) -> bool:
        """True when the batch carries no operations at all."""
        return self.n_ops == 0

    def stamped(self, created_unix: float) -> "DeltaBatch":
        """The same batch with an arrival stamp (for freshness metrics)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["created_unix"] = float(created_unix)
        return DeltaBatch(**values)

    def summary(self) -> dict:
        """JSON-ready operation counts."""
        return {
            "adds": self.n_adds,
            "links": self.n_links,
            "moves": self.n_moves,
            "remaps": self.n_remaps,
            "created_unix": round(self.created_unix, 3),
        }


def delta_digest(batch: DeltaBatch) -> str:
    """SHA-256 over the batch's logical arrays, container-independent.

    Hashing the raw field bytes (name, shape, then array data, in the
    fixed :data:`_ARRAY_FIELDS` order) rather than the serialised
    archive keeps the digest stable across zip metadata differences.
    ``created_unix`` is deliberately excluded: the same measurement news
    arriving at a different time is the same content.
    """
    h = hashlib.sha256()
    for name, _ in _ARRAY_FIELDS:
        value = getattr(batch, name)
        h.update(name.encode("ascii"))
        h.update(repr(value.shape).encode("ascii"))
        h.update(np.ascontiguousarray(value).tobytes())
    return h.hexdigest()


def delta_to_bytes(batch: DeltaBatch) -> bytes:
    """Serialise one batch to an in-memory ``.npz`` archive."""
    buffer = io.BytesIO()
    arrays = {name: getattr(batch, name) for name, _ in _ARRAY_FIELDS}
    np.savez_compressed(
        buffer,
        format_version=np.int64(_FORMAT_VERSION),
        created_unix=np.float64(batch.created_unix),
        **arrays,
    )
    return buffer.getvalue()


def delta_from_bytes(payload: bytes) -> DeltaBatch:
    """Rebuild a batch written by :func:`delta_to_bytes`.

    Raises:
        IngestError: when the payload is not a delta archive or has a
            version/field mismatch.
    """
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise IngestError(
                    f"unsupported delta format version {version!r}"
                )
            values = {
                name: data[name].astype(dtype)
                for name, dtype in _ARRAY_FIELDS
            }
            created = float(data["created_unix"])
    except KeyError as exc:
        raise IngestError(f"delta payload missing field {exc}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise IngestError(f"payload is not a delta archive: {exc}") from exc
    return DeltaBatch(created_unix=created, **values)


def save_delta(batch: DeltaBatch, path: str | Path) -> None:
    """Write one batch to a ``.npz`` delta file (the spool format)."""
    Path(path).write_bytes(delta_to_bytes(batch))


def load_delta(path: str | Path) -> DeltaBatch:
    """Read a delta file written by :func:`save_delta`.

    Raises:
        IngestError: when the file is missing or not a delta archive.
    """
    try:
        payload = Path(path).read_bytes()
    except OSError as exc:
        raise IngestError(f"cannot read delta from {path}: {exc}") from exc
    return delta_from_bytes(payload)
