"""Applying delta batches to snapshots and topologies.

Two application targets share the :class:`~repro.ingest.deltas.DeltaBatch`
vocabulary:

- :func:`patch_dataset` — the serving path: pure-functional patch of a
  :class:`~repro.datasets.mapped.MappedDataset` (old rows keep their
  indices, adds append), returning a :class:`PatchInfo` describing
  exactly which rows changed so :class:`~repro.serve.index.SnapshotIndex`
  can re-derive only the affected structures;
- :func:`apply_to_topology` — the ground-truth path: in-place mutation
  of the SoA :class:`~repro.net.topology.Topology` through its append
  paths, so a WAL replay reconstructs the same world state
  (:func:`topology_digest` is the replay-equality witness).

Both raise :class:`~repro.errors.IngestError` on deltas that do not fit
the target (unknown addresses, re-added interfaces, duplicate links), so
a journaled stream either applies cleanly or fails loudly — never half.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.datasets.mapped import MappedDataset
from repro.errors import IngestError, TopologyError
from repro.geo.coords import GeoPoint
from repro.ingest.deltas import DeltaBatch
from repro.net.elements import AutonomousSystem
from repro.net.topology import Topology

#: Routers whose dataset origin AS is unmapped (:data:`UNMAPPED_ASN`)
#: are homed under this private-use ASN in the ground-truth topology,
#: because :class:`AutonomousSystem` requires a positive ASN.
STUB_UNMAPPED_ASN = 64512


@dataclass(frozen=True)
class PatchInfo:
    """Which rows of the patched dataset differ from the old one.

    Row indices refer to the *new* dataset; rows below ``n_old_nodes``
    existed before the patch at the same index (adds strictly append).

    Attributes:
        n_old_nodes, n_old_links: shape of the pre-patch dataset.
        added_rows: rows of newly added nodes (``n_old_nodes ..``).
        moved_rows: rows whose coordinates changed.
        remapped_rows: rows whose origin AS changed.
        new_link_rows: indices into the new ``links`` array of the
            appended links.
    """

    n_old_nodes: int
    n_old_links: int
    added_rows: np.ndarray
    moved_rows: np.ndarray
    remapped_rows: np.ndarray
    new_link_rows: np.ndarray


def _resolve_rows(
    table: np.ndarray, queries: np.ndarray, *, what: str
) -> np.ndarray:
    """Row index of each query address in ``table``.

    Raises:
        IngestError: when any query address is absent.
    """
    if queries.size == 0:
        return np.empty(0, dtype=np.intp)
    if table.size == 0:
        raise IngestError(f"{what} references unknown address "
                          f"{int(queries[0])}")
    order = np.argsort(table, kind="stable")
    sorted_table = table[order]
    pos = np.searchsorted(sorted_table, queries)
    pos = np.minimum(pos, sorted_table.shape[0] - 1)
    missing = sorted_table[pos] != queries
    if np.any(missing):
        bad = queries[missing][0]
        raise IngestError(f"{what} references unknown address {int(bad)}")
    return order[pos].astype(np.intp)


def patch_dataset(
    dataset: MappedDataset, batch: DeltaBatch
) -> tuple[MappedDataset, PatchInfo]:
    """Apply one delta batch to a mapped dataset, pure-functionally.

    Old rows keep their indices; added nodes append in batch order;
    added links append in batch order.  Moves and remaps may target
    addresses added by the *same* batch (add-then-refine streams).

    Raises:
        IngestError: when an add re-observes a known address, a move or
            remap targets an unknown address, or a link duplicates an
            existing adjacency (either orientation) or lacks endpoints.
    """
    n_old = dataset.n_nodes
    if batch.add_addresses.size and dataset.addresses.size:
        clash = np.isin(batch.add_addresses, dataset.addresses)
        if np.any(clash):
            bad = batch.add_addresses[clash][0]
            raise IngestError(f"address {int(bad)} already exists")
    addresses = np.concatenate([dataset.addresses, batch.add_addresses])
    lats = np.concatenate([dataset.lats, batch.add_lats])
    lons = np.concatenate([dataset.lons, batch.add_lons])
    asns = np.concatenate([dataset.asns, batch.add_asns])
    n_new = addresses.shape[0]

    if batch.add_links.size:
        end_a = _resolve_rows(
            addresses, batch.add_links[:, 0], what="add_links"
        )
        end_b = _resolve_rows(
            addresses, batch.add_links[:, 1], what="add_links"
        )
        new_pairs = np.column_stack([end_a, end_b]).astype(np.intp)
        lo = np.minimum(end_a, end_b).astype(np.int64)
        hi = np.maximum(end_a, end_b).astype(np.int64)
        new_keys = lo * n_new + hi
        if np.unique(new_keys).size != new_keys.size:
            raise IngestError("add_links contains a duplicate adjacency")
        if dataset.links.size:
            old_lo = np.minimum(dataset.links[:, 0], dataset.links[:, 1])
            old_hi = np.maximum(dataset.links[:, 0], dataset.links[:, 1])
            old_keys = old_lo.astype(np.int64) * n_new + old_hi
            dup = np.isin(new_keys, old_keys)
            if np.any(dup):
                a, b = new_pairs[dup][0]
                raise IngestError(
                    f"link between rows {int(a)} and {int(b)} "
                    "already exists"
                )
    else:
        new_pairs = np.empty((0, 2), dtype=np.intp)
    if dataset.links.size:
        links = np.concatenate(
            [dataset.links, new_pairs.astype(dataset.links.dtype)]
        )
    else:
        links = new_pairs

    moved_rows = _resolve_rows(
        addresses, batch.move_addresses, what="move_addresses"
    )
    if moved_rows.size:
        if np.unique(moved_rows).size != moved_rows.size:
            raise IngestError("move_addresses contains duplicates")
        lats[moved_rows] = batch.move_lats
        lons[moved_rows] = batch.move_lons
    remapped_rows = _resolve_rows(
        addresses, batch.remap_addresses, what="remap_addresses"
    )
    if remapped_rows.size:
        if np.unique(remapped_rows).size != remapped_rows.size:
            raise IngestError("remap_addresses contains duplicates")
        asns[remapped_rows] = batch.remap_asns

    patched = MappedDataset(
        label=dataset.label,
        kind=dataset.kind,
        addresses=addresses,
        lats=lats,
        lons=lons,
        asns=asns,
        links=links,
    )
    info = PatchInfo(
        n_old_nodes=n_old,
        n_old_links=dataset.n_links,
        added_rows=np.arange(n_old, n_new, dtype=np.intp),
        moved_rows=moved_rows,
        remapped_rows=remapped_rows,
        new_link_rows=np.arange(
            dataset.n_links, dataset.n_links + new_pairs.shape[0],
            dtype=np.intp,
        ),
    )
    return patched, info


# -- ground-truth topology application ---------------------------------------


def _ensure_ases(
    topology: Topology, asns: np.ndarray, lats: np.ndarray, lons: np.ndarray
) -> None:
    """Register stub ASes for any mapped ASN the topology lacks.

    The headquarters is placed at the first delta node homed there (the
    only location evidence a measurement stream carries).
    """
    for asn in np.unique(asns).tolist():
        if asn in topology.asns:
            continue
        where = np.nonzero(asns == asn)[0]
        if where.size:
            hq = GeoPoint(float(lats[where[0]]), float(lons[where[0]]))
        else:
            hq = GeoPoint(0.0, 0.0)
        topology.add_as(AutonomousSystem(asn=int(asn), name=f"AS{asn}",
                                         headquarters=hq))


def _homed_asns(asns: np.ndarray) -> np.ndarray:
    """Dataset origin ASNs mapped into topology-legal (positive) ASNs."""
    return np.where(asns > 0, asns, STUB_UNMAPPED_ASN).astype(np.int64)


def _router_ids_of(topology: Topology, addresses: np.ndarray,
                   *, what: str) -> np.ndarray:
    """Owning router id per interface address.

    Raises:
        IngestError: when any address is unknown to the topology.
    """
    pos = topology.interface_positions(addresses)
    if np.any(pos < 0):
        bad = addresses[pos < 0][0]
        raise IngestError(f"{what} references unknown address {int(bad)}")
    return topology.interface_routers()[pos].astype(np.intp)


def apply_to_topology(topology: Topology, batch: DeltaBatch) -> None:
    """Mutate a ground-truth topology with one delta batch, in place.

    Added nodes become routers (one per node, loopback = node address)
    via the SoA append path; added links get deterministically
    synthesized fresh interface addresses (``max(existing) + 1``
    onwards, two per link in batch order), so replaying the same WAL
    always rebuilds the identical state.  Unmapped origin ASes home
    under :data:`STUB_UNMAPPED_ASN`.

    Raises:
        IngestError: when the batch does not fit this topology
            (re-added address, unknown move/remap target, duplicate or
            self-loop link).
    """
    try:
        if batch.n_adds:
            homed = _homed_asns(batch.add_asns)
            _ensure_ases(topology, homed, batch.add_lats, batch.add_lons)
            for asn in np.unique(homed).tolist():
                members = np.nonzero(homed == asn)[0]
                topology.add_routers(
                    int(asn),
                    batch.add_lats[members],
                    batch.add_lons[members],
                    "",
                    batch.add_addresses[members],
                )
        if batch.n_links:
            ids_a = _router_ids_of(
                topology, batch.add_links[:, 0], what="add_links"
            )
            ids_b = _router_ids_of(
                topology, batch.add_links[:, 1], what="add_links"
            )
            existing = topology.interface_addresses()
            base = int(existing.max()) + 1 if existing.size else 1
            count = batch.n_links
            iface_a = np.arange(
                base, base + 2 * count, 2, dtype=np.int64
            )
            iface_b = iface_a + 1
            topology.add_links(ids_a, ids_b, iface_a, iface_b)
        if batch.n_moves:
            ids = _router_ids_of(
                topology, batch.move_addresses, what="move_addresses"
            )
            topology.move_routers(ids, batch.move_lats, batch.move_lons)
        if batch.n_remaps:
            homed = _homed_asns(batch.remap_asns)
            _ensure_ases(
                topology, homed,
                np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64),
            )
            ids = _router_ids_of(
                topology, batch.remap_addresses, what="remap_addresses"
            )
            topology.set_router_asns(ids, homed)
    except TopologyError as exc:
        raise IngestError(f"delta does not fit the topology: {exc}") from exc


def topology_digest(topology: Topology) -> str:
    """SHA-256 over a topology's full logical state.

    Covers every SoA column (routers, links, interfaces), city codes,
    hostnames, and the registered AS inventory — two topologies with
    equal digests answer every structural query identically.  This is
    the replay-equality witness for WAL round-trip tests.
    """
    h = hashlib.sha256()

    def _arr(array: np.ndarray) -> None:
        h.update(repr((array.dtype.str, array.shape)).encode("ascii"))
        h.update(np.ascontiguousarray(array).tobytes())

    lats, lons = topology.router_coordinates()
    _arr(lats)
    _arr(lons)
    _arr(topology.router_asns())
    _arr(topology.router_loopbacks())
    h.update("\x00".join(topology.router_city_codes()).encode("utf-8"))
    end_a, end_b = topology.link_endpoints()
    _arr(end_a)
    _arr(end_b)
    ifc_a, ifc_b = topology.link_interfaces()
    _arr(ifc_a)
    _arr(ifc_b)
    _arr(topology.interface_addresses())
    _arr(topology.interface_routers())
    _arr(topology.interface_links())
    for address in sorted(topology.hostnames):
        h.update(f"{address}={topology.hostnames[address]}\x00".encode())
    for asn in sorted(topology.asns):
        asys = topology.asns[asn]
        h.update(
            f"{asn}:{asys.name}:{asys.headquarters.lat!r}:"
            f"{asys.headquarters.lon!r}:{asys.tier}\x00".encode()
        )
    return h.hexdigest()
