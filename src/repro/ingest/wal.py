"""Append-only write-ahead log for measurement delta batches.

Every batch is journaled *before* it is applied, so ingest state is
always reconstructible: base snapshot + WAL replay = current topology.
The file layout is a fixed header followed by self-describing records::

    file   := "RWAL" u32(version)
    record := "RDB1" u64(seq) u64(payload_len) sha256(payload) payload

- **sequence numbers** are dense and ascending from 1; the reader
  rejects any gap or regression, so a record can never be applied
  twice or out of order;
- **content hashes** make torn writes detectable: on open the log is
  scanned to the last record whose length and digest both check out,
  and anything after it (a partial header, a short payload, a corrupt
  byte) is truncated away — the classic redo-log recovery contract;
- **appends** are flushed and ``fsync``\\ ed by default, so an
  acknowledged ``append`` survives a process kill.

The log stores opaque payload bytes; the delta-aware conveniences
(:meth:`WriteAheadLog.append_delta` / :meth:`replay_deltas`) wrap
:mod:`repro.ingest.deltas` serialisation around them.
"""

from __future__ import annotations

import os
import struct
import hashlib
import threading
from pathlib import Path
from typing import Iterator

from repro.errors import IngestError
from repro.ingest.deltas import DeltaBatch, delta_from_bytes, delta_to_bytes

_FILE_MAGIC = b"RWAL"
_FILE_VERSION = 1
_FILE_HEADER = struct.Struct("<4sI")
_RECORD_MAGIC = b"RDB1"
_RECORD_HEADER = struct.Struct("<4sQQ32s")

#: Refuse absurd record lengths outright (also bounds corrupt headers).
MAX_RECORD_BYTES = 1 << 30


class WriteAheadLog:
    """Crash-safe append-only journal of sequence-numbered records."""

    def __init__(self, path: str | Path, *, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self._lock = threading.Lock()
        self._last_seq = 0
        self._n_records = 0
        self._truncated_bytes = 0
        self._end_offset = _FILE_HEADER.size
        self._open()

    # -- recovery ------------------------------------------------------------

    def _open(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("wb") as handle:
                handle.write(_FILE_HEADER.pack(_FILE_MAGIC, _FILE_VERSION))
                handle.flush()
                os.fsync(handle.fileno())
            self._handle = self.path.open("r+b")
            self._handle.seek(0, os.SEEK_END)
            return
        handle = self.path.open("r+b")
        header = handle.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            handle.close()
            raise IngestError(f"{self.path} is not a WAL file (short header)")
        magic, version = _FILE_HEADER.unpack(header)
        if magic != _FILE_MAGIC:
            handle.close()
            raise IngestError(f"{self.path} is not a WAL file (bad magic)")
        if version != _FILE_VERSION:
            handle.close()
            raise IngestError(
                f"{self.path} has unsupported WAL version {version}"
            )
        # Scan to the last intact record; truncate any torn tail.
        good_end = _FILE_HEADER.size
        while True:
            raw = handle.read(_RECORD_HEADER.size)
            if len(raw) < _RECORD_HEADER.size:
                break
            rmagic, seq, length, digest = _RECORD_HEADER.unpack(raw)
            if (
                rmagic != _RECORD_MAGIC
                or seq != self._last_seq + 1
                or length > MAX_RECORD_BYTES
            ):
                break
            payload = handle.read(length)
            if len(payload) < length:
                break
            if hashlib.sha256(payload).digest() != digest:
                break
            self._last_seq = seq
            self._n_records += 1
            good_end = handle.tell()
        file_size = self.path.stat().st_size
        if file_size > good_end:
            self._truncated_bytes = file_size - good_end
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
        handle.seek(good_end)
        self._handle = handle
        self._end_offset = good_end

    # -- writing -------------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Durably journal one record; returns its sequence number.

        Raises:
            IngestError: on an oversized payload or a closed log.
        """
        if len(payload) > MAX_RECORD_BYTES:
            raise IngestError(
                f"record of {len(payload)} bytes exceeds the WAL limit"
            )
        with self._lock:
            if self._handle.closed:
                raise IngestError("the WAL has been closed")
            seq = self._last_seq + 1
            digest = hashlib.sha256(payload).digest()
            self._handle.write(
                _RECORD_HEADER.pack(_RECORD_MAGIC, seq, len(payload), digest)
            )
            self._handle.write(payload)
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._last_seq = seq
            self._n_records += 1
            self._end_offset = self._handle.tell()
            return seq

    def append_delta(self, batch: DeltaBatch) -> int:
        """Journal one delta batch; returns its sequence number."""
        return self.append(delta_to_bytes(batch))

    # -- reading -------------------------------------------------------------

    def entries(self, after_seq: int = 0) -> Iterator[tuple[int, bytes]]:
        """Yield ``(seq, payload)`` for every record with seq > after_seq.

        Reads through a separate handle, so replay and append can
        overlap; only records already durable at call time are yielded.
        """
        end = self._end_offset
        with self.path.open("rb") as handle:
            handle.seek(_FILE_HEADER.size)
            while handle.tell() < end:
                raw = handle.read(_RECORD_HEADER.size)
                if len(raw) < _RECORD_HEADER.size:
                    break
                _, seq, length, _ = _RECORD_HEADER.unpack(raw)
                payload = handle.read(length)
                if len(payload) < length:
                    break
                if seq > after_seq:
                    yield seq, payload

    def replay_deltas(
        self, after_seq: int = 0
    ) -> Iterator[tuple[int, DeltaBatch]]:
        """Yield ``(seq, DeltaBatch)`` for every journaled batch > after_seq.

        Raises:
            IngestError: when a durable record does not decode as a
                delta batch (version mismatch — not corruption, which
                recovery already truncated).
        """
        for seq, payload in self.entries(after_seq):
            yield seq, delta_from_bytes(payload)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    def stats(self) -> dict:
        """JSON-ready journal facts."""
        return {
            "path": str(self.path),
            "last_seq": self._last_seq,
            "n_records": self._n_records,
            "size_bytes": self._end_offset,
            "truncated_bytes": self._truncated_bytes,
            "sync": self.sync,
        }

    def close(self) -> None:
        """Close the append handle (reads stay possible via new logs)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
