"""The ingester: WAL-journaled, incrementally indexed, auto-published.

An :class:`Ingester` owns one ingest directory holding the write-ahead
log, a checkpoint, and the published generation files::

    out_dir/
      ingest.wal        append-only delta journal
      checkpoint.json   last published (seq, gen, snapshot, hash)
      gen-<seq>.npz     published generations (newest few)

Every submitted batch is journaled *before* it is applied, and the
checkpoint is written only *after* a generation publishes, so the
invariant ``checkpoint snapshot + WAL[checkpoint.seq+1 ..] = current
state`` holds across any crash: recovery loads the checkpointed
generation, replays only the suffix, and each journaled batch is
applied exactly once.  Batch content digests are remembered so a spool
file that survived a crash between journal and unlink cannot be
journaled twice.

End-to-end freshness (delta arrival → servable generation) feeds the
``ingest.freshness_s`` histogram; counts and sequence numbers export as
counters/gauges through the ambient metrics registry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.datasets.mapped import MappedDataset
from repro.datasets.serialize import load_dataset
from repro.errors import IngestError
from repro.ingest.deltas import DeltaBatch, delta_digest
from repro.ingest.publisher import SnapshotPublisher
from repro.ingest.wal import WriteAheadLog
from repro.obs.bus import publish as bus_publish
from repro.obs.metrics import current_metrics, incr, set_gauge
from repro.serve.index import DEFAULT_CELL_ARCMIN, SnapshotIndex

#: Publish when this many batches are pending...
DEFAULT_PUBLISH_BATCHES = 3
#: ... or when the oldest pending batch is this stale (seconds).
DEFAULT_PUBLISH_AGE_S = 10.0
#: Freshness histogram buckets (seconds from arrival to servable).
FRESHNESS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Ingester:
    """Journals, applies, and publishes measurement delta batches."""

    def __init__(
        self,
        base: MappedDataset | str | Path,
        out_dir: str | Path,
        *,
        cell_arcmin: float = DEFAULT_CELL_ARCMIN,
        publish_batches: int = DEFAULT_PUBLISH_BATCHES,
        publish_age_s: float = DEFAULT_PUBLISH_AGE_S,
        coordinator_url: str | None = None,
        keep_generations: int | None = None,
        sync: bool = True,
    ) -> None:
        if publish_batches < 1:
            raise IngestError("publish_batches must be >= 1")
        if publish_age_s <= 0:
            raise IngestError("publish_age_s must be positive")
        #: Optional analytics observer (see
        #: :class:`repro.analytics.runner.AnalyticsRunner`) — notified
        #: after each applied batch and each published generation.
        #: Attached after construction, so WAL-replayed batches are not
        #: observed (the observer seeds from the recovered index).
        self.observer = None
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.publish_batches = publish_batches
        self.publish_age_s = publish_age_s
        self._cell_arcmin = cell_arcmin
        self._lock = threading.RLock()
        kw = {} if keep_generations is None else {
            "keep_generations": keep_generations
        }
        self.publisher = SnapshotPublisher(
            self.out_dir, coordinator_url=coordinator_url, **kw
        )
        if current_metrics() is not None:
            current_metrics().histogram(
                "ingest.freshness_s", FRESHNESS_BUCKETS
            )

        if isinstance(base, MappedDataset):
            base_dataset = base
        else:
            base_dataset = load_dataset(base)

        # Recovery: checkpointed generation + WAL suffix, exactly once.
        checkpoint = self._read_checkpoint()
        start_seq = 0
        dataset = base_dataset
        self.published_seq = 0
        if checkpoint is not None:
            snap = Path(checkpoint["snapshot"])
            if not snap.is_absolute():
                snap = self.out_dir / snap
            restored = load_dataset(snap)
            from repro.obs.report import dataset_digest

            if dataset_digest(restored) != checkpoint["snapshot_hash"]:
                raise IngestError(
                    f"checkpoint snapshot {snap} does not match its "
                    "recorded hash; refusing to resume from it"
                )
            dataset = restored
            start_seq = int(checkpoint["seq"])
            self.published_seq = start_seq
        self.index = SnapshotIndex(dataset, cell_arcmin)
        if checkpoint is not None:
            # Generation numbers stay monotonic across restarts.
            self.index.gen = int(checkpoint.get("gen", 1))

        self.wal = WriteAheadLog(self.out_dir / "ingest.wal", sync=sync)
        self._seen_digests: set[str] = set()
        self._pending_stamps: list[float] = []
        replayed = 0
        for seq, batch in self.wal.replay_deltas(0):
            self._seen_digests.add(delta_digest(batch))
            if seq > start_seq:
                self.index = self.index.apply_delta(batch)
                self._pending_stamps.append(batch.created_unix)
                replayed += 1
        self.applied_seq = self.wal.last_seq
        self.replayed_batches = replayed
        self._export_gauges()

    # -- checkpoint ----------------------------------------------------------

    @property
    def _checkpoint_path(self) -> Path:
        return self.out_dir / "checkpoint.json"

    def _read_checkpoint(self) -> dict | None:
        try:
            payload = json.loads(self._checkpoint_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise IngestError(f"unreadable ingest checkpoint: {exc}") from exc
        for key in ("seq", "snapshot", "snapshot_hash"):
            if key not in payload:
                raise IngestError(f"ingest checkpoint missing {key!r}")
        return payload

    def _write_checkpoint(self, facts: dict) -> None:
        record = {
            "seq": facts["seq"],
            "snapshot": Path(facts["snapshot"]).name,
            "snapshot_hash": facts["snapshot_hash"],
            "gen": self.index.gen,
            "published_unix": facts["published_unix"],
        }
        tmp = self._checkpoint_path.with_name("checkpoint.json.tmp")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, self._checkpoint_path)

    # -- ingestion -----------------------------------------------------------

    def submit(self, batch: DeltaBatch) -> dict:
        """Journal and apply one batch; publish when thresholds trip.

        Duplicate content (same logical arrays as an already-journaled
        batch) is dropped idempotently — the spool crash-recovery
        contract.  Returns JSON-ready facts about what happened.

        Raises:
            IngestError: when the batch is invalid for the current
                snapshot (nothing is journaled in that case).
        """
        with self._lock:
            digest = delta_digest(batch)
            if digest in self._seen_digests:
                incr("ingest.duplicates_dropped")
                return {"status": "duplicate", "seq": self.applied_seq}
            if batch.created_unix <= 0:
                batch = batch.stamped(time.time())
            # Validate against the live index *before* journaling so a
            # bad batch cannot poison the WAL for every future replay.
            new_index = self.index.apply_delta(batch)
            seq = self.wal.append_delta(batch)
            self.index = new_index
            self._seen_digests.add(digest)
            self.applied_seq = seq
            self._pending_stamps.append(batch.created_unix)
            incr("ingest.batches_ingested")
            incr("ingest.ops_ingested", batch.n_ops)
            if self.observer is not None:
                self.observer.on_apply(batch, self.index)
            self._export_gauges()
            bus_publish(
                "ingest.batch", seq=seq, digest=digest[:16],
                **batch.summary(),
            )
            published = self.maybe_publish()
            return {
                "status": "applied",
                "seq": seq,
                "gen": self.index.gen,
                "published": published is not None,
            }

    def maybe_publish(self, force: bool = False) -> dict | None:
        """Publish when enough batches or enough age accumulated."""
        with self._lock:
            if not self._pending_stamps:
                return None
            oldest = min(
                (s for s in self._pending_stamps if s > 0),
                default=time.time(),
            )
            if (
                force
                or len(self._pending_stamps) >= self.publish_batches
                or time.time() - oldest >= self.publish_age_s
            ):
                return self._publish()
            return None

    def _publish(self) -> dict:
        facts = self.publisher.publish(self.index.dataset, self.applied_seq)
        self._write_checkpoint(facts)
        self.published_seq = self.applied_seq
        now = time.time()
        metrics = current_metrics()
        for stamp in self._pending_stamps:
            if stamp > 0 and metrics is not None:
                metrics.histogram(
                    "ingest.freshness_s", FRESHNESS_BUCKETS
                ).observe(now - stamp)
        self._pending_stamps.clear()
        if self.observer is not None:
            self.observer.on_publish(facts, self.index)
        self._export_gauges()
        return facts

    def _export_gauges(self) -> None:
        set_gauge("ingest.applied_seq", float(self.applied_seq))
        set_gauge("ingest.published_seq", float(self.published_seq))
        set_gauge("ingest.pending_batches", float(len(self._pending_stamps)))
        set_gauge("ingest.gen", float(self.index.gen))

    # -- bookkeeping ---------------------------------------------------------

    @property
    def pending_batches(self) -> int:
        """Batches applied but not yet part of a published generation."""
        with self._lock:
            return len(self._pending_stamps)

    def status(self) -> dict:
        """JSON-ready ingester facts."""
        with self._lock:
            status = {
                "out_dir": str(self.out_dir),
                "wal": self.wal.stats(),
                "applied_seq": self.applied_seq,
                "published_seq": self.published_seq,
                "pending_batches": len(self._pending_stamps),
                "gen": self.index.gen,
                "snapshot_hash": self.index.snapshot_hash,
                "n_nodes": self.index.dataset.n_nodes,
                "n_links": self.index.dataset.n_links,
                "replayed_batches": self.replayed_batches,
            }
            if self.observer is not None:
                status["analytics"] = self.observer.status_block(
                    self.index.gen
                )
            return status

    def close(self) -> None:
        """Close the WAL append handle."""
        self.wal.close()

    def __enter__(self) -> "Ingester":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class IngestHttpServer:
    """Tiny observability endpoint for a running ingester.

    Serves ``/metrics`` (Prometheus exposition of the ambient
    registry), ``/healthz``, and ``/status`` (the ingester's status
    dict) on a background thread — enough for the smoke gate and a
    scrape target, deliberately not a query server.
    """

    def __init__(self, ingester: Ingester, host: str, port: int) -> None:
        registry = current_metrics()
        outer = ingester

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    from repro.obs.export import render_prometheus

                    body = (
                        render_prometheus(registry)
                        if registry is not None
                        else ""
                    ).encode()
                    ctype = "text/plain; version=0.0.4"
                elif path == "/healthz":
                    body = json.dumps(
                        {
                            "status": "ok",
                            "gen": outer.index.gen,
                            "built_unix": round(outer.index.built_unix, 3),
                        }
                    ).encode()
                    ctype = "application/json"
                elif path == "/status":
                    body = json.dumps(outer.status()).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound port (useful with port 0)."""
        return self._server.server_address[1]

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
