"""Forwarding substrate: shortest-path trees and traceroute semantics."""

from repro.routing.forwarding import (
    interface_hops,
    observed_trace,
    path_links,
    source_routed_path,
)
from repro.routing.shortest_path import (
    PredecessorTree,
    largest_component,
    shortest_path_tree,
    shortest_path_trees,
)

__all__ = [
    "interface_hops",
    "observed_trace",
    "path_links",
    "source_routed_path",
    "PredecessorTree",
    "largest_component",
    "shortest_path_tree",
    "shortest_path_trees",
]
