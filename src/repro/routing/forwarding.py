"""Hop-level forwarding semantics: what a traceroute actually observes.

A TTL-expired probe elicits an ICMP message whose source address is an
interface *on the responding router* — specifically the inbound interface
of the link the probe arrived on.  This module converts router-id hop
sequences into the interface-address sequences a prober records,
including per-hop response failures, and implements the loose
source-routing trick Mercator uses to discover lateral links.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.net.topology import Topology
from repro.routing.shortest_path import PredecessorTree


def interface_hops(topology: Topology, router_path: list[int]) -> list[int]:
    """Interface addresses a traceroute along ``router_path`` would report.

    The first hop (the source itself) is not reported — a prober never
    sees its own router — so the result has one entry per *subsequent*
    router: the inbound interface on that router.

    Raises:
        RoutingError: if consecutive routers are not adjacent.
    """
    if len(router_path) < 2:
        return []
    previous = np.asarray(router_path[:-1], dtype=np.intp)
    current = np.asarray(router_path[1:], dtype=np.intp)
    try:
        return topology.link_interfaces_toward(previous, current).tolist()
    except Exception as exc:  # TopologyError -> routing-level error
        for prev, cur in zip(router_path, router_path[1:]):
            if prev == cur or not topology.has_link(int(prev), int(cur)):
                raise RoutingError(
                    f"routers {prev} and {cur} are not adjacent on the path"
                ) from exc
        raise RoutingError(
            f"could not resolve interfaces along {router_path!r}"
        ) from exc


def observed_trace(
    topology: Topology,
    router_path: list[int],
    rng: np.random.Generator,
    response_rate: float,
    max_hops: int,
) -> list[int | None]:
    """The probe's-eye view of a path: interfaces with missing hops.

    Each hop responds independently with ``response_rate``; silent hops
    appear as None (the ``*`` of a real traceroute).  The trace is cut at
    ``max_hops`` entries.
    """
    full = interface_hops(topology, router_path)
    trace: list[int | None] = []
    for address in full[:max_hops]:
        if rng.random() < response_rate:
            trace.append(address)
        else:
            trace.append(None)
    return trace


def source_routed_path(
    via_tree: PredecessorTree,
    source_tree: PredecessorTree,
    via: int,
    target: int,
) -> list[int]:
    """Router path for a loose-source-routed probe: source -> via -> target.

    Mercator sends probes through an intermediate router to expose links
    off its own shortest-path tree.  The result concatenates the source's
    path to ``via`` with ``via``'s path to ``target`` (dropping the
    duplicated pivot), and trims any loop created at the junction.

    Raises:
        RoutingError: if either leg is unreachable.
    """
    first = source_tree.path_to(via)
    second = via_tree.path_to(target)
    if via_tree.source != via:
        raise RoutingError("via_tree must be rooted at the via router")
    combined = first + second[1:]
    # Trim loops: cut back to the first occurrence of a revisited router
    # (real forwarding would not loop), keeping the position index
    # consistent after each truncation.
    position: dict[int, int] = {}
    path: list[int] = []
    for router in combined:
        if router in position:
            cut = position[router]
            for dropped in path[cut + 1 :]:
                del position[dropped]
            path = path[: cut + 1]
        else:
            position[router] = len(path)
            path.append(router)
    return path


def path_links(router_path: list[int]) -> list[tuple[int, int]]:
    """Normalised (a < b) router-id link pairs along a path."""
    pairs = []
    for prev, cur in zip(router_path, router_path[1:]):
        pairs.append((prev, cur) if prev < cur else (cur, prev))
    return pairs
