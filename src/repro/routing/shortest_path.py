"""Shortest-path machinery for forwarding simulation.

The measurement simulators need forward paths from a handful of sources
to very many destinations.  We compute one Dijkstra predecessor tree per
source over the topology's weighted routing graph (scipy's compiled
implementation), then extract individual hop sequences from the tree in
O(path length).  This mirrors how real hop-limited probing explores the
network: every path from a given monitor follows that monitor's
shortest-path tree, which is exactly the per-source tree bias the paper
inherits from Skitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.errors import RoutingError

#: scipy's sentinel for "no predecessor" (the source and unreachable nodes).
NO_PREDECESSOR = -9999


@dataclass(frozen=True)
class PredecessorTree:
    """A single-source shortest-path tree.

    Attributes:
        source: the root router id.
        predecessors: for each router, the previous hop toward it from
            the source (-9999 marks the source itself and unreachable
            nodes, scipy's convention).
        distances: total path weight from the source to each router.
    """

    source: int
    predecessors: np.ndarray
    distances: np.ndarray

    def reachable(self, target: int) -> bool:
        """True if a path from the source to ``target`` exists."""
        return bool(np.isfinite(self.distances[target]))

    def path_to(self, target: int) -> list[int]:
        """Router-id hop sequence from the source to ``target``, inclusive.

        Raises:
            RoutingError: when the target is unreachable or out of range.
        """
        n = self.predecessors.shape[0]
        if target < 0 or target >= n:
            raise RoutingError(f"target {target} out of range")
        if target == self.source:
            return [self.source]
        if not self.reachable(target):
            raise RoutingError(
                f"router {target} unreachable from {self.source}"
            )
        hops = [target]
        current = target
        for _ in range(n):
            current = int(self.predecessors[current])
            hops.append(current)
            if current == self.source:
                hops.reverse()
                return hops
        raise RoutingError("predecessor chain did not terminate (corrupt tree)")


def shortest_path_tree(graph: csr_matrix, source: int) -> PredecessorTree:
    """Dijkstra predecessor tree from one source.

    Raises:
        RoutingError: if the source id is out of range.
    """
    n = graph.shape[0]
    if source < 0 or source >= n:
        raise RoutingError(f"source {source} out of range")
    distances, predecessors = dijkstra(
        graph, directed=False, indices=source, return_predecessors=True
    )
    return PredecessorTree(
        source=source, predecessors=predecessors, distances=distances
    )


def shortest_path_trees(
    graph: csr_matrix, sources: list[int]
) -> list[PredecessorTree]:
    """Predecessor trees for several sources (one compiled sweep)."""
    if not sources:
        return []
    n = graph.shape[0]
    for source in sources:
        if source < 0 or source >= n:
            raise RoutingError(f"source {source} out of range")
    distances, predecessors = dijkstra(
        graph, directed=False, indices=sources, return_predecessors=True
    )
    return [
        PredecessorTree(source=s, predecessors=predecessors[i], distances=distances[i])
        for i, s in enumerate(sources)
    ]


def tree_depths(tree: PredecessorTree) -> np.ndarray:
    """Hop count from the source to every router, by pointer doubling.

    Returns:
        An int64 array: 0 for the source, the tree depth for reachable
        routers, and -1 for unreachable ones.
    """
    pred = tree.predecessors
    n = pred.shape[0]
    identity = np.arange(n, dtype=np.intp)
    parent = np.where(pred == NO_PREDECESSOR, identity, pred).astype(np.intp)
    depth = (parent != identity).astype(np.int64)
    jump = parent
    while True:
        nxt = jump[jump]
        if np.array_equal(nxt, jump):
            break
        depth += depth[jump]
        jump = nxt
    depth[~np.isfinite(tree.distances)] = -1
    return depth


def ancestors_at_depth(
    tree: PredecessorTree,
    depths: np.ndarray,
    nodes: np.ndarray,
    target_depth: int,
) -> np.ndarray:
    """For each node, its tree ancestor at ``target_depth``, by binary lifting.

    Callers must pass reachable nodes whose depth is at least
    ``target_depth`` (``depths`` comes from :func:`tree_depths`).
    """
    pred = tree.predecessors
    n = pred.shape[0]
    identity = np.arange(n, dtype=np.intp)
    table = np.where(pred == NO_PREDECESSOR, identity, pred).astype(np.intp)
    current = np.asarray(nodes, dtype=np.intp).copy()
    steps = depths[current] - target_depth
    while np.any(steps > 0):
        odd = (steps & 1).astype(bool)
        if np.any(odd):
            current[odd] = table[current[odd]]
        steps >>= 1
        if np.any(steps > 0):
            table = table[table]
    return current


def ancestor_closure(tree: PredecessorTree, starts: np.ndarray) -> np.ndarray:
    """Boolean mask of all tree ancestors of ``starts`` (inclusive).

    The source itself is excluded: probes never observe their own
    monitor.  Propagates an upward frontier, so the cost is bounded by
    the number of distinct routers on the covered paths, not by path
    length times probe count.
    """
    n = tree.predecessors.shape[0]
    mask = np.zeros(n, dtype=bool)
    frontier = np.unique(np.asarray(starts, dtype=np.intp))
    frontier = frontier[frontier != tree.source]
    while frontier.size:
        mask[frontier] = True
        parents = np.unique(tree.predecessors[frontier]).astype(np.intp)
        parents = parents[(parents != NO_PREDECESSOR) & (parents != tree.source)]
        frontier = parents[~mask[parents]]
    return mask


def largest_component(graph: csr_matrix) -> np.ndarray:
    """Router ids of the largest connected component."""
    n_components, labels = connected_components(graph, directed=False)
    if n_components == 1:
        return np.arange(graph.shape[0])
    sizes = np.bincount(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))
