"""Shortest-path machinery for forwarding simulation.

The measurement simulators need forward paths from a handful of sources
to very many destinations.  We compute one Dijkstra predecessor tree per
source over the topology's weighted routing graph (scipy's compiled
implementation), then extract individual hop sequences from the tree in
O(path length).  This mirrors how real hop-limited probing explores the
network: every path from a given monitor follows that monitor's
shortest-path tree, which is exactly the per-source tree bias the paper
inherits from Skitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.errors import RoutingError


@dataclass(frozen=True)
class PredecessorTree:
    """A single-source shortest-path tree.

    Attributes:
        source: the root router id.
        predecessors: for each router, the previous hop toward it from
            the source (-9999 marks the source itself and unreachable
            nodes, scipy's convention).
        distances: total path weight from the source to each router.
    """

    source: int
    predecessors: np.ndarray
    distances: np.ndarray

    def reachable(self, target: int) -> bool:
        """True if a path from the source to ``target`` exists."""
        return bool(np.isfinite(self.distances[target]))

    def path_to(self, target: int) -> list[int]:
        """Router-id hop sequence from the source to ``target``, inclusive.

        Raises:
            RoutingError: when the target is unreachable or out of range.
        """
        n = self.predecessors.shape[0]
        if target < 0 or target >= n:
            raise RoutingError(f"target {target} out of range")
        if target == self.source:
            return [self.source]
        if not self.reachable(target):
            raise RoutingError(
                f"router {target} unreachable from {self.source}"
            )
        hops = [target]
        current = target
        for _ in range(n):
            current = int(self.predecessors[current])
            hops.append(current)
            if current == self.source:
                hops.reverse()
                return hops
        raise RoutingError("predecessor chain did not terminate (corrupt tree)")


def shortest_path_tree(graph: csr_matrix, source: int) -> PredecessorTree:
    """Dijkstra predecessor tree from one source.

    Raises:
        RoutingError: if the source id is out of range.
    """
    n = graph.shape[0]
    if source < 0 or source >= n:
        raise RoutingError(f"source {source} out of range")
    distances, predecessors = dijkstra(
        graph, directed=False, indices=source, return_predecessors=True
    )
    return PredecessorTree(
        source=source, predecessors=predecessors, distances=distances
    )


def shortest_path_trees(
    graph: csr_matrix, sources: list[int]
) -> list[PredecessorTree]:
    """Predecessor trees for several sources (one compiled sweep)."""
    if not sources:
        return []
    n = graph.shape[0]
    for source in sources:
        if source < 0 or source >= n:
            raise RoutingError(f"source {source} out of range")
    distances, predecessors = dijkstra(
        graph, directed=False, indices=sources, return_predecessors=True
    )
    return [
        PredecessorTree(source=s, predecessors=predecessors[i], distances=distances[i])
        for i, s in enumerate(sources)
    ]


def largest_component(graph: csr_matrix) -> np.ndarray:
    """Router ids of the largest connected component."""
    n_components, labels = connected_components(graph, directed=False)
    if n_components == 1:
        return np.arange(graph.shape[0])
    sizes = np.bincount(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))
