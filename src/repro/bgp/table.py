"""BGP RIB snapshots and origin-AS lookup.

A :class:`BgpTable` is the processed equivalent of a RouteViews backbone
table dump: a set of announced prefixes, each with an origin AS.  The
paper maps every router/interface address to its parent AS through such
a table; addresses covered by no announced prefix go to a sentinel
"unmapped" group that Section VI's analysis omits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.trie import PrefixTrie
from repro.errors import AddressError
from repro.net.ip import Prefix
from repro.obs import current_metrics

#: Sentinel ASN for addresses no announced prefix covers.
UNMAPPED_ASN = -1


@dataclass(frozen=True, slots=True)
class RibEntry:
    """One announced route.

    Attributes:
        prefix: the announced CIDR prefix.
        origin_asn: the AS originating the announcement.
    """

    prefix: Prefix
    origin_asn: int

    def __post_init__(self) -> None:
        if self.origin_asn <= 0:
            raise AddressError(
                f"origin ASN must be positive, got {self.origin_asn}"
            )


class BgpTable:
    """An immutable-after-build RIB with longest-prefix-match lookup."""

    def __init__(self, entries: list[RibEntry] | None = None) -> None:
        self._trie = PrefixTrie()
        self._entries: list[RibEntry] = []
        for entry in entries or []:
            self.announce(entry)

    def announce(self, entry: RibEntry) -> None:
        """Add one announcement (later duplicates replace earlier origins)."""
        self._trie.insert(entry.prefix, entry.origin_asn)
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._trie)

    @property
    def entries(self) -> list[RibEntry]:
        """All announcements in insertion order."""
        return list(self._entries)

    def origin_of(self, address: int) -> int:
        """Origin AS of the longest announced prefix covering ``address``.

        When observability is active, every lookup increments
        ``bgp.lookups`` (and ``bgp.misses`` when nothing matches) on the
        active metrics registry.

        Returns:
            The origin ASN, or :data:`UNMAPPED_ASN` when nothing matches.
        """
        match = self._trie.longest_match(address)
        metrics = current_metrics()
        if metrics is not None:
            metrics.counter("bgp.lookups").add(1)
            if match is None:
                metrics.counter("bgp.misses").add(1)
        if match is None:
            return UNMAPPED_ASN
        _, asn = match
        return int(asn)  # type: ignore[arg-type]

    def matching_prefix(self, address: int) -> Prefix | None:
        """The longest announced prefix covering ``address``, if any."""
        match = self._trie.longest_match(address)
        return None if match is None else match[0]

    def map_addresses(self, addresses: list[int]) -> dict[int, int]:
        """Bulk origin lookup: address -> ASN (or UNMAPPED_ASN)."""
        return {addr: self.origin_of(addr) for addr in addresses}
