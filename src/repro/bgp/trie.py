"""Binary prefix trie with longest-prefix match.

This is the core data structure behind AS mapping in the paper's
methodology: "identifying the longest advertised prefix in a BGP table
that matches the IP address and recording the AS which originated that
prefix".  The trie stores origin values at prefix nodes and answers
longest-prefix-match queries in at most 32 bit-steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AddressError
from repro.net.ip import ADDRESS_BITS, Prefix, check_address


@dataclass
class _Node:
    """One trie node; children indexed by next address bit."""

    value: object | None = None
    has_value: bool = False
    children: list["_Node | None"] = field(default_factory=lambda: [None, None])


class PrefixTrie:
    """Maps CIDR prefixes to values with longest-prefix-match lookups."""

    def __init__(self) -> None:
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, prefix: Prefix, value: object) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.base >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry at ``prefix``.

        Raises:
            AddressError: if the exact prefix is not present.
        """
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.base >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                raise AddressError(f"prefix {prefix} not in trie")
            node = child
        if not node.has_value:
            raise AddressError(f"prefix {prefix} not in trie")
        node.value = None
        node.has_value = False
        self._count -= 1

    def longest_match(self, address: int) -> tuple[Prefix, object] | None:
        """The most-specific stored prefix covering ``address``, if any.

        Returns:
            ``(prefix, value)`` of the longest match, or None.
        """
        check_address(address)
        node = self._root
        best: tuple[int, object] | None = None
        if node.has_value:
            best = (0, node.value)
        for depth in range(ADDRESS_BITS):
            bit = (address >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, value = best
        mask_shift = ADDRESS_BITS - length
        base = (address >> mask_shift) << mask_shift if length else 0
        return Prefix(base, length), value

    def exact_match(self, prefix: Prefix) -> object | None:
        """Value stored exactly at ``prefix``, or None."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.base >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def items(self) -> Iterator[tuple[Prefix, object]]:
        """Iterate ``(prefix, value)`` pairs in address order."""

        def walk(node: _Node, base: int, depth: int) -> Iterator[tuple[Prefix, object]]:
            if node.has_value:
                yield Prefix(base, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_base = base | (bit << (ADDRESS_BITS - 1 - depth))
                    yield from walk(child, child_base, depth + 1)

        yield from walk(self._root, 0, 0)
