"""BGP substrate: prefix trie, RIB tables, RouteViews-style snapshots.

Implements the paper's AS-mapping methodology: longest-prefix match of
each interface address against an announced-prefix table, with a small
unannounced fraction landing in a sentinel unmapped group.
"""

from repro.bgp.routeviews import (
    build_routeviews_snapshot,
    perfect_snapshot,
    snapshot_from_topology,
)
from repro.bgp.table import UNMAPPED_ASN, BgpTable, RibEntry
from repro.bgp.trie import PrefixTrie

__all__ = [
    "build_routeviews_snapshot",
    "perfect_snapshot",
    "snapshot_from_topology",
    "UNMAPPED_ASN",
    "BgpTable",
    "RibEntry",
    "PrefixTrie",
]
