"""RouteViews-style snapshot synthesis.

Builds a :class:`~repro.bgp.table.BgpTable` from the ground truth's
registry (the address plan's prefix-to-AS grants), with two realistic
distortions:

* a fraction of allocated prefixes is simply **not announced** — the
  paper finds 1.5-2.8% of addresses unmappable, and groups them into a
  separate AS omitted from the Section VI analysis;
* a fraction of announced prefixes is **deaggregated** into their two
  more-specific halves (as traffic engineering does), which exercises
  true longest-prefix matching rather than exact-match lookup.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.table import BgpTable, RibEntry
from repro.config import BgpConfig
from repro.net.ip import Prefix, is_private_many
from repro.net.topology import Topology
from repro.net.addressing import AddressPlan


def build_routeviews_snapshot(
    plan: AddressPlan,
    config: BgpConfig,
    rng: np.random.Generator,
) -> BgpTable:
    """Synthesise a RIB snapshot from the registry's allocations."""
    table = BgpTable()
    for prefix, asn in plan.prefix_origin_pairs():
        if rng.random() < config.unannounced_rate:
            continue
        if rng.random() < config.deaggregation_rate:
            for half in prefix.subdivide(prefix.length + 1):
                table.announce(RibEntry(half, asn))
        else:
            table.announce(RibEntry(prefix, asn))
    return table


def perfect_snapshot(plan: AddressPlan) -> BgpTable:
    """A distortion-free RIB: every granted prefix announced by its owner."""
    table = BgpTable()
    for prefix, asn in plan.prefix_origin_pairs():
        table.announce(RibEntry(prefix, asn))
    return table


def snapshot_from_topology(
    topology: Topology,
    config: BgpConfig,
    rng: np.random.Generator,
    block_length: int = 16,
) -> BgpTable:
    """Reconstruct a RIB directly from a topology's interface addresses.

    Used when the address plan is unavailable (e.g. a deserialised
    topology): every observed interface address is attributed to its
    router's AS at ``block_length`` granularity, then the same
    announcement distortions are applied.
    """
    step = 32 - block_length
    addresses = topology.interface_addresses()
    owners = topology.router_asns()[topology.interface_routers()]
    public = ~is_private_many(addresses)
    bases = (addresses[public] >> step) << step
    # np.unique's first-occurrence index replicates dict.setdefault's
    # first-wins attribution, and its output is already base-sorted.
    unique_bases, first_seen = np.unique(bases, return_index=True)
    owner_of_base = owners[public][first_seen]
    table = BgpTable()
    for base, asn in zip(unique_bases.tolist(), owner_of_base.tolist()):
        prefix = Prefix(base, block_length)
        if rng.random() < config.unannounced_rate:
            continue
        if rng.random() < config.deaggregation_rate:
            for half in prefix.subdivide(block_length + 1):
                table.announce(RibEntry(half, asn))
        else:
            table.announce(RibEntry(prefix, asn))
    return table
