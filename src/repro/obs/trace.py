"""Contextvar-propagated tracing spans.

A :class:`Span` times one unit of work (a pipeline stage, a geolocation
batch, one figure's analysis) and nests under whatever span was active
when it opened, giving each run a tree of where the time went — the
sub-stage detail the ``--profile`` table cannot show.

Propagation uses :mod:`contextvars`: the active :class:`Tracer` and the
current span live in context variables, so library code opens spans with
the module-level :func:`span` helper without any plumbing — and pays a
single context lookup (no allocation) when no tracer is active.  The
executor's worker threads inherit the submitting thread's context via
``contextvars.copy_context()`` (see ``repro.runtime.executor``), so
stage spans started on pool threads still attach under the pipeline
span; all tree mutation is serialised on the tracer's lock.

Span clocks are ``time.perf_counter()`` — monotonic, comparable within
one process — plus one wall-clock epoch stamp per span for report
readers.

Cross-process propagation: spans carry random ``span_id``s and inherit
a ``trace_id`` from the active :class:`TraceContext`.  A parent process
serialises its context with :func:`TraceContext.to_wire` into a work
order, the worker re-installs it with :func:`use_trace_context`, and
every span the worker opens then shares the parent's trace ID with the
parent's span recorded as ``parent_span_id`` — which is what lets the
sweep engine stitch per-trial span trees from many worker processes
into one campaign-wide tree (:mod:`repro.sweep.tracing`).  A
:class:`TraceSampler` makes the per-request tracing of the query server
probabilistic so tracing cost scales with the sample rate, not the
request rate.
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.bus import publish as _bus_publish

_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
_ACTIVE_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_obs_active_tracer", default=None
)
_TRACE_CONTEXT: contextvars.ContextVar["TraceContext | None"] = (
    contextvars.ContextVar("repro_obs_trace_context", default=None)
)

#: ID generation is observability-only randomness: seeded from the OS,
#: never from the experiment RNG streams, so tracing cannot perturb
#: scientific reproducibility.
_ID_RNG = random.Random(os.urandom(16))
_ID_LOCK = threading.Lock()


def new_trace_id() -> str:
    """A random 128-bit trace ID (32 hex chars)."""
    with _ID_LOCK:
        return f"{_ID_RNG.getrandbits(128):032x}"


def new_span_id() -> str:
    """A random 64-bit span ID (16 hex chars)."""
    with _ID_LOCK:
        return f"{_ID_RNG.getrandbits(64):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The cross-process slice of a trace: IDs plus a sampling verdict.

    Attributes:
        trace_id: the trace every descendant span belongs to.
        span_id: the span acting as remote parent for new work.
        sampled: whether this trace is being recorded.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    def to_wire(self) -> dict[str, Any]:
        """A JSON/pickle-safe form for work orders and headers."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any] | None) -> "TraceContext | None":
        """Parse a wire form; ``None``/malformed payloads yield ``None``."""
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        return cls(
            trace_id=trace_id,
            span_id=str(payload.get("span_id", "")),
            sampled=bool(payload.get("sampled", True)),
        )


def current_trace_context() -> TraceContext | None:
    """The trace context active in this context, if any."""
    return _TRACE_CONTEXT.get()


@contextmanager
def use_trace_context(context: TraceContext) -> Iterator[TraceContext]:
    """Install a trace context for the enclosed block."""
    token = _TRACE_CONTEXT.set(context)
    try:
        yield context
    finally:
        _TRACE_CONTEXT.reset(token)


class TraceSampler:
    """Probabilistic head sampling: keep a fraction of new traces.

    ``rate`` 0.0 never samples, 1.0 always does.  The decision RNG is
    private and OS-seeded by default (``seed`` pins it for tests), so
    sampling never touches the experiment RNG streams.
    """

    def __init__(self, rate: float, seed: int | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = random.Random(os.urandom(16) if seed is None else seed)
        self._lock = threading.Lock()

    def should_sample(self) -> bool:
        """One sampling decision for a new trace."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.rate


@dataclass
class Span:
    """One timed, attributed unit of work.

    Attributes:
        name: span name, e.g. ``"stage:bgp_snapshot"``.
        attributes: free-form key/value annotations.
        start_s: monotonic start (``time.perf_counter()``).
        end_s: monotonic end (0.0 while the span is open).
        start_unix: wall-clock epoch seconds at start.
        thread: name of the thread the span ran on.
        children: spans opened while this span was current.
        span_id: random per-span ID (16 hex chars).
        trace_id: the trace this span belongs to ("" outside traces).
        parent_span_id: local parent's span ID, or the remote parent's
            from the installed :class:`TraceContext` for root spans.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float = 0.0
    start_unix: float = 0.0
    thread: str = ""
    children: list["Span"] = field(default_factory=list)
    span_id: str = ""
    trace_id: str = ""
    parent_span_id: str = ""

    @property
    def wall_s(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attributes: Any) -> None:
        """Attach or update attributes on the span."""
        self.attributes.update(attributes)

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        return 1 + max((child.depth() for child in self.children), default=0)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view of the subtree."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_s": self.wall_s,
            "start_unix": self.start_unix,
            "thread": self.thread,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """No-op stand-in yielded by :func:`span` when no tracer is active."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        """Discard attributes."""


#: Shared no-op span instance.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans for one run (thread-safe)."""

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span nested under the context's current span.

        The span inherits the active :class:`TraceContext`'s trace ID;
        root spans record the context's span ID as their (remote)
        parent.  On close, a completion event is published onto the
        active :class:`~repro.obs.bus.TelemetryBus`, if any.
        """
        parent = _CURRENT_SPAN.get()
        context = _TRACE_CONTEXT.get()
        new = Span(
            name=name,
            attributes=dict(attributes),
            start_s=time.perf_counter(),
            start_unix=time.time(),
            thread=threading.current_thread().name,
            span_id=new_span_id(),
            trace_id=(
                parent.trace_id
                if parent is not None and parent.trace_id
                else (context.trace_id if context is not None else "")
            ),
            parent_span_id=(
                parent.span_id
                if parent is not None
                else (context.span_id if context is not None else "")
            ),
        )
        with self._lock:
            if parent is None:
                self._roots.append(new)
            else:
                parent.children.append(new)
        token = _CURRENT_SPAN.set(new)
        try:
            yield new
        finally:
            new.end_s = time.perf_counter()
            _CURRENT_SPAN.reset(token)
            _bus_publish(
                "span",
                name=new.name,
                wall_s=new.wall_s,
                span_id=new.span_id,
                trace_id=new.trace_id,
                parent_span_id=new.parent_span_id,
                thread=new.thread,
            )

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans, in start order."""
        with self._lock:
            return tuple(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        """Every collected span, depth-first across roots."""
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name: str) -> list[Span]:
        """All spans with a given name."""
        return [s for s in self.iter_spans() if s.name == name]

    def max_depth(self) -> int:
        """Deepest nesting level across all roots (0 when empty)."""
        return max((root.depth() for root in self.roots), default=0)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-serialisable span forest."""
        return [root.to_dict() for root in self.roots]


def current_tracer() -> Tracer | None:
    """The tracer active in this context, if any."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span in this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make a tracer active for the enclosed block (and spawned contexts)."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span | _NullSpan]:
    """Open a span on the active tracer; a cheap no-op when none is."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, **attributes) as new:
        yield new
