"""Contextvar-propagated tracing spans.

A :class:`Span` times one unit of work (a pipeline stage, a geolocation
batch, one figure's analysis) and nests under whatever span was active
when it opened, giving each run a tree of where the time went — the
sub-stage detail the ``--profile`` table cannot show.

Propagation uses :mod:`contextvars`: the active :class:`Tracer` and the
current span live in context variables, so library code opens spans with
the module-level :func:`span` helper without any plumbing — and pays a
single context lookup (no allocation) when no tracer is active.  The
executor's worker threads inherit the submitting thread's context via
``contextvars.copy_context()`` (see ``repro.runtime.executor``), so
stage spans started on pool threads still attach under the pipeline
span; all tree mutation is serialised on the tracer's lock.

Span clocks are ``time.perf_counter()`` — monotonic, comparable within
one process — plus one wall-clock epoch stamp per span for report
readers.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
_ACTIVE_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_obs_active_tracer", default=None
)


@dataclass
class Span:
    """One timed, attributed unit of work.

    Attributes:
        name: span name, e.g. ``"stage:bgp_snapshot"``.
        attributes: free-form key/value annotations.
        start_s: monotonic start (``time.perf_counter()``).
        end_s: monotonic end (0.0 while the span is open).
        start_unix: wall-clock epoch seconds at start.
        thread: name of the thread the span ran on.
        children: spans opened while this span was current.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float = 0.0
    start_unix: float = 0.0
    thread: str = ""
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attributes: Any) -> None:
        """Attach or update attributes on the span."""
        self.attributes.update(attributes)

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        return 1 + max((child.depth() for child in self.children), default=0)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view of the subtree."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_s": self.wall_s,
            "start_unix": self.start_unix,
            "thread": self.thread,
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """No-op stand-in yielded by :func:`span` when no tracer is active."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        """Discard attributes."""


#: Shared no-op span instance.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans for one run (thread-safe)."""

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span nested under the context's current span."""
        parent = _CURRENT_SPAN.get()
        new = Span(
            name=name,
            attributes=dict(attributes),
            start_s=time.perf_counter(),
            start_unix=time.time(),
            thread=threading.current_thread().name,
        )
        with self._lock:
            if parent is None:
                self._roots.append(new)
            else:
                parent.children.append(new)
        token = _CURRENT_SPAN.set(new)
        try:
            yield new
        finally:
            new.end_s = time.perf_counter()
            _CURRENT_SPAN.reset(token)

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans, in start order."""
        with self._lock:
            return tuple(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        """Every collected span, depth-first across roots."""
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name: str) -> list[Span]:
        """All spans with a given name."""
        return [s for s in self.iter_spans() if s.name == name]

    def max_depth(self) -> int:
        """Deepest nesting level across all roots (0 when empty)."""
        return max((root.depth() for root in self.roots), default=0)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-serialisable span forest."""
        return [root.to_dict() for root in self.roots]


def current_tracer() -> Tracer | None:
    """The tracer active in this context, if any."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span in this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make a tracer active for the enclosed block (and spawned contexts)."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span | _NullSpan]:
    """Open a span on the active tracer; a cheap no-op when none is."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, **attributes) as new:
        yield new
