"""Run-level observability: tracing, metrics, structured logs, reports.

The pipeline runtime's per-stage telemetry (PR 1) shows *which stage*
cost what; this package opens up everything below stage granularity and
makes a run's measurements survive the process:

- :mod:`repro.obs.trace` — contextvar-propagated :class:`Span` /
  :class:`Tracer`, nesting across the executor's worker pool;
- :mod:`repro.obs.metrics` — counter/gauge/histogram registry for
  geolocation batches, BGP lookups, and data-quality residuals;
- :mod:`repro.obs.logging` — JSON-lines logging behind ``--verbose``;
- :mod:`repro.obs.report` — :class:`RunReport` bundling config, seeds,
  stage events, the span tree, metrics, and artifact content hashes,
  plus schema validation and the report diff behind
  ``repro report diff``;
- :mod:`repro.obs.bus` — the live side: a bounded ring-buffer
  :class:`TelemetryBus` that spans, stage events, access logs, and
  worker heartbeats publish into, with JSONL / in-memory tail sinks;
- :mod:`repro.obs.export` — Prometheus text exposition of the metrics
  registry, mounted as ``/metrics`` on the query server;
- :mod:`repro.obs.sampling` — a stdlib background sampling profiler
  emitting collapsed-stack flamegraph input
  (``--profile-sampling``).

All instrumentation is contextvar-gated: with no active tracer,
registry, or bus, instrumented call sites cost one context lookup and
no allocation, keeping uninstrumented runs at full speed.
"""

from repro.obs.bus import (
    JsonlSink,
    TailSink,
    TelemetryBus,
    current_bus,
    publish,
    use_bus,
)
from repro.obs.export import (
    merge_expositions,
    parse_sample_lines,
    render_prometheus,
)
from repro.obs.logging import JsonLogFormatter, get_logger, setup_logging
from repro.obs.sampling import ProfilerError, SamplingProfiler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    incr,
    observe,
    set_gauge,
    use_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    TraceSampler,
    current_span,
    current_trace_context,
    current_tracer,
    new_span_id,
    new_trace_id,
    span,
    use_trace_context,
    use_tracer,
)
from repro.obs.report import (
    DEFAULT_MIN_WALL_S,
    DEFAULT_WALL_THRESHOLD,
    ReportDiff,
    RunReport,
    build_run_report,
    dataset_digest,
    diff_reports,
    load_report,
    render_diff,
    render_report,
    validate_report,
    write_report,
)

__all__ = [
    "JsonLogFormatter",
    "JsonlSink",
    "ProfilerError",
    "SamplingProfiler",
    "TailSink",
    "TelemetryBus",
    "TraceContext",
    "TraceSampler",
    "current_bus",
    "current_trace_context",
    "get_logger",
    "merge_expositions",
    "new_span_id",
    "new_trace_id",
    "parse_sample_lines",
    "publish",
    "render_prometheus",
    "setup_logging",
    "use_bus",
    "use_trace_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "incr",
    "observe",
    "set_gauge",
    "use_metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "span",
    "use_tracer",
    "DEFAULT_MIN_WALL_S",
    "DEFAULT_WALL_THRESHOLD",
    "ReportDiff",
    "RunReport",
    "build_run_report",
    "dataset_digest",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_report",
    "validate_report",
    "write_report",
]
