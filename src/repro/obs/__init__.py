"""Run-level observability: tracing, metrics, structured logs, reports.

The pipeline runtime's per-stage telemetry (PR 1) shows *which stage*
cost what; this package opens up everything below stage granularity and
makes a run's measurements survive the process:

- :mod:`repro.obs.trace` — contextvar-propagated :class:`Span` /
  :class:`Tracer`, nesting across the executor's worker pool;
- :mod:`repro.obs.metrics` — counter/gauge/histogram registry for
  geolocation batches, BGP lookups, and data-quality residuals;
- :mod:`repro.obs.logging` — JSON-lines logging behind ``--verbose``;
- :mod:`repro.obs.report` — :class:`RunReport` bundling config, seeds,
  stage events, the span tree, metrics, and artifact content hashes,
  plus schema validation and the report diff behind
  ``repro report diff``.

All instrumentation is contextvar-gated: with no active tracer or
registry, instrumented call sites cost one context lookup and no
allocation, keeping uninstrumented runs at full speed.
"""

from repro.obs.logging import JsonLogFormatter, get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    incr,
    observe,
    set_gauge,
    use_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    current_tracer,
    span,
    use_tracer,
)
from repro.obs.report import (
    DEFAULT_MIN_WALL_S,
    DEFAULT_WALL_THRESHOLD,
    ReportDiff,
    RunReport,
    build_run_report,
    dataset_digest,
    diff_reports,
    load_report,
    render_diff,
    render_report,
    validate_report,
    write_report,
)

__all__ = [
    "JsonLogFormatter",
    "get_logger",
    "setup_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "incr",
    "observe",
    "set_gauge",
    "use_metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "span",
    "use_tracer",
    "DEFAULT_MIN_WALL_S",
    "DEFAULT_WALL_THRESHOLD",
    "ReportDiff",
    "RunReport",
    "build_run_report",
    "dataset_digest",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_report",
    "validate_report",
    "write_report",
]
