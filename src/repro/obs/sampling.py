"""Stdlib-only background sampling profiler (collapsed-stack output).

A :class:`SamplingProfiler` wakes a daemon thread at a configurable
frequency, snapshots every thread's Python stack via
``sys._current_frames()``, and accumulates *collapsed stacks* — the
``outer;inner;leaf count`` lines flamegraph tooling (Brendan Gregg's
``flamegraph.pl``, speedscope, inferno) consumes directly.

Compared to ``cProfile`` this is the right tool for the long-running
processes this repo now has (the query server, sweep campaigns): it
attaches to an *already running* workload, costs a bounded amount per
sample instead of per function call (~the stack depth, at the chosen
Hz), and needs no instrumentation in the profiled code.  The price is
statistics instead of exact counts — frames are attributed whole
sampling periods.

``sys._current_frames()`` is CPython-specific but stdlib; sampling
happens with the GIL held, so stacks are internally consistent.  The
profiler's own sampler thread is excluded from its samples.

Wired into the CLI as ``--profile-sampling OUT.collapsed`` on ``run``,
``serve``, and ``sweep run``/``resume`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any

from repro.errors import ReproError

#: Default sampling frequency.  97 Hz, a prime, so sampling cannot lock
#: onto periodic workload behaviour (timers, batch windows).
DEFAULT_HZ = 97.0


class ProfilerError(ReproError):
    """The sampling profiler was misused."""


def _frame_label(frame: Any) -> str:
    """One collapsed-stack frame label: ``module:qualname``."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    # co_qualname appeared in 3.11; co_name is the 3.10 fallback.
    name = getattr(code, "co_qualname", code.co_name)
    return f"{module}:{name}"


class SamplingProfiler:
    """Samples all thread stacks at ``hz`` into collapsed-stack counts.

    Usage::

        profiler = SamplingProfiler(hz=97).start()
        ...  # workload
        profiler.stop()
        profiler.write("profile.collapsed")

    Also usable as a context manager.  ``start``/``stop`` are
    idempotent-safe in the directions that matter: double ``start``
    raises (two samplers would double-count), ``stop`` after ``stop``
    is a no-op.
    """

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ProfilerError(f"sampling frequency must be > 0, got {hz}")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._counts: Counter[tuple[str, ...]] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0
        self.started_unix = 0.0
        self.stopped_unix = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread; returns self for chaining."""
        if self._thread is not None:
            raise ProfilerError("profiler is already running")
        self._stop.clear()
        self.started_unix = time.time()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (no-op when idle)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.stopped_unix = time.time()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample(own_id)

    def _sample(self, own_id: int) -> None:
        """Take one sample of every thread's stack."""
        try:
            frames = sys._current_frames()
        except AttributeError:  # pragma: no cover - non-CPython
            self._stop.set()
            return
        stacks: list[tuple[str, ...]] = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue
            stack: list[str] = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            if stack:
                stack.reverse()  # collapsed format is outermost-first
                stacks.append(tuple(stack))
        with self._lock:
            self.samples += 1
            for stack in stacks:
                self._counts[stack] += 1

    # -- output --------------------------------------------------------------

    def stack_counts(self) -> dict[tuple[str, ...], int]:
        """Raw ``stack tuple -> samples`` counts collected so far."""
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """The collapsed-stack report, most-sampled stacks first."""
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(
            f"{';'.join(stack)} {count}" for stack, count in items
        ) + ("\n" if items else "")

    def write(self, path: str | Path) -> Path:
        """Write the collapsed-stack report to a file.

        Raises:
            ProfilerError: when the destination cannot be written.
        """
        destination = Path(path)
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            destination.write_text(self.collapsed(), encoding="utf-8")
        except OSError as exc:
            raise ProfilerError(f"cannot write profile {path}: {exc}")
        return destination
