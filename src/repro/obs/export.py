"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns one
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into the
Prometheus text format (version 0.0.4): counters as ``*_total``,
gauges verbatim, histograms as cumulative ``_bucket{le=...}`` series
plus ``_sum`` / ``_count``.  The server mounts it on ``/metrics``
(:mod:`repro.serve.server`), so any Prometheus-compatible scraper can
watch the service live instead of waiting for a stats report.

Instrument names here use dots (``serve.latency_ms.locate``); the
exposition format allows ``[a-zA-Z0-9_:]`` only, so names are
sanitised by mapping every other character to ``_``.  Dotted names stay
unique after sanitising as long as instruments don't mix ``.`` and
``_`` at the same position — the registry's naming convention.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

#: Content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def sanitize_metric_name(name: str) -> str:
    """Map an instrument name to a legal Prometheus metric name."""
    cleaned = "".join(c if c in _ALLOWED else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """Render one sample value (Prometheus spells infinities +Inf/-Inf)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, *, prefix: str = "repro"
) -> str:
    """Render every instrument as Prometheus exposition text.

    Args:
        registry: the registry to snapshot (instruments are read under
            their own locks; rendering mid-write is safe).
        prefix: namespace prepended to every metric name.

    Returns:
        The full exposition body, ending in a newline.
    """
    lines: list[str] = []
    counters, gauges, histograms = registry.instruments()

    for name in sorted(counters):
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# HELP {metric} Counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name].value)}")

    for name in sorted(gauges):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name].value)}")

    for name in sorted(histograms):
        histogram = histograms[name]
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        summary = histogram.summary()
        lines.append(f"# HELP {metric} Histogram {name!r}.")
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in histogram.bucket_counts():
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
        lines.append(f"{metric}_count {summary['count']}")

    return "\n".join(lines) + "\n"


def parse_sample_lines(body: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}`` (tests, gates).

    Comment lines are skipped; the series key keeps its label set
    verbatim (e.g. ``repro_serve_latency_ms_locate_bucket{le="+Inf"}``).
    """
    samples: dict[str, float] = {}
    for line in _sample_lines(body):
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    return samples


def _sample_lines(body: str) -> Iterable[str]:
    for line in body.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            yield line


def merge_expositions(bodies: Iterable[str]) -> str:
    """Sum sample values for identical series across exposition bodies.

    The cluster coordinator scrapes each shard's ``/metrics`` and
    re-exposes one fleet-wide body: counters, histogram buckets, sums
    and counts add correctly; gauges add too, which for queue depths and
    in-flight counts is the fleet total a dashboard wants.  Series keep
    their label sets verbatim and first-seen order; ``# HELP`` /
    ``# TYPE`` comments are optional in the format and are dropped.
    """
    totals: dict[str, float] = {}
    for body in bodies:
        for line in _sample_lines(body):
            series, _, value = line.rpartition(" ")
            totals[series] = totals.get(series, 0.0) + float(value)
    lines = [
        f"{series} {_format_value(value)}" for series, value in totals.items()
    ]
    return "\n".join(lines) + "\n" if lines else ""
