"""Structured JSON logging behind ``-v/--verbose``.

One handler on the ``repro`` root logger emits one JSON object per line
to stderr, so verbose runs stay machine-parseable (pipe through ``jq``)
and quiet runs stay quiet: without ``--verbose`` only warnings and
errors surface.  Library modules obtain child loggers via
:func:`get_logger` and never configure handlers themselves.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    )
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Formats each record as one JSON object per line.

    Extra attributes passed via ``logger.info(..., extra={...})`` are
    merged into the object (non-JSON values fall back to ``repr``).
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key in _STANDARD_ATTRS or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)

    def formatTime(  # pragma: no cover - unused with numeric ts
        self, record: logging.LogRecord, datefmt: str | None = None
    ) -> str:
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))


class BusLogHandler(logging.Handler):
    """Forwards log records onto the active telemetry bus as ``log`` events.

    Costs one context lookup per record when no bus is active, so it is
    safe to leave attached permanently.  Extra attributes (``extra={}``)
    travel with the event like they do in the JSON formatter.
    """

    def emit(self, record: logging.LogRecord) -> None:
        from repro.obs.bus import publish

        fields: dict[str, Any] = {
            key: value
            for key, value in vars(record).items()
            if key not in _STANDARD_ATTRS
        }
        try:
            publish(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
                **fields,
            )
        except Exception:  # noqa: BLE001 - logging must never raise
            self.handleError(record)


def setup_logging(
    verbose: bool = False, stream: TextIO | None = None
) -> logging.Logger:
    """(Re)configure the package logger; idempotent per call.

    Args:
        verbose: emit DEBUG and up when True, else WARNING and up.
        stream: destination (default ``sys.stderr``).

    Returns:
        The configured ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.addHandler(BusLogHandler())
    logger.setLevel(logging.DEBUG if verbose else logging.WARNING)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` namespace."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
