"""Structured run reports: build, serialise, validate, render, diff.

A :class:`RunReport` is the machine-readable record one pipeline run
leaves behind (``--report out.json``): the scenario configuration and
seed, every stage's telemetry event, the full span tree, the metrics
snapshot, and a content hash per produced dataset.  Two reports are
directly comparable — :func:`diff_reports` flags stage wall-time
regressions past a threshold and *any* drift in counters or artifact
hashes, which turns perf/correctness regression checks into
``repro report diff a.json b.json``.

Validation is hand-rolled (:func:`validate_report`) so the schema check
needs no third-party dependency; the schema is versioned through
:data:`SCHEMA_VERSION` and checked on load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import ReportError

#: Report type tag, embedded in every file.
SCHEMA = "repro-run-report"
#: Bump on any backwards-incompatible layout change.
SCHEMA_VERSION = 1

#: diff defaults: flag a stage only past both a relative and an absolute
#: slowdown, so sub-millisecond stages cannot trip the gate on noise.
DEFAULT_WALL_THRESHOLD = 0.25
DEFAULT_MIN_WALL_S = 0.05


def _jsonify(value: Any) -> Any:
    """Reduce a configuration object to plain JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def dataset_digest(dataset: Any) -> str:
    """Content hash of one mapped dataset (canonical JSON, SHA-256)."""
    from repro.datasets.serialize import dataset_to_dict

    payload = json.dumps(
        dataset_to_dict(dataset), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class RunReport:
    """Everything one run leaves behind for later comparison.

    Attributes:
        seed: the scenario seed.
        config: the scenario configuration, reduced to JSON types.
        stage_events: per-stage telemetry dicts (``StageEvent.to_dict``).
        spans: the span forest (``Span.to_dict`` trees).
        metrics: a ``MetricsRegistry.snapshot()``.
        artifacts: dataset label -> content hash.
        argv: the command line that produced the run (may be empty).
        created_unix: wall-clock epoch seconds at report creation.
        schema_version: report layout version.
    """

    seed: int
    config: dict[str, Any] = field(default_factory=dict)
    stage_events: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, str] = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)
    created_unix: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        """The on-disk JSON layout."""
        return {
            "schema": SCHEMA,
            "schema_version": self.schema_version,
            "created_unix": self.created_unix,
            "seed": self.seed,
            "config": self.config,
            "argv": list(self.argv),
            "stage_events": list(self.stage_events),
            "spans": list(self.spans),
            "metrics": self.metrics,
            "artifacts": dict(self.artifacts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunReport":
        """Parse a validated payload.

        Raises:
            ReportError: when the payload fails schema validation.
        """
        errors = validate_report(payload)
        if errors:
            raise ReportError(
                "invalid run report: " + "; ".join(errors[:5])
            )
        return cls(
            seed=payload["seed"],
            config=dict(payload["config"]),
            stage_events=list(payload["stage_events"]),
            spans=list(payload["spans"]),
            metrics=dict(payload["metrics"]),
            artifacts=dict(payload["artifacts"]),
            argv=list(payload.get("argv", [])),
            created_unix=float(payload["created_unix"]),
            schema_version=int(payload["schema_version"]),
        )

    def iter_spans(self) -> Iterator[dict[str, Any]]:
        """Every span dict, depth-first across the forest."""

        def walk(node: dict[str, Any]) -> Iterator[dict[str, Any]]:
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        for root in self.spans:
            yield from walk(root)

    def span_depth(self) -> int:
        """Deepest nesting level of the span forest (0 when empty)."""

        def depth(node: dict[str, Any]) -> int:
            children = node.get("children", ())
            return 1 + max((depth(child) for child in children), default=0)

        return max((depth(root) for root in self.spans), default=0)

    def counter(self, name: str) -> int:
        """A metrics counter value (0 when absent)."""
        return int(self.metrics.get("counters", {}).get(name, 0))

    def stage_wall_s(self) -> dict[str, float]:
        """Stage name -> wall seconds."""
        return {e["stage"]: float(e["wall_s"]) for e in self.stage_events}


def build_run_report(
    *,
    config: Any,
    result: Any = None,
    telemetry: Any = None,
    tracer: Any = None,
    metrics: Any = None,
    argv: list[str] | None = None,
) -> RunReport:
    """Assemble a report from whatever observability a run collected.

    Args:
        config: the scenario configuration (a dataclass; jsonified).
        result: optional :class:`~repro.datasets.pipeline.PipelineResult`
            whose datasets are content-hashed into ``artifacts``.
        telemetry: optional :class:`~repro.runtime.telemetry.Telemetry`.
        tracer: optional :class:`~repro.obs.trace.Tracer`.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
        argv: the producing command line, for provenance.
    """
    events = (
        sorted(
            (e.to_dict() for e in telemetry.events),
            key=lambda e: (e["start_s"], e["stage"]),
        )
        if telemetry is not None
        else []
    )
    artifacts = (
        {
            label: dataset_digest(result.datasets[label])
            for label in sorted(result.datasets)
        }
        if result is not None
        else {}
    )
    return RunReport(
        seed=int(getattr(config, "seed", 0)),
        config=_jsonify(config),
        stage_events=events,
        spans=tracer.to_dicts() if tracer is not None else [],
        metrics=metrics.snapshot() if metrics is not None else {},
        artifacts=artifacts,
        argv=list(argv or []),
        created_unix=time.time(),
    )


def write_report(report: RunReport, path: str | Path) -> None:
    """Serialise a report to a JSON file.

    Raises:
        ReportError: when the destination cannot be written.
    """
    try:
        Path(path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
    except OSError as exc:
        raise ReportError(f"cannot write run report {path}: {exc}")


def load_report(path: str | Path) -> RunReport:
    """Read and validate a report file.

    Raises:
        ReportError: on a missing/unreadable file, bad JSON, or a
            payload failing schema validation.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ReportError(f"cannot read run report {path}: {exc}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReportError(f"run report {path} is not valid JSON: {exc}")
    return RunReport.from_dict(payload)


# --- Schema validation -------------------------------------------------------


def _check_number(payload: Mapping[str, Any], key: str, where: str) -> list[str]:
    value = payload.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return [f"{where}.{key} must be a number, got {type(value).__name__}"]
    return []


def _validate_span(node: Any, where: str) -> list[str]:
    if not isinstance(node, dict):
        return [f"{where} must be an object"]
    errors: list[str] = []
    if not isinstance(node.get("name"), str):
        errors.append(f"{where}.name must be a string")
    for key in ("start_s", "end_s", "wall_s"):
        errors += _check_number(node, key, where)
    if not isinstance(node.get("attributes"), dict):
        errors.append(f"{where}.attributes must be an object")
    children = node.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}.children must be an array")
    else:
        for i, child in enumerate(children):
            errors += _validate_span(child, f"{where}.children[{i}]")
    return errors


def _validate_stage_event(event: Any, where: str) -> list[str]:
    if not isinstance(event, dict):
        return [f"{where} must be an object"]
    errors: list[str] = []
    for key in ("stage", "status"):
        if not isinstance(event.get(key), str):
            errors.append(f"{where}.{key} must be a string")
    for key in ("wall_s", "rss_mb", "start_s", "end_s"):
        errors += _check_number(event, key, where)
    counters = event.get("counters")
    if not isinstance(counters, dict) or not all(
        isinstance(k, str) and isinstance(v, int)
        for k, v in counters.items()
    ):
        errors.append(f"{where}.counters must map strings to integers")
    return errors


def validate_report(payload: Any) -> list[str]:
    """Schema-check a raw report payload; returns a list of problems.

    An empty list means the payload is a valid
    version-:data:`SCHEMA_VERSION` run report.
    """
    if not isinstance(payload, dict):
        return ["report must be a JSON object"]
    errors: list[str] = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {payload.get('schema_version')!r}"
        )
    if not isinstance(payload.get("seed"), int):
        errors.append("seed must be an integer")
    errors += _check_number(payload, "created_unix", "report")
    if not isinstance(payload.get("config"), dict):
        errors.append("config must be an object")
    argv = payload.get("argv", [])
    if not isinstance(argv, list) or not all(isinstance(a, str) for a in argv):
        errors.append("argv must be an array of strings")
    events = payload.get("stage_events")
    if not isinstance(events, list):
        errors.append("stage_events must be an array")
    else:
        for i, event in enumerate(events):
            errors += _validate_stage_event(event, f"stage_events[{i}]")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("spans must be an array")
    else:
        for i, node in enumerate(spans):
            errors += _validate_span(node, f"spans[{i}]")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section in metrics and not isinstance(metrics[section], dict):
                errors.append(f"metrics.{section} must be an object")
        counters = metrics.get("counters", {})
        if isinstance(counters, dict) and not all(
            isinstance(v, int) for v in counters.values()
        ):
            errors.append("metrics.counters values must be integers")
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in artifacts.items()
    ):
        errors.append("artifacts must map labels to hash strings")
    return errors


# --- Rendering ---------------------------------------------------------------


def _format_span(node: Mapping[str, Any], indent: int, lines: list[str]) -> None:
    attrs = ", ".join(
        f"{k}={v}" for k, v in sorted(node.get("attributes", {}).items())
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(
        f"{'  ' * indent}{node['name']:<32}  {node['wall_s']:>9.3f}s{suffix}"
    )
    for child in node.get("children", ()):
        _format_span(child, indent + 1, lines)


def render_report(report: RunReport) -> str:
    """Pretty-print one report (``repro report show``)."""
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(report.created_unix)
    )
    n_spans = sum(1 for _ in report.iter_spans())
    lines = [
        "RUN REPORT",
        f"created   {created}",
        f"seed      {report.seed}",
        f"stages    {len(report.stage_events)}",
        f"spans     {n_spans} (max depth {report.span_depth()})",
    ]
    if report.argv:
        lines.append(f"argv      {' '.join(report.argv)}")
    if report.stage_events:
        lines.append("")
        lines.append(f"{'stage':<24}  {'status':<9}  {'wall s':>8}  counters")
        for event in report.stage_events:
            counters = ", ".join(
                f"{k}={v}" for k, v in sorted(event["counters"].items())
            )
            lines.append(
                f"{event['stage']:<24}  {event['status']:<9}  "
                f"{event['wall_s']:>8.3f}  {counters}"
            )
    if report.spans:
        lines.append("")
        lines.append("SPAN TREE")
        for root in report.spans:
            _format_span(root, 0, lines)
    counters = report.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("COUNTERS")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
    if report.artifacts:
        lines.append("")
        lines.append("ARTIFACTS")
        for label in sorted(report.artifacts):
            lines.append(f"{label:<24}  {report.artifacts[label][:16]}")
    return "\n".join(lines)


# --- Diff --------------------------------------------------------------------


@dataclass(frozen=True)
class ReportDiff:
    """Outcome of comparing two run reports.

    Attributes:
        regressions: stage wall-time slowdowns past the threshold.
        drifts: counter / artifact / structural differences (any drift
            is a correctness signal, not a perf one).
        notes: informational lines (improvements, totals).
    """

    regressions: tuple[str, ...]
    drifts: tuple[str, ...]
    notes: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True when nothing regressed or drifted."""
        return not self.regressions and not self.drifts


def diff_reports(
    old: RunReport,
    new: RunReport,
    *,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> ReportDiff:
    """Compare two reports: perf regressions and counter/artifact drift.

    A stage is a *regression* when its wall time grew by more than
    ``wall_threshold`` (fractional) *and* more than ``min_wall_s``
    seconds — both gates, so timing noise on sub-millisecond stages
    cannot fail a build.  Counter differences (stage counters, metrics
    counters) and artifact-hash differences are *drift* and always
    flagged: the pipeline is deterministic, so any drift means the two
    runs did not compute the same thing.
    """
    regressions: list[str] = []
    drifts: list[str] = []
    notes: list[str] = []

    old_events = {e["stage"]: e for e in old.stage_events}
    new_events = {e["stage"]: e for e in new.stage_events}
    for stage in sorted(old_events.keys() | new_events.keys()):
        if stage not in new_events:
            drifts.append(f"stage {stage!r} disappeared")
            continue
        if stage not in old_events:
            drifts.append(f"stage {stage!r} appeared")
            continue
        old_wall = float(old_events[stage]["wall_s"])
        new_wall = float(new_events[stage]["wall_s"])
        grew = new_wall - old_wall
        if grew > min_wall_s and new_wall > old_wall * (1.0 + wall_threshold):
            pct = 100.0 * grew / old_wall if old_wall > 0 else float("inf")
            regressions.append(
                f"stage {stage!r} slowed {old_wall:.3f}s -> {new_wall:.3f}s "
                f"(+{pct:.0f}%, threshold {wall_threshold:.0%})"
            )
        elif old_wall - new_wall > min_wall_s:
            notes.append(
                f"stage {stage!r} sped up {old_wall:.3f}s -> {new_wall:.3f}s"
            )
        old_counters = dict(old_events[stage]["counters"])
        new_counters = dict(new_events[stage]["counters"])
        if old_counters != new_counters:
            drifts.append(
                f"stage {stage!r} counters drifted "
                f"{old_counters} -> {new_counters}"
            )

    old_metrics = old.metrics.get("counters", {})
    new_metrics = new.metrics.get("counters", {})
    for name in sorted(old_metrics.keys() | new_metrics.keys()):
        a, b = old_metrics.get(name, 0), new_metrics.get(name, 0)
        if a != b:
            drifts.append(f"counter {name!r} drifted {a} -> {b}")

    for label in sorted(old.artifacts.keys() | new.artifacts.keys()):
        a, b = old.artifacts.get(label), new.artifacts.get(label)
        if a != b:
            drifts.append(
                f"artifact {label!r} content changed "
                f"({(a or 'absent')[:12]} -> {(b or 'absent')[:12]})"
            )

    old_total = sum(old.stage_wall_s().values())
    new_total = sum(new.stage_wall_s().values())
    notes.append(
        f"total stage wall {old_total:.3f}s -> {new_total:.3f}s"
    )
    return ReportDiff(
        regressions=tuple(regressions),
        drifts=tuple(drifts),
        notes=tuple(notes),
    )


def render_diff(diff: ReportDiff) -> str:
    """Pretty-print a diff (``repro report diff``)."""
    lines = ["RUN REPORT DIFF"]
    if diff.clean:
        lines.append("no regressions, no drift")
    for line in diff.regressions:
        lines.append(f"REGRESSION  {line}")
    for line in diff.drifts:
        lines.append(f"DRIFT       {line}")
    for line in diff.notes:
        lines.append(f"note        {line}")
    return "\n".join(lines)
