"""Counter / gauge / histogram registry.

Instrumented code reports *what happened* (lookup counts, batch sizes,
unmapped residuals) through a :class:`MetricsRegistry` so cross-run
comparability does not depend on parsing rendered tables.  Like the
tracer (:mod:`repro.obs.trace`), the active registry is a context
variable: hot paths call :func:`current_metrics` and skip all work when
observability is off, so an uninstrumented run pays one context lookup
per call site.

All instruments are thread-safe — the executor's worker pool increments
them concurrently — and snapshot to plain JSON types for
:class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from typing import Any, Iterator

_ACTIVE_METRICS: contextvars.ContextVar["MetricsRegistry | None"] = (
    contextvars.ContextVar("repro_obs_active_metrics", default=None)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The latest recorded value."""
        with self._lock:
            return self._value


class Histogram:
    """A streaming summary (count / sum / min / max) of observations."""

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    def summary(self) -> dict[str, float]:
        """JSON-ready summary; empty histograms report zeroed bounds."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
            }


class MetricsRegistry:
    """Named instruments for one run; instruments are created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def counter_value(self, name: str) -> int:
        """A counter's current count (0 when never touched)."""
        with self._lock:
            instrument = self._counters.get(name)
        return 0 if instrument is None else instrument.value

    def snapshot(self) -> dict[str, Any]:
        """All instruments as plain JSON types, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }


def current_metrics() -> MetricsRegistry | None:
    """The registry active in this context, if any."""
    return _ACTIVE_METRICS.get()


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make a registry active for the enclosed block (and spawned contexts)."""
    token = _ACTIVE_METRICS.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_METRICS.reset(token)


def incr(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.counter(name).add(n)


def observe(name: str, value: float) -> None:
    """Observe into a histogram on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.gauge(name).set(value)
